//! Two tenants contending for one site's NIC — the contention demo the
//! continuous fleet service exists for (DESIGN.md §16).
//!
//! A science user (tenant 0, low priority) and an operations user
//! (tenant 1, high priority) submit transfers against the same DIDCLAB
//! source site. The example runs the workload three ways — each tenant
//! alone on the site, both under fair-share arbitration, and both under
//! strict priority — and prints how the shared pool changes per-tenant
//! throughput and where the site's joules went.
//!
//! ```text
//! cargo run --release --example multi_tenant_service [seed]
//! ```

use eadt::core::AlgorithmKind;
use eadt::endsys::{ArbitrationPolicy, PoolCapacity};
use eadt::fleet::{JobSpec, ServiceJob, ServiceReport, ServiceSession, Workload};
use eadt::testbeds;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);

    let tb = testbeds::didclab();
    let site = "didclab";
    let capacity = PoolCapacity::from_servers(tb.env.link.bandwidth, &tb.env.src.servers, 2);

    // Explicit per-job seeds pin each tenant's dataset, so the isolated
    // and shared runs below move the very same bytes and the deltas are
    // pure contention.
    let science = || {
        ServiceJob::new(
            JobSpec::new(AlgorithmKind::Sc, testbeds::didclab())
                .with_scale(0.05)
                .with_max_channel(4)
                .with_seed(seed ^ 1),
            site,
        )
        .with_tenant(0)
        .with_priority(0)
    };
    let operations = || {
        ServiceJob::new(
            JobSpec::new(AlgorithmKind::ProMc, testbeds::didclab())
                .with_scale(0.05)
                .with_max_channel(4)
                .with_seed(seed ^ 2),
            site,
        )
        .with_tenant(1)
        .with_priority(5)
    };

    let run = |workload: &Workload, policy: ArbitrationPolicy| -> ServiceReport {
        ServiceSession::builder()
            .root_seed(seed)
            .policy(policy)
            .quantum(100) // 10 s rounds at the 100 ms slice
            .build()
            .run(workload)
            .expect("workload is valid")
            .report
    };

    println!("=== isolated baselines (each tenant alone on the site) ===");
    for (name, job) in [("science", science()), ("operations", operations())] {
        let workload = Workload::new().site(site, capacity).job(job);
        let report = run(&workload, ArbitrationPolicy::FairShare);
        let j = &report.jobs[0];
        println!(
            "{name:<12} {:<18} {:>7.0} Mbps {:>8.1} s {:>9.0} J",
            j.outcome.label, j.outcome.throughput_mbps, j.outcome.duration_s, j.outcome.energy_j
        );
    }

    let contended = Workload::new()
        .site(site, capacity)
        .job(science())
        .job(operations());

    for policy in [
        ArbitrationPolicy::FairShare,
        ArbitrationPolicy::StrictPriority,
    ] {
        let report = run(&contended, policy);
        println!(
            "\n=== shared site, {} arbitration ({} rounds) ===",
            report.policy, report.rounds
        );
        for (name, j) in ["science", "operations"].iter().zip(&report.jobs) {
            println!(
                "{name:<12} {:<18} {:>7.0} Mbps {:>8.1} s {:>9.0} J  \
                 admit r{} finish r{} ({} preemptions)",
                j.outcome.label,
                j.outcome.throughput_mbps,
                j.outcome.duration_s,
                j.outcome.energy_j,
                j.admitted_round.unwrap_or(0),
                j.finished_round.unwrap_or(0),
                j.preemptions
            );
        }
        for s in &report.sites {
            println!(
                "site {:<8} {} jobs, {:>12} bytes, {:>8.0} J total",
                s.site, s.jobs, s.moved_bytes, s.energy_j
            );
        }
    }

    println!(
        "\nSame seed ⇒ every table above is reproducible byte-for-byte, at\n\
         any worker count; swap the policy and only the schedule changes."
    );
}
