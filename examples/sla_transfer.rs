//! SLA-based transfers (Algorithm 3): a service provider promises a
//! fraction of the maximum achievable throughput and wants to spend the
//! least energy that honours the promise.
//!
//! ```text
//! cargo run --release --example sla_transfer
//! ```

use eadt::core::baselines::ProMc;
use eadt::prelude::*;

fn main() {
    // 1 Gbps WAN between Alamo (TACC) and Hotel (UChicago).
    let testbed = futuregrid();
    let dataset = testbed.dataset_spec.scaled(0.25).generate(7);
    println!(
        "dataset: {} files, {}",
        dataset.file_count(),
        dataset.total_size()
    );

    // The SLA reference point: the best throughput the energy-oblivious
    // scheduler reaches on this path.
    let mut ctx = RunCtx::new(&testbed.env, &dataset);
    let promc = ProMc {
        partition: testbed.partition,
        ..ProMc::new(12)
    }
    .run(&mut ctx);
    let max = promc.avg_throughput();
    println!(
        "reference: ProMC@12 achieves {:.0} Mbps using {:.0} J\n",
        max.as_mbps(),
        promc.total_energy_j()
    );

    println!(
        "{:>7} {:>12} {:>13} {:>11} {:>11} {:>14}",
        "target", "target Mbps", "achieved Mbps", "energy J", "deviation", "energy saved"
    );
    for pct in [95u32, 90, 80, 70, 50] {
        let level = f64::from(pct) / 100.0;
        let slaee = Slaee {
            partition: testbed.partition,
            ..Slaee::new(level, max, 12)
        };
        let report = slaee.run(&mut ctx);
        let achieved = report.avg_throughput().as_mbps();
        let target = max.as_mbps() * level;
        println!(
            "{:>6}% {:>12.0} {:>13.0} {:>11.0} {:>10.1}% {:>13.1}%",
            pct,
            target,
            achieved,
            report.total_energy_j(),
            100.0 * (target - achieved) / target,
            100.0 * (promc.total_energy_j() - report.total_energy_j()) / promc.total_energy_j(),
        );
    }
    println!(
        "\nLower targets settle at lower concurrency and spend less energy —\n\
         the provider trades delivery time for power (paper §3, Figures 5–7)."
    );
}
