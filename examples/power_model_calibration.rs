//! The §2.2 model-building phase, end to end: calibrate the fine-grained
//! and CPU-only power models against a synthetic "metered" server, extend
//! the CPU model to a different machine by TDP scaling, and score all
//! three on the paper's five transfer tools.
//!
//! ```text
//! cargo run --release --example power_model_calibration
//! ```

use eadt::power::calibrate::{build_models, evaluate_model, GroundTruth, ToolProfile};
use eadt::power::{cpu_coefficient, PowerModel};

const CORES: u32 = 4;
const INTEL_TDP: f64 = 115.0;
const AMD_TDP: f64 = 95.0;

fn main() {
    let intel = GroundTruth::intel_server();
    let amd = GroundTruth::amd_server();

    println!("Eq. 2 CPU coefficient, C_cpu(n) = 0.011n² − 0.082n + 0.344:");
    for n in 1..=8 {
        println!("  n={n}: {:.3} W per utilization point", cpu_coefficient(n));
    }

    println!("\n-- one-time model building phase (lattice sweep + regression) --");
    let outcome = build_models(&intel, INTEL_TDP, CORES, 42);
    let fg = outcome.fine_grained;
    println!(
        "fine-grained fit: cpu_scale={:.3} c_mem={:.3} c_disk={:.3} c_nic={:.3} (R²={:.4})",
        fg.cpu_scale, fg.c_memory, fg.c_disk, fg.c_nic, outcome.fine_r_squared
    );
    println!(
        "cpu-only fit:     weight={:.3}, CPU↔power correlation {:.2}% (paper: 89.71%)",
        outcome.cpu_only.cpu_weight,
        outcome.cpu_power_correlation * 100.0
    );

    println!("\n-- accuracy per transfer tool (MAPE %, paper §2.2) --");
    println!(
        "{:<9} {:>13} {:>10} {:>14}",
        "tool", "fine-grained", "cpu-only", "tdp-extended"
    );
    let extended = outcome.cpu_only.extend_to(AMD_TDP);
    for tool in ToolProfile::paper_tools() {
        println!(
            "{:<9} {:>12.2}% {:>9.2}% {:>13.2}%",
            tool.name,
            evaluate_model(&fg, &tool, &intel, CORES, 7),
            evaluate_model(&outcome.cpu_only, &tool, &intel, CORES, 7),
            evaluate_model(&extended, &tool, &amd, CORES, 7),
        );
    }
    println!(
        "\nPaper bands: fine-grained < 6%; CPU-only close behind; TDP extension\n\
         costs another 2–3 points (below 5% for ftp/bbcp/gridftp, 8% for the rest)."
    );

    // A sample prediction, the way the transfer engine uses the model.
    let util = ToolProfile::paper_tools()[4].utilization_at(80.0, CORES);
    println!(
        "\ngridftp at 80% load → predicted {:.1} W (fine-grained), {:.1} W (cpu-only)",
        fg.power_watts(&util),
        outcome.cpu_only.power_watts(&util)
    );
}
