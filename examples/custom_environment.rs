//! Building your own environment in code: a hypothetical 100 Gbps science
//! DMZ with eight-core DTNs — a path the paper never measured — and
//! checking that the paper's parameter rules still behave sensibly on it.
//!
//! (The same environment can be produced as JSON with
//! `eadt env --export`, hand-edited, and replayed via `--env-file`.)
//!
//! ```text
//! cargo run --release --example custom_environment
//! ```

use eadt::core::baselines::ProMc;
use eadt::core::{Algorithm, Htee, MinE, Planner, RunCtx};
use eadt::dataset::{partition, DatasetMix, DatasetSpec, PartitionConfig};
use eadt::endsys::{DiskSubsystem, ServerSpec, Site, UtilizationCoeffs};
use eadt::net::link::Link;
use eadt::net::packets::PacketModel;
use eadt::net::tcp::CongestionModel;
use eadt::power::FineGrainedModel;
use eadt::sim::{Bytes, Rate, SimDuration};
use eadt::transfer::{EngineTuning, TransferEnv};

fn main() {
    // A 100 Gbps path with 20 ms RTT: BDP = 250 MB — five times XSEDE's.
    let dtn = ServerSpec::new(
        "dmz-dtn",
        8,
        165.0,
        Rate::from_gbps(100.0),
        DiskSubsystem::Array {
            per_access: Rate::from_gbps(12.0),
            aggregate: Rate::from_gbps(60.0),
        },
    );
    let env = TransferEnv {
        link: Link::new(
            Rate::from_gbps(100.0),
            SimDuration::from_millis(20),
            Bytes::from_mb(64),
        ),
        src: Site::new("site-a", vec![dtn.clone(); 2]),
        dst: Site::new("site-b", vec![dtn; 2]),
        util: UtilizationCoeffs::default(),
        power: FineGrainedModel {
            cpu_scale: 2.2,
            c_memory: 0.06,
            c_disk: 0.12,
            c_nic: 0.10,
        },
        congestion: CongestionModel {
            saturation_streams: 48,
            overload_penalty: 0.01,
            floor: 0.6,
        },
        packets: PacketModel {
            mtu: Bytes(9000),
            control_overhead: 0.5,
        }, // jumbo frames
        tuning: EngineTuning::default()
            .with_wan_stream_cap(Rate::from_gbps(8.0))
            .with_proc_channel_cap(Rate::from_gbps(16.0))
            .with_per_file_overhead(SimDuration::from_millis(60))
            .with_slice(SimDuration::from_millis(100))
            .with_max_duration(SimDuration::from_secs(24 * 3600)),
        faults: None,
        background: None,
        estimator: None,
    };

    println!(
        "BDP: {}  (buffer-limited: {})",
        env.link.bdp(),
        env.link.buffer_limited()
    );

    // A petascale-ish nightly batch, scaled down for the example.
    let mix = DatasetMix {
        name: "dmz-batch".into(),
        components: vec![
            DatasetSpec::new(
                "small",
                Bytes::from_gb(20),
                Bytes::from_mb(8),
                Bytes::from_mb(40),
            ),
            DatasetSpec::new(
                "bulk",
                Bytes::from_gb(80),
                Bytes::from_gb(1),
                Bytes::from_gb(50),
            ),
        ],
    };
    let dataset = mix.generate(5);
    println!(
        "dataset: {} files, {}\n",
        dataset.file_count(),
        dataset.total_size()
    );

    // The paper's parameter rules react to the new BDP: deep pipelines for
    // the small class, four 64 MB-buffered streams to cover 250 MB in
    // flight for the bulk class.
    let chunks = partition(&dataset, env.link.bdp(), &PartitionConfig::default());
    let planner = Planner::new(&env.link);
    for c in &chunks {
        let p = planner.chunk_params(c);
        println!(
            "{:<7} {:>6} files, avg {:>10} → pipelining {:>2}, parallelism {}",
            c.class.label(),
            c.file_count(),
            c.avg_file_size().to_string(),
            p.pipelining,
            p.parallelism
        );
    }

    println!();
    let runs = [
        (
            "ProMC@16",
            ProMc::new(16).run(&mut RunCtx::new(&env, &dataset)),
        ),
        (
            "MinE@16",
            MinE::new(16).run(&mut RunCtx::new(&env, &dataset)),
        ),
        (
            "HTEE@16",
            Htee::new(16).run(&mut RunCtx::new(&env, &dataset)),
        ),
    ];
    for (name, r) in &runs {
        println!(
            "{:<9} {:>8.1} Gbps  {:>7.1} s  {:>8.0} J  {:.4} Mbps/J",
            name,
            r.avg_throughput().as_gbps(),
            r.duration.as_secs_f64(),
            r.total_energy_j(),
            r.efficiency()
        );
    }
    // On this bulk-dominated 100G batch MinE's Large-chunk pin costs more
    // energy than it saves — the transfer is so short that duration, not
    // power, dominates the integral. The paper's own Figure 4 lesson
    // generalises: which algorithm wins depends on where the bottleneck is.
    let best = runs
        .iter()
        .min_by(|a, b| a.1.total_energy_j().total_cmp(&b.1.total_energy_j()))
        .expect("three runs");
    println!(
        "\nCheapest on this path: {} — not necessarily MinE; on short,\n\
         bulk-dominated batches the Large-chunk pin stretches duration enough\n\
         to cost energy. Which rule wins depends on the bottleneck, which is\n\
         exactly why HTEE probes instead of assuming.",
        best.0
    );
}
