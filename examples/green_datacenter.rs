//! Scenario: a replication service with a nightly window and an energy
//! budget. The operator must ship a day's data within the window while
//! spending as little energy as possible — exactly the trade SLAEE was
//! designed for (§2.5: "if customers are flexible in transferring their
//! data with some reasonable delay, SLAEE helps the service providers to
//! cut from the energy consumption considerably").
//!
//! ```text
//! cargo run --release --example green_datacenter
//! ```

use eadt::core::baselines::ProMc;
use eadt::core::{Algorithm, RunCtx, Slaee};
use eadt::testbeds::xsede;

fn main() {
    let tb = xsede();
    // One night's replication batch (scaled for the example).
    let dataset = tb.dataset_spec.scaled(0.25).generate(99);
    let window_secs = 6.0 * 60.0; // the transfer window we must fit

    println!(
        "replication batch: {} files, {}; window: {:.0} s\n",
        dataset.file_count(),
        dataset.total_size(),
        window_secs
    );

    // The throughput-greedy reference: fastest, most expensive.
    let reference = ProMc::new(12).run(&mut RunCtx::new(&tb.env, &dataset));
    println!(
        "{:<10} {:>9} {:>10} {:>11} {:>13} {:>8}",
        "policy", "Mbps", "seconds", "energy (J)", "saved vs max", "fits?"
    );
    let row = |name: &str, r: &eadt::transfer::TransferReport| {
        println!(
            "{:<10} {:>9.0} {:>10.1} {:>11.0} {:>12.1}% {:>8}",
            name,
            r.avg_throughput().as_mbps(),
            r.duration.as_secs_f64(),
            r.total_energy_j(),
            100.0 * (reference.total_energy_j() - r.total_energy_j()) / reference.total_energy_j(),
            if r.duration.as_secs_f64() <= window_secs {
                "yes"
            } else {
                "NO"
            }
        );
    };
    row("ProMC max", &reference);

    // Walk the SLA ladder downwards and keep the cheapest policy that
    // still fits the window.
    let mut best: Option<(u32, eadt::transfer::TransferReport)> = None;
    for pct in [90u32, 80, 70, 60, 50, 40] {
        let level = f64::from(pct) / 100.0;
        let r = Slaee::new(level, reference.avg_throughput(), 12)
            .run(&mut RunCtx::new(&tb.env, &dataset));
        row(&format!("SLAEE {pct}%"), &r);
        if r.duration.as_secs_f64() <= window_secs {
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| r.total_energy_j() < b.total_energy_j());
            if better {
                best = Some((pct, r));
            }
        }
    }

    match best {
        Some((pct, r)) => println!(
            "\n→ run tonight at the {pct}% SLA: fits the window with {:.1}% less energy \
             than the throughput-greedy policy.",
            100.0 * (reference.total_energy_j() - r.total_energy_j()) / reference.total_energy_j()
        ),
        None => println!("\n→ no SLA level fits the window; run ProMC at full tilt."),
    }
}
