//! Head-to-head comparison of all six schedulers on every testbed — a
//! miniature of the paper's Figures 2–4 at a single concurrency level.
//!
//! ```text
//! cargo run --release --example compare_algorithms [concurrency]
//! ```

use eadt::core::baselines::{BruteForce, GlobusOnline, GlobusUrlCopy, ProMc, SingleChunk};
use eadt::core::{Algorithm, Htee, MinE, RunCtx};
use eadt::testbeds;

fn main() {
    let concurrency: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    for testbed in testbeds::all() {
        let dataset = testbed.dataset_spec.scaled(0.05).generate(11);
        println!(
            "\n=== {} — {} files, {}, concurrency {} ===",
            testbed.name,
            dataset.file_count(),
            dataset.total_size(),
            concurrency
        );
        println!(
            "{:<8} {:>10} {:>11} {:>12} {:>10}",
            "algo", "Mbps", "seconds", "energy (J)", "Mbps/J"
        );

        let algos: Vec<Box<dyn Algorithm>> = vec![
            Box::new(GlobusUrlCopy::new()),
            Box::new(GlobusOnline::new()),
            Box::new(SingleChunk {
                partition: testbed.partition,
                ..SingleChunk::new(concurrency)
            }),
            Box::new(MinE {
                partition: testbed.partition,
                ..MinE::new(concurrency)
            }),
            Box::new(ProMc {
                partition: testbed.partition,
                ..ProMc::new(concurrency)
            }),
            Box::new(Htee {
                partition: testbed.partition,
                ..Htee::new(concurrency)
            }),
        ];
        let mut best_eff = 0.0f64;
        let mut best_name = "";
        for algo in &algos {
            let r = algo.run(&mut RunCtx::new(&testbed.env, &dataset));
            println!(
                "{:<8} {:>10.0} {:>11.1} {:>12.0} {:>10.4}",
                algo.name(),
                r.avg_throughput().as_mbps(),
                r.duration.as_secs_f64(),
                r.total_energy_j(),
                r.efficiency()
            );
            if r.efficiency() > best_eff {
                best_eff = r.efficiency();
                best_name = algo.name();
            }
        }

        // The oracle: what was the best possible throughput/energy ratio?
        let bf = BruteForce {
            partition: testbed.partition,
            ..BruteForce::new(concurrency)
        };
        let (best_cc, best) = bf.best(&testbed.env, &dataset);
        println!(
            "BF oracle: cc={best_cc} with ratio {:.4}; best algorithm here: {best_name} \
             ({:.0}% of oracle)",
            best.efficiency(),
            100.0 * best_eff / best.efficiency()
        );
    }
}
