//! Quickstart: transfer a mixed dataset over the XSEDE testbed with each of
//! the paper's three energy-aware algorithms and print what they achieved.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use eadt::core::baselines::ProMc;
use eadt::prelude::*;

fn main() {
    // The simulated Stampede → Gordon path: 10 Gbps, 40 ms RTT, four
    // 4-core data-transfer nodes per site (paper Figure 1).
    let testbed = xsede();

    // A scaled-down version of the paper's 160 GB mixed dataset so the
    // example finishes instantly; drop `.scaled(..)` for the real thing.
    let dataset = testbed.dataset_spec.scaled(0.05).generate(42);
    println!(
        "dataset: {} files, {} total\n",
        dataset.file_count(),
        dataset.total_size()
    );

    let reference = ProMc::new(12).run(&mut RunCtx::new(&testbed.env, &dataset));
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "algorithm", "Mbps", "energy (J)", "Mbps/J"
    );
    let line = |name: &str, r: &TransferReport| {
        println!(
            "{:<22} {:>10.0} {:>12.0} {:>12.4}",
            name,
            r.avg_throughput().as_mbps(),
            r.total_energy_j(),
            r.efficiency()
        );
    };
    line("ProMC (throughput)", &reference);

    // Minimum Energy: floods the small chunk with pipelined channels,
    // pins the large chunk to a single channel.
    let mine = MinE::new(12).run(&mut RunCtx::new(&testbed.env, &dataset));
    line("MinE (Algorithm 1)", &mine);

    // High Throughput Energy-Efficient: probes concurrency levels for five
    // seconds each, then commits to the best throughput/energy ratio.
    let htee = Htee::new(12).run(&mut RunCtx::new(&testbed.env, &dataset));
    line("HTEE (Algorithm 2)", &htee);

    // SLA-based: deliver 80% of the reference throughput, cheaply.
    let slaee = Slaee::new(0.8, reference.avg_throughput(), 12)
        .run(&mut RunCtx::new(&testbed.env, &dataset));
    line("SLAEE 80% (Alg. 3)", &slaee);

    println!(
        "\nMinE used {:.1}% less energy than ProMC at {:.1}% lower throughput",
        100.0 * (reference.total_energy_j() - mine.total_energy_j()) / reference.total_energy_j(),
        100.0 * (reference.avg_throughput().as_mbps() - mine.avg_throughput().as_mbps())
            / reference.avg_throughput().as_mbps(),
    );
}
