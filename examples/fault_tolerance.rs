//! Robustness features beyond the paper's steady-state evaluation:
//! deterministic channel-failure injection (with and without GridFTP-style
//! restart markers) and periodic background traffic, plus the in-vivo
//! power estimator (a CPU-only Eq. 3 monitor riding along with the
//! fine-grained reference).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use eadt::core::baselines::ProMc;
use eadt::core::{Algorithm, RunCtx, Slaee};
use eadt::power::{CpuOnlyModel, PowerModelKind};
use eadt::sim::SimDuration;
use eadt::testbeds::xsede;
use eadt::transfer::{BackgroundTraffic, FaultModel};

fn main() {
    let base = xsede();
    let dataset = base.dataset_spec.scaled(0.1).generate(23);
    println!(
        "dataset: {} files, {}\n",
        dataset.file_count(),
        dataset.total_size()
    );

    // Clean reference run.
    let clean = ProMc::new(8).run(&mut RunCtx::new(&base.env, &dataset));
    println!(
        "clean:                {:>6.0} Mbps  {:>7.0} J  0 failures",
        clean.avg_throughput().as_mbps(),
        clean.total_energy_j()
    );

    // Channel failures every ~30 s per channel, restart markers on/off.
    for (label, markers) in [
        ("with restart markers", true),
        ("full file restarts ", false),
    ] {
        let mut tb = base.clone();
        tb.env.faults = Some(
            FaultModel {
                restart_markers: markers,
                ..FaultModel::new(SimDuration::from_secs(30), 7)
            }
            .into(),
        );
        let r = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
        println!(
            "faults, {label}: {:>6.0} Mbps  {:>7.0} J  {} failures",
            r.avg_throughput().as_mbps(),
            r.total_energy_j(),
            r.failures
        );
    }

    // Background traffic: cross traffic eats 60% of the link for 30 s of
    // every minute. SLAEE notices the throughput dip and adds channels.
    let mut tb = base.clone();
    tb.env.background = Some(BackgroundTraffic::square(
        SimDuration::from_secs(60),
        SimDuration::from_secs(30),
        0.6,
    ));
    let slaee = Slaee::new(0.7, clean.avg_throughput(), 12);
    let r = slaee.run(&mut RunCtx::new(&tb.env, &dataset));
    println!(
        "\nbackground traffic + SLAEE@70%: {:.0} Mbps achieved (target {:.0}), peak concurrency {}",
        r.avg_throughput().as_mbps(),
        clean.avg_throughput().as_mbps() * 0.7,
        r.concurrency_series.max_value().unwrap_or(0.0)
    );

    // In-vivo estimator: a CPU-only monitor (Eq. 3) predicting the energy
    // of a transfer whose disk/NIC counters it cannot see. Its weight folds
    // the unseen components into the CPU predictor, scaled off the
    // testbed's fine-grained model (the "model building" of §2.2).
    let mut tb = base.clone();
    let weight = tb.env.power.cpu_scale * 1.7;
    tb.env.estimator = Some(PowerModelKind::CpuOnly(CpuOnlyModel::local(weight, 115.0)));
    let r = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    let est = r.estimated_energy_j.unwrap();
    println!(
        "\ncpu-only estimator: {:.0} J predicted vs {:.0} J reference ({:+.1}% error)",
        est,
        r.total_energy_j(),
        100.0 * (est - r.total_energy_j()) / r.total_energy_j()
    );
}
