//! The §4 network-infrastructure analysis: how much energy the switches
//! and routers along each testbed's path burn for a transfer, under the
//! per-packet model (Eq. 5, Table 1) and the three dynamic-power families
//! of Figure 8.
//!
//! ```text
//! cargo run --release --example network_energy
//! ```

use eadt::core::{Algorithm, Htee, RunCtx};
use eadt::netenergy::account::{decompose, path_energy_with_idle_joules};
use eadt::netenergy::dynmodel::DynamicPowerModel;
use eadt::testbeds;

fn main() {
    println!("-- Figure 8: dynamic power vs. traffic rate --");
    println!(
        "{:>6} {:>11} {:>8} {:>12}",
        "rate", "non-linear", "linear", "state-based"
    );
    for i in 0..=5 {
        let u = i as f64 / 5.0;
        println!(
            "{:>5.0}% {:>11.3} {:>8.3} {:>12.3}",
            u * 100.0,
            DynamicPowerModel::NonLinear.power_fraction(u),
            DynamicPowerModel::Linear.power_fraction(u),
            DynamicPowerModel::StateBased.power_fraction(u),
        );
    }
    // The paper's §4 argument, numerically:
    let slow = DynamicPowerModel::NonLinear.dynamic_energy_joules(0.25, 10.0, 100.0);
    let fast = DynamicPowerModel::NonLinear.dynamic_energy_joules(1.0, 10.0, 100.0);
    println!(
        "\nnon-linear devices: quadrupling the rate cuts dynamic energy to {:.0}% \
         (paper: half)",
        100.0 * fast / slow
    );
    let l_slow = DynamicPowerModel::Linear.dynamic_energy_joules(0.25, 10.0, 100.0);
    let l_fast = DynamicPowerModel::Linear.dynamic_energy_joules(1.0, 10.0, 100.0);
    println!(
        "linear devices:     quadrupling the rate changes it by {:+.1}% (paper: none)",
        100.0 * (l_fast - l_slow) / l_slow
    );

    println!("\n-- Figure 10: end-system vs. network split for an HTEE transfer --");
    println!(
        "{:<11} {:>12} {:>11} {:>7} {:>7} {:>10}",
        "testbed", "end-system", "network", "end%", "net%", "net J/GB"
    );
    for tb in testbeds::all() {
        let dataset = tb.dataset_spec.scaled(0.1).generate(3);
        let report = Htee {
            partition: tb.partition,
            ..Htee::new(8)
        }
        .run(&mut RunCtx::new(&tb.env, &dataset));
        let d = decompose(
            report.total_energy_j(),
            &tb.path,
            report.wire_bytes,
            &tb.env.packets,
        );
        println!(
            "{:<11} {:>10.0} J {:>9.0} J {:>6.1}% {:>6.1}% {:>10.2}",
            tb.name,
            d.end_system_joules,
            d.network_joules,
            d.end_system_percent(),
            d.network_percent(),
            d.network_joules / report.wire_bytes.as_gb().max(1e-9),
        );
        // Eq. 4 with the idle term, for perspective: idle dominates, which
        // is why the comparisons only use the load-dependent part.
        let packets = tb.env.packets.total_packets(report.wire_bytes);
        let full = path_energy_with_idle_joules(&tb.path, packets, report.duration.as_secs_f64());
        println!(
            "{:<11} …with idle power the same path burns {:.0} J ({}x the dynamic part)",
            "",
            full,
            (full / d.network_joules.max(1e-9)) as u64
        );
    }
    println!(
        "\nMetro-router-heavy paths (FutureGrid) cost the most per byte — the\n\
         §4 observation — while end systems dominate the load-dependent total."
    );
}
