//! The dynamic JSON value tree all (de)serialization routes through.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. `BTreeMap` keeps key order deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number; integers keep full 64-bit precision.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(n) => u64::try_from(n).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }

    /// Short name of the JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Like `serde_json`: indexing a missing key or non-object yields null.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::PosInt(n))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::Float(f))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_compact(self, f)
    }
}

fn write_escaped(s: &str, out: &mut impl fmt::Write) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

fn write_number(n: &Number, out: &mut impl fmt::Write) -> fmt::Result {
    match *n {
        Number::PosInt(v) => write!(out, "{v}"),
        Number::NegInt(v) => write!(out, "{v}"),
        Number::Float(v) if v.is_finite() => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                // Keep a trailing `.0` so the value re-parses as a float.
                write!(out, "{v:.1}")
            } else {
                write!(out, "{v}")
            }
        }
        // JSON has no Inf/NaN; serde_json emits null.
        Number::Float(_) => out.write_str("null"),
    }
}

pub(crate) fn write_compact(v: &Value, out: &mut impl fmt::Write) -> fmt::Result {
    match v {
        Value::Null => out.write_str("null"),
        Value::Bool(b) => write!(out, "{b}"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.write_char('[')?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_compact(item, out)?;
            }
            out.write_char(']')
        }
        Value::Object(map) => {
            out.write_char('{')?;
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.write_char(',')?;
                }
                write_escaped(k, out)?;
                out.write_char(':')?;
                write_compact(val, out)?;
            }
            out.write_char('}')
        }
    }
}

pub(crate) fn write_pretty(v: &Value, out: &mut impl fmt::Write, indent: usize) -> fmt::Result {
    const STEP: &str = "  ";
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.write_str("[\n")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_str(",\n")?;
                }
                for _ in 0..=indent {
                    out.write_str(STEP)?;
                }
                write_pretty(item, out, indent + 1)?;
            }
            out.write_char('\n')?;
            for _ in 0..indent {
                out.write_str(STEP)?;
            }
            out.write_char(']')
        }
        Value::Object(map) if !map.is_empty() => {
            out.write_str("{\n")?;
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.write_str(",\n")?;
                }
                for _ in 0..=indent {
                    out.write_str(STEP)?;
                }
                write_escaped(k, out)?;
                out.write_str(": ")?;
                write_pretty(val, out, indent + 1)?;
            }
            out.write_char('\n')?;
            for _ in 0..indent {
                out.write_str(STEP)?;
            }
            out.write_char('}')
        }
        other => write_compact(other, out),
    }
}

/// Writes `v` as pretty-printed JSON (two-space indent).
pub fn write_value_pretty(v: &Value, out: &mut impl fmt::Write) -> fmt::Result {
    write_pretty(v, out, 0)
}

/// Parse error with byte offset.
#[derive(Debug, Clone)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map them to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let num = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::PosInt(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::NegInt(i)
            } else {
                Number::Float(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
            }
        } else {
            Number::Float(text.parse::<f64>().map_err(|_| self.err("bad number"))?)
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_via_text() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = parse(src).unwrap();
        let mut s = String::new();
        write_compact(&v, &mut s).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn index_missing_is_null() {
        let v = parse(r#"{"a": 1}"#).unwrap();
        assert!(v["b"].is_null());
        assert_eq!(v["a"].as_u64(), Some(1));
    }

    #[test]
    fn numbers_keep_integer_precision() {
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v.as_u64(), Some(9007199254740993));
    }

    #[test]
    fn float_formatting_reparses_as_float() {
        let v = Value::Number(Number::Float(4.0));
        let s = v.to_string();
        assert_eq!(s, "4.0");
        assert_eq!(parse(&s).unwrap().as_f64(), Some(4.0));
    }
}
