//! Offline, dependency-free subset of the `serde` API.
//!
//! The build sandbox has no crate registry access, so serialization is
//! reimplemented around a JSON-like [`value::Value`] tree: `Serialize`
//! renders a type into a `Value`, `Deserialize` rebuilds the type from one.
//! `serde_json` (also vendored) adds the text layer on top. The derive
//! macros live in the vendored `serde_derive` crate and are re-exported
//! here under the `derive` feature, mirroring the real crate layout.
//!
//! Only what this workspace uses is implemented: derived impls on structs
//! and enums, `#[serde(default)]` on named fields, and the primitive /
//! container impls below. The encoding conventions (externally tagged
//! enums, newtype structs as their inner value) match real serde, so the
//! JSON files this produces stay loadable if the real crates return.

// Exempt from the workspace determinism policy (vendored compatibility subset: HashMap impls mirror real serde's API).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

pub mod value;

pub mod ser;

pub mod de;

pub use de::Deserialize;
pub use ser::Serialize;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
