//! Deserialization: a type rebuilds itself from a [`Value`].

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced while rebuilding a type from a [`Value`].
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            message: msg.to_string(),
        }
    }

    /// Type mismatch against what the input actually held.
    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", got.kind()))
    }

    /// Prefixes the error with the field it occurred under.
    pub fn in_field(self, field: &str) -> Self {
        Error::custom(format!("{field}: {}", self.message))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be rebuilt from a JSON value.
///
/// Mirror of [`crate::Serialize`]; the method is named `deser_value` to
/// stay out of the way of inherent methods.
pub trait Deserialize: Sized {
    fn deser_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::unexpected("unsigned integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::unexpected("integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::unexpected("number", v))
    }
}

impl Deserialize for f32 {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        f64::deser_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::unexpected("boolean", v))
    }
}

impl Deserialize for String {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::unexpected("string", v))
    }
}

impl Deserialize for &'static str {
    /// Real serde borrows from the input here; this Value-tree subset has
    /// no input to borrow from, so the string is leaked. Only derived
    /// structs with `&'static str` fields hit this, and only when actually
    /// deserialized (round-trip tests), so the leak is bounded and
    /// process-lifetime — observationally the same as a true borrow.
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::unexpected("string", v))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl Deserialize for char {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::unexpected("string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deser_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::unexpected("array", v))?;
        items.iter().map(T::deser_value).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        T::deser_value(v).map(Box::new)
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::unexpected("array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected an array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deser_value).collect::<Result<_, _>>()?;
        Ok(parsed.try_into().expect("length checked against N above"))
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_object()
            .ok_or_else(|| Error::unexpected("object", v))?;
        map.iter()
            .map(|(k, val)| Ok((k.clone(), V::deser_value(val).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_object()
            .ok_or_else(|| Error::unexpected("object", v))?;
        map.iter()
            .map(|(k, val)| Ok((k.clone(), V::deser_value(val).map_err(|e| e.in_field(k))?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deser_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::unexpected("array", v))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::deser_value(&items[$idx])?,)+))
            }
        }
    )+};
}

de_tuple!((2, A.0, B.1), (3, A.0, B.1, C.2), (4, A.0, B.1, C.2, D.3));

impl Deserialize for Value {
    fn deser_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Resolves a field absent from the input, serde-style: probe with null so
/// `Option<T>` fields fall out as `None`, and everything else reports a
/// missing-field error.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, Error> {
    T::deser_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{name}`")))
}
