//! Serialization: a type renders itself into a [`Value`].

use crate::value::{Map, Number, Value};
use std::collections::{BTreeMap, HashMap};

/// A type that can be rendered as a JSON value.
///
/// The method is named `ser_value` (not `serialize`) to avoid colliding
/// with inherent methods on workspace types; derived impls and
/// `serde_json` are the only intended callers.
pub trait Serialize {
    fn ser_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser_value(&self) -> Value {
        (**self).ser_value()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn ser_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn ser_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for bool {
    fn ser_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn ser_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn ser_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn ser_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser_value(&self) -> Value {
        match self {
            Some(v) => v.ser_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser_value(&self) -> Value {
        self.as_slice().ser_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::ser_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser_value(&self) -> Value {
        self.as_slice().ser_value()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn ser_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.ser_value()))
                .collect::<Map>(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn ser_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.ser_value()))
                .collect::<Map>(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn ser_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.ser_value()),+])
            }
        }
    )+};
}

ser_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl Serialize for Value {
    fn ser_value(&self) -> Value {
        self.clone()
    }
}
