//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! The sandbox this workspace builds in has no crate registry access, so the
//! handful of `rand` items the workspace actually uses are reimplemented here
//! **bit-exactly**: `SmallRng` is xoshiro256++ seeded through the
//! `rand_core` 0.6 PCG32 `seed_from_u64` path, `Rng::gen::<f64>` uses the
//! 53-bit `Standard` mapping, and `gen_range` for integers uses the same
//! widening-multiply rejection scheme as `UniformInt::sample_single`.
//! Swapping the real crates back in therefore reproduces identical seeded
//! experiment streams.

use std::fmt;

/// Error type matching `rand::Error`'s public shape.
///
/// The generators in this subset are infallible, so this is only ever
/// constructed by downstream code that needs the type to exist.
#[derive(Debug)]
pub struct Error {
    inner: Box<dyn std::error::Error + Send + Sync>,
}

impl Error {
    pub fn new<E>(err: E) -> Self
    where
        E: Into<Box<dyn std::error::Error + Send + Sync>>,
    {
        Error { inner: err.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

impl std::error::Error for Error {}

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32 — byte-for-byte the
    /// default implementation in `rand_core` 0.6.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod uniform_int {
    use super::RngCore;

    /// `UniformInt::<u64>::sample_single` from rand 0.8: widening-multiply
    /// with the conservative power-of-two zone.
    #[inline]
    pub fn sample_single_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
        debug_assert!(low < high, "gen_range: empty range");
        let range = high.wrapping_sub(low);
        if range == 0 {
            // Full u64 range.
            return rng.next_u64();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let m = (v as u128).wrapping_mul(range as u128);
            let hi = (m >> 64) as u64;
            let lo = m as u64;
            if lo <= zone {
                return low.wrapping_add(hi);
            }
        }
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples from the `Standard` distribution. Implemented for the types
    /// the workspace draws: `f64`, `f32`, `u32`, `u64`, `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open integer range, matching
    /// `UniformSampler::sample_single`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // Matches rand 0.8's Bernoulli: p scaled into 64 bits.
        if p >= 1.0 {
            return true;
        }
        let p_int = (p * (1u64 << 63) as f64 * 2.0) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Marker for `Standard`-distribution sampling (stand-in for
/// `Distribution<T> for Standard`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53-bit mantissa mapping used by rand 0.8's `Standard` for f64.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl SampleUniform for u64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        uniform_int::sample_single_u64(low, high, rng)
    }
}

impl SampleUniform for u32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        uniform_int::sample_single_u64(low as u64, high as u64, rng) as u32
    }
}

impl SampleUniform for usize {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        uniform_int::sample_single_u64(low as u64, high as u64, rng) as usize
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        low + (high - low) * f64::sample_standard(rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the `SmallRng` backend on 64-bit targets in rand 0.8.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state words captured by [`state`].
        ///
        /// The all-zero state is a fixed point of xoshiro and can never be
        /// produced by [`state`] on a legally-seeded generator; it is mapped
        /// to `seed_from_u64(0)` the same way `from_seed` handles an
        /// all-zero seed.
        ///
        /// [`state`]: SmallRng::state
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return SmallRng::seed_from_u64(0);
            }
            SmallRng { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            if seed.iter().all(|&b| b == 0) {
                // Xoshiro forbids the all-zero state; rand falls back to
                // seeding from the integer 0.
                return SmallRng::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of ++ scramblers have weak lanes.
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            // `fill_bytes_via_next` from rand_core: whole LE words, then a
            // partial word for the tail.
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let tail = chunks.into_remainder();
            if !tail.is_empty() {
                let word = self.next_u64().to_le_bytes();
                tail.copy_from_slice(&word[..tail.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Official xoshiro256++ outputs for state [1, 2, 3, 4].
        let mut seed = [0u8; 32];
        for (i, w) in [1u64, 2, 3, 4].iter().enumerate() {
            seed[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 10] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
            10450023813501588000,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_nontrivial() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_u64_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut replica = SmallRng::from_state(rng.state());
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), replica.next_u64());
        }
    }

    #[test]
    fn from_state_rejects_all_zero() {
        let mut a = SmallRng::from_state([0; 4]);
        let mut b = SmallRng::seed_from_u64(0);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
