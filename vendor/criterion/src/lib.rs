//! Offline subset of the `criterion` API.
//!
//! Provides just enough surface for the workspace's benches to compile and
//! run: each `bench_function` executes its body a few times and prints a
//! rough mean wall-clock duration. No statistics, warm-up, or HTML
//! reports — this is a smoke-run harness, not a measurement tool.

// Exempt from the workspace determinism policy (vendored bench harness: wall-clock timing is its whole job).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::time::Instant;

pub use std::hint::black_box;

const RUNS: u32 = 3;

/// Drives one benchmark body.
pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..RUNS {
            let start = Instant::now();
            black_box(body());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        total_nanos: 0,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.total_nanos / u128::from(b.iters)
    } else {
        0
    };
    println!("bench {name}: ~{} ns/iter ({} iters)", mean, b.iters);
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
        }
    }

    /// Configuration accepted for compatibility; sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Wall-clock measurement helpers.
///
/// The workspace's determinism lint bans `std::time::Instant` in its own
/// crates; benches and perf tests that genuinely need wall time route it
/// through this module instead, keeping the exemption in one place.
pub mod measurement {
    use std::time::Instant;

    /// Wall-clock timing (the only measurement the subset offers).
    pub struct WallTime;

    impl WallTime {
        /// Runs `body` once and returns its result plus elapsed seconds.
        pub fn time<O>(body: impl FnOnce() -> O) -> (O, f64) {
            let start = Instant::now();
            let out = super::black_box(body());
            (out, start.elapsed().as_secs_f64())
        }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
