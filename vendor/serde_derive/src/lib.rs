//! Offline subset of `serde_derive`, written directly against
//! `proc_macro` (the sandbox has no `syn`/`quote`).
//!
//! Supports what this workspace derives: non-generic structs (named,
//! tuple/newtype, unit) and enums (unit, tuple, struct variants), plus the
//! `#[serde(default)]` and `#[serde(skip)]` field attributes. Encoding
//! conventions match real serde: structs as objects, newtype structs as
//! their inner value, externally tagged enums, missing `Option` fields as
//! `None` (via null-probing `missing_field`), skipped fields omitted on
//! write and defaulted on read, unknown fields ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    /// `#[serde(skip)]`: omitted when writing, `Default::default()` when
    /// reading.
    skip: bool,
}

enum Shape {
    NamedStruct(Vec<Field>),
    /// Tuple struct with N fields (1 = newtype).
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Splits attribute tokens off the front of a token list, reporting any
/// `#[serde(default)]` / `#[serde(default = "path")]` / `#[serde(skip)]`
/// among them.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> (usize, Option<Option<String>>, bool) {
    let mut has_default = None;
    let mut has_skip = false;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    let text = g.stream().to_string().replace(' ', "");
                    if text.starts_with("serde(") && text.contains("default") {
                        has_default = Some(match text.split_once("default=\"") {
                            Some((_, rest)) => {
                                rest.split_once('"').map(|(path, _)| path.to_string())
                            }
                            None => None,
                        });
                    }
                    if text.starts_with("serde(") && text.contains("skip") {
                        has_skip = true;
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, has_default, has_skip)
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advances past one type, stopping at a top-level comma. Angle brackets
/// arrive as individual `Punct`s, so nesting is tracked by depth.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, has_default, has_skip) = skip_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected ':' after field `{name}`, found {other:?}"),
        }
        i = skip_type(&toks, i);
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        fields.push(Field {
            name,
            default: has_default,
            skip: has_skip,
        });
    }
    fields
}

/// Counts the types in a tuple-struct/-variant body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        let (ni, _, _) = skip_attrs(&toks, i);
        i = skip_vis(&toks, ni);
        if i >= toks.len() {
            break;
        }
        i = skip_type(&toks, i);
        count += 1;
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (ni, _, _) = skip_attrs(&toks, i);
        i = ni;
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _, _) = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde derive (vendored): generic types are not supported");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unsupported struct body {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unsupported enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Input { name, shape }
}

fn named_fields_ser(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("let mut __map = ::serde::value::Map::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        out.push_str(&format!(
            "__map.insert(::std::string::String::from(\"{n}\"), \
             ::serde::ser::Serialize::ser_value({p}{n}));\n",
            n = f.name,
            p = access_prefix,
        ));
    }
    out.push_str("::serde::value::Value::Object(__map)");
    out
}

/// Builds the `field: ...` initializers for rebuilding named fields from
/// the object bound to `__map`.
fn named_fields_de(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{n}: ::std::default::Default::default(),\n",
                n = f.name,
            ));
            continue;
        }
        let missing = match &f.default {
            // The default-fn path resolves in the deriving module's scope,
            // same as real serde.
            Some(Some(path)) => format!("{path}()"),
            Some(None) => "::std::default::Default::default()".to_string(),
            None => format!("::serde::de::missing_field(\"{}\")?", f.name),
        };
        out.push_str(&format!(
            "{n}: match __map.get(\"{n}\") {{\n\
             ::std::option::Option::Some(__v) => \
             ::serde::de::Deserialize::deser_value(__v)\
             .map_err(|__e| __e.in_field(\"{n}\"))?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            n = f.name,
        ));
    }
    out
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => named_fields_ser(fields, "&self."),
        Shape::TupleStruct(1) => "::serde::ser::Serialize::ser_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::ser::Serialize::ser_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Array(::std::vec![{}])",
                items.join(", ")
            )
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let mut __outer = ::serde::value::Map::new();\n\
                         __outer.insert(::std::string::String::from(\"{vn}\"), \
                         ::serde::ser::Serialize::ser_value(__f0));\n\
                         ::serde::value::Value::Object(__outer)\n}},\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::ser::Serialize::ser_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut __outer = ::serde::value::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::value::Value::Array(::std::vec![{items}]));\n\
                             ::serde::value::Value::Object(__outer)\n}},\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_ser(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let __inner = {{ {inner} }};\n\
                             let mut __outer = ::serde::value::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{vn}\"), __inner);\n\
                             ::serde::value::Value::Object(__outer)\n}},\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
         fn ser_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let inits = named_fields_de(fields);
            format!(
                "let __map = __value.as_object().ok_or_else(|| \
                 ::serde::de::Error::unexpected(\"object\", __value))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::de::Deserialize::deser_value(__value)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de::Deserialize::deser_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::de::Error::unexpected(\"array\", __value))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"wrong tuple length\"));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::de::Deserialize::deser_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::de::Deserialize::deser_value(&__items[{i}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::de::Error::unexpected(\"array\", __inner))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(\
                             ::serde::de::Error::custom(\"wrong tuple length\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))\n}},\n",
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = named_fields_de(fields);
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __map = __inner.as_object().ok_or_else(|| \
                             ::serde::de::Error::unexpected(\"object\", __inner))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __value.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}`\", __other))),\n}};\n}}\n\
                 let __map = __value.as_object().ok_or_else(|| \
                 ::serde::de::Error::unexpected(\"string or object\", __value))?;\n\
                 if __map.len() != 1 {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"expected an object with exactly one variant key\"));\n}}\n\
                 let (__key, __inner) = __map.iter().next().unwrap();\n\
                 match __key.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::de::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}`\", __other))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::de::Deserialize for {name} {{\n\
         fn deser_value(__value: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().unwrap()
}
