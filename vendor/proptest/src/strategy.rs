//! Strategy combinators: how test inputs are sampled.

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `sample` draws a single
/// concrete value, and failing cases are not shrunk.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.below(self.start as u64, self.end as u64) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.below(*self.start() as u64, (*self.end() as u64).saturating_add(1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                // Shift into unsigned space to keep the draw uniform.
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let off = rng.below(0, span.max(1));
                (self.start as i64).wrapping_add(off as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit() as f32
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed alternatives; built by `prop_oneof!`.
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(0, self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// `prop::collection::vec(element, len_range)`.
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.below(self.len.start as u64, self.len.end as u64) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let x = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = (-3i32..4).sample(&mut rng);
            assert!((-3..4).contains(&y));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::from_seed(2);
        let strat = (1u32..5, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1.0..5.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let mut rng = TestRng::from_seed(3);
        let strat = vec(0u64..10, 2..6);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }
}
