//! Offline subset of the `proptest` API.
//!
//! Implements the pieces this workspace uses — the [`Strategy`] trait,
//! range/tuple/`Just`/`prop_oneof!`/`prop::collection::vec` strategies,
//! `.prop_map`, and the `proptest!` / `prop_assert*` macros — as a plain
//! sampling loop over a seeded RNG. Failing inputs are reported via panic
//! message but **not shrunk**; each test function runs
//! `ProptestConfig::cases` random cases deterministically (fixed seed per
//! test body, so failures reproduce).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod strategy;

pub mod collection {
    pub use crate::strategy::vec;
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Accepted for signature compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic RNG handed to strategies during sampling.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `u64` in `[lo, hi)`; `lo` when the range is empty.
    #[inline]
    pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }
}

/// Derives a per-test seed from the test function's name, so adding a test
/// never perturbs the cases another test sees.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

pub use strategy::{Just, Map, OneOf, Strategy, VecStrategy};

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
    // `prop::collection::vec(...)` etc. resolve through this alias.
    pub use crate as prop;
}

/// Runs `cases` sampled inputs through a test body. Used by the
/// `proptest!` macro expansion; not public API in the real crate, but
/// harmless to expose here.
pub fn run_cases<T>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &dyn Fn(&mut TestRng) -> T,
    body: &dyn Fn(T) -> Result<(), String>,
) {
    let mut rng = TestRng::from_seed(seed_for(test_name));
    for case in 0..config.cases {
        let input = strategy(&mut rng);
        if let Err(msg) = body(input) {
            panic!("proptest case {}/{} failed: {msg}", case + 1, config.cases);
        }
    }
}

/// Property-test entry point. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..Default::default() })]
///     #[test]
///     fn my_prop(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &|__rng| ( $( $crate::Strategy::sample(&($strat), __rng) ),+ , ),
                    &|( $($arg),+ , )| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{})",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}:{}): {}",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?}, {}:{})",
                stringify!($a),
                stringify!($b),
                left,
                file!(),
                line!()
            ));
        }
    }};
}

/// Weighted-choice strategy combinator; weights (`w => strat`) are
/// accepted and treated as uniform alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}
