//! Offline subset of the `serde_json` API over the vendored `serde`
//! [`Value`] tree: `to_string`/`to_string_pretty`, `from_str`,
//! `to_value`/`from_value`, and the `json!` macro.

use std::fmt;

pub use serde::value::{Map, Number, Value};

/// Unified error for parsing and value conversion.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::ParseError> for Error {
    fn from(e: serde::value::ParseError) -> Self {
        Error {
            message: e.to_string(),
        }
    }
}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error {
            message: e.to_string(),
        }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Renders a serializable type as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.ser_value().to_string())
}

/// Renders a serializable type as pretty-printed JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    serde::value::write_value_pretty(&value.ser_value(), &mut out)
        .expect("formatting into a String cannot fail");
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let v = serde::value::parse(text)?;
    Ok(T::deser_value(&v)?)
}

/// Converts a serializable type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.ser_value())
}

/// Rebuilds a deserializable type from a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    Ok(T::deser_value(&value)?)
}

/// Builds a [`Value`] from JSON-like syntax. Interpolated expressions go
/// through [`to_value`], like the real macro.
#[macro_export]
macro_rules! json {
    ($($tokens:tt)+) => { $crate::json_internal!($($tokens)+) };
}

/// Value dispatch for [`json!`]: JSON keywords and composite literals get
/// structural treatment, everything else is an interpolated expression.
#[doc(hidden)]
/// Implementation detail of the `json!` macro: pushing through a free
/// function keeps expansion sites clear of `vec_init_then_push` lints.
#[doc(hidden)]
pub fn json_push(items: &mut Vec<Value>, value: Value) {
    items.push(value);
}

#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tokens:tt)+ ]) => {{
        let mut items = ::std::vec::Vec::new();
        $crate::json_seq!(@arr items () $($tokens)+);
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tokens:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_seq!(@key map $($tokens)+);
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

/// Token muncher for [`json!`] sequences: accumulates value tokens until a
/// top-level comma, so interpolated values may be arbitrary expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_seq {
    // Object: `"key": value-tokens , ...`
    (@key $map:ident $key:literal : $($rest:tt)+) => {
        $crate::json_seq!(@objval $map $key () $($rest)+)
    };
    (@objval $map:ident $key:literal ($($acc:tt)+) , $($rest:tt)+) => {
        $map.insert(::std::string::String::from($key), $crate::json_internal!($($acc)+));
        $crate::json_seq!(@key $map $($rest)+);
    };
    // Trailing comma or end of input.
    (@objval $map:ident $key:literal ($($acc:tt)+) $(,)?) => {
        $map.insert(::std::string::String::from($key), $crate::json_internal!($($acc)+));
    };
    (@objval $map:ident $key:literal ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_seq!(@objval $map $key ($($acc)* $next) $($rest)*)
    };
    // Array: `value-tokens , ...`
    (@arr $items:ident ($($acc:tt)+) , $($rest:tt)+) => {
        $crate::json_push(&mut $items, $crate::json_internal!($($acc)+));
        $crate::json_seq!(@arr $items () $($rest)+);
    };
    (@arr $items:ident ($($acc:tt)+) $(,)?) => {
        $crate::json_push(&mut $items, $crate::json_internal!($($acc)+));
    };
    (@arr $items:ident ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_seq!(@arr $items ($($acc)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let xs: Vec<Value> = (0..3).map(|i| json!({ "i": i })).collect();
        let v = json!({
            "name": "demo",
            "ok": true,
            "count": 3u64,
            "items": xs,
            "nothing": null,
        });
        assert_eq!(v["name"], "demo");
        assert_eq!(v["ok"], true);
        assert_eq!(v["count"].as_u64(), Some(3));
        assert_eq!(v["items"][1]["i"].as_u64(), Some(1));
        assert!(v["nothing"].is_null());
    }

    #[test]
    fn pretty_output_reparses() {
        let v = json!({ "a": [1, 2], "b": { "c": 0.5 } });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
