//! Offline subset of the `rayon` API that executes **sequentially**.
//!
//! The workspace only uses `par_iter`/`into_par_iter` as drop-in parallel
//! maps; mapping them to the standard sequential iterators preserves
//! results and ordering exactly (rayon's `collect` is order-preserving),
//! trading parallel speed-up for zero dependencies. Swapping the real
//! rayon back in changes nothing observable.

pub mod prelude {
    /// `par_iter()` on slice-like containers → sequential `iter()`.
    pub trait IntoParallelRefIterator<'a> {
        type Iter: Iterator<Item = Self::Item>;
        type Item: 'a;

        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
        type Iter = std::slice::Iter<'a, T>;
        type Item = &'a T;

        fn par_iter(&'a self) -> Self::Iter {
            self.iter()
        }
    }

    /// `into_par_iter()` → sequential `into_iter()`.
    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;

        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Iter = std::ops::Range<u32>;
        type Item = u32;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::RangeInclusive<u32> {
        type Iter = std::ops::RangeInclusive<u32>;
        type Item = u32;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        type Item = usize;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for std::ops::RangeInclusive<usize> {
        type Iter = std::ops::RangeInclusive<usize>;
        type Item = usize;

        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squares: Vec<u32> = (1..=4u32).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![1, 4, 9, 16]);
    }
}
