//! Fleet *service* determinism: a multi-tenant workload's report and
//! journal are pure functions of (root seed, workload, policy, quantum) —
//! worker count must leave no trace in the bytes, even when the schedule
//! preempts and resumes jobs mid-simulation (DESIGN.md §16).

use eadt::core::AlgorithmKind;
use eadt::endsys::{ArbitrationPolicy, PoolCapacity};
use eadt::fleet::{JobSpec, ServiceJob, ServiceRun, ServiceSession, Workload};

fn pool(slots: u32) -> PoolCapacity {
    let tb = eadt::testbeds::didclab();
    PoolCapacity::from_servers(tb.env.link.bandwidth, &tb.env.src.servers, slots)
}

fn spec(kind: AlgorithmKind, scale: f64) -> JobSpec {
    JobSpec::new(kind, eadt::testbeds::didclab())
        .with_scale(scale)
        .with_max_channel(2)
}

/// Two tenants contending for one site; slots for both, so contention is
/// purely in the bandwidth/disk arbitration.
fn contended_workload() -> Workload {
    Workload::new()
        .site("didclab", pool(2))
        .job(ServiceJob::new(spec(AlgorithmKind::Sc, 0.01), "didclab").with_tenant(0))
        .job(
            ServiceJob::new(spec(AlgorithmKind::ProMc, 0.01), "didclab")
                .with_tenant(1)
                .with_priority(5),
        )
}

/// One core slot and a late-arriving high-priority job: under strict
/// priority the low-priority incumbent is preempted mid-transfer and
/// later resumed from its engine checkpoint.
fn preemption_workload() -> Workload {
    Workload::new()
        .site("didclab", pool(1))
        .arrival_gap_s(20.0)
        .job(
            ServiceJob::new(spec(AlgorithmKind::Sc, 0.05), "didclab")
                .with_tenant(0)
                .with_priority(1),
        )
        .job(
            ServiceJob::new(spec(AlgorithmKind::ProMc, 0.01), "didclab")
                .with_tenant(1)
                .with_priority(9),
        )
}

fn run(workload: &Workload, seed: u64, workers: usize, policy: ArbitrationPolicy) -> ServiceRun {
    ServiceSession::builder()
        .root_seed(seed)
        .workers(workers)
        .policy(policy)
        .quantum(100)
        .build()
        .run(workload)
        .expect("workload is valid")
}

#[test]
fn service_report_and_journal_are_identical_across_worker_counts() {
    let workload = contended_workload();
    let baseline = run(&workload, 7, 1, ArbitrationPolicy::FairShare);
    let base_json = baseline.report.to_json();
    let base_journal = baseline.journal.to_jsonl();
    assert!(base_json.contains("\"root_seed\": 7"), "{base_json}");
    assert_eq!(baseline.report.completed_count(), 2);
    for workers in [2, 4] {
        let got = run(&workload, 7, workers, ArbitrationPolicy::FairShare);
        assert_eq!(
            base_json,
            got.report.to_json(),
            "{workers}-worker service report diverged from serial"
        );
        assert_eq!(
            base_journal,
            got.journal.to_jsonl(),
            "{workers}-worker service journal diverged from serial"
        );
    }
}

#[test]
fn preemption_and_resume_leave_no_worker_count_trace() {
    let workload = preemption_workload();
    let baseline = run(&workload, 5, 1, ArbitrationPolicy::StrictPriority);
    let journal = baseline.journal.to_jsonl();
    assert!(
        baseline.report.jobs.iter().any(|j| j.preemptions > 0),
        "scenario must actually preempt: {}",
        baseline.report.to_json()
    );
    assert!(journal.contains("\"ev\":\"job_preempted\""), "{journal}");
    assert!(journal.contains("\"ev\":\"job_resumed\""), "{journal}");
    assert_eq!(baseline.report.completed_count(), 2, "victim must finish");
    for workers in [2, 4] {
        let got = run(&workload, 5, workers, ArbitrationPolicy::StrictPriority);
        assert_eq!(
            baseline.report.to_json(),
            got.report.to_json(),
            "{workers}-worker preempting schedule diverged from serial"
        );
        assert_eq!(
            journal,
            got.journal.to_jsonl(),
            "{workers}-worker journal diverged from serial"
        );
    }
}

#[test]
fn contended_tenants_differ_from_isolated_baseline() {
    let shared = run(&contended_workload(), 3, 2, ArbitrationPolicy::FairShare).report;
    // Same specs and explicit seeds, each alone on an identical site.
    let mut isolated = Vec::new();
    for job in contended_workload().jobs() {
        let solo = Workload::new()
            .site("didclab", pool(2))
            .job(ServiceJob::new(
                job.spec
                    .clone()
                    .with_seed(shared.jobs[isolated.len()].outcome.seed),
                "didclab",
            ));
        isolated.push(run(&solo, 3, 1, ArbitrationPolicy::FairShare).report);
    }
    let shared_site = &shared.sites[0];
    let solo_energy: f64 = isolated.iter().map(|r| r.sites[0].energy_j).sum();
    assert!(
        (shared_site.energy_j - solo_energy).abs() > 1e-6,
        "sharing the site must change aggregate energy: shared {} vs isolated {}",
        shared_site.energy_j,
        solo_energy
    );
    for (j, solo) in shared.jobs.iter().zip(&isolated) {
        assert!(
            (j.outcome.throughput_mbps - solo.jobs[0].outcome.throughput_mbps).abs() > 1e-6,
            "tenant {} throughput unchanged by contention",
            j.tenant
        );
    }
}

#[test]
fn fair_and_priority_schedules_differ_but_each_is_deterministic() {
    let workload = preemption_workload();
    let fair = run(&workload, 11, 2, ArbitrationPolicy::FairShare);
    let strict = run(&workload, 11, 2, ArbitrationPolicy::StrictPriority);
    assert_ne!(
        fair.report.to_json(),
        strict.report.to_json(),
        "arbitration policy must reach the report"
    );
    assert_ne!(fair.journal.to_jsonl(), strict.journal.to_jsonl());
    for (name, first) in [("fair", &fair), ("priority", &strict)] {
        let policy = match name {
            "fair" => ArbitrationPolicy::FairShare,
            _ => ArbitrationPolicy::StrictPriority,
        };
        let again = run(&workload, 11, 2, policy);
        assert_eq!(
            first.report.to_json(),
            again.report.to_json(),
            "{name} policy rerun diverged"
        );
        assert_eq!(first.journal.to_jsonl(), again.journal.to_jsonl());
    }
}
