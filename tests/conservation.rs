//! Property-based invariants of the full stack: whatever the dataset and
//! parameters, transfers conserve bytes, never create negative energy, and
//! report internally consistent numbers.

use eadt::core::baselines::{GlobusUrlCopy, ProMc, SingleChunk};
use eadt::core::{Algorithm, MinE, RunCtx};
use eadt::sim::Bytes;
use eadt::testbeds::xsede;
use eadt_dataset::Dataset;
use proptest::prelude::*;

fn arbitrary_dataset() -> impl Strategy<Value = Dataset> {
    // 1–40 files of 1–600 MB each: spans Small/Medium/Large on XSEDE.
    prop::collection::vec(1u64..600, 1..40)
        .prop_map(|mbs| Dataset::from_sizes("prop", mbs.into_iter().map(Bytes::from_mb)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn transfers_conserve_bytes(dataset in arbitrary_dataset(), cc in 1u32..10) {
        let tb = xsede();
        let r = ProMc::new(cc).run(&mut RunCtx::new(&tb.env, &dataset));
        prop_assert!(r.completed);
        prop_assert_eq!(r.moved_bytes, dataset.total_size());
        prop_assert!(r.wire_bytes >= r.moved_bytes);
    }

    #[test]
    fn reports_are_internally_consistent(dataset in arbitrary_dataset(), cc in 1u32..8) {
        let tb = xsede();
        let r = MinE::new(cc).run(&mut RunCtx::new(&tb.env, &dataset));
        prop_assert!(r.completed);
        prop_assert!(r.total_energy_j() > 0.0);
        prop_assert!(r.src_energy_j > 0.0 && r.dst_energy_j > 0.0);
        prop_assert!(r.duration.as_secs_f64() > 0.0);
        // avg throughput × duration reproduces the byte count (±1 slice).
        let implied = r.avg_throughput().as_bps() * r.duration.as_secs_f64() / 8.0;
        let actual = r.moved_bytes.as_f64();
        prop_assert!((implied - actual).abs() / actual < 0.01,
            "implied {} vs actual {}", implied, actual);
        prop_assert!(r.packets > 0);
    }

    #[test]
    fn sequential_never_beats_wall_clock_of_concurrent(dataset in arbitrary_dataset()) {
        let tb = xsede();
        let seq = SingleChunk::new(6).run(&mut RunCtx::new(&tb.env, &dataset));
        let conc = ProMc::new(6).run(&mut RunCtx::new(&tb.env, &dataset));
        prop_assert!(seq.completed && conc.completed);
        // Multi-chunk overlap can only help (± a couple of slices of
        // scheduling noise).
        prop_assert!(conc.duration.as_secs_f64() <= seq.duration.as_secs_f64() + 1.0,
            "concurrent {} vs sequential {}", conc.duration, seq.duration);
    }

    #[test]
    fn single_channel_baseline_is_slowest(dataset in arbitrary_dataset()) {
        let tb = xsede();
        let guc = GlobusUrlCopy::new().run(&mut RunCtx::new(&tb.env, &dataset));
        let tuned = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
        prop_assert!(guc.completed && tuned.completed);
        prop_assert!(
            tuned.avg_throughput().as_mbps() >= guc.avg_throughput().as_mbps() * 0.99,
            "tuned {} vs GUC {}", tuned.avg_throughput(), guc.avg_throughput()
        );
    }
}
