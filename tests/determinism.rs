//! Full-stack determinism: every experiment must be exactly reproducible
//! from its seed — the property the whole benchmark harness rests on.

use eadt::core::baselines::ProMc;
use eadt::core::{Algorithm, Htee, MinE, RunCtx, Slaee};
use eadt::testbeds::{didclab, xsede};

#[test]
fn identical_seeds_produce_identical_reports() {
    let tb = xsede();
    let d1 = tb.dataset_spec.scaled(0.02).generate(9);
    let d2 = tb.dataset_spec.scaled(0.02).generate(9);
    assert_eq!(d1, d2);
    for run in 0..2 {
        let a = MinE::new(6).run(&mut RunCtx::new(&tb.env, &d1));
        let b = MinE::new(6).run(&mut RunCtx::new(&tb.env, &d2));
        assert_eq!(a.duration, b.duration, "run {run}");
        assert_eq!(a.moved_bytes, b.moved_bytes);
        assert!((a.total_energy_j() - b.total_energy_j()).abs() < 1e-9);
        assert_eq!(a.packets, b.packets);
    }
}

#[test]
fn different_seeds_produce_different_datasets_but_similar_shapes() {
    let tb = xsede();
    let d1 = tb.dataset_spec.scaled(0.03).generate(1);
    let d2 = tb.dataset_spec.scaled(0.03).generate(2);
    assert_ne!(d1, d2);
    let r1 = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &d1));
    let r2 = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &d2));
    let t1 = r1.avg_throughput().as_mbps();
    let t2 = r2.avg_throughput().as_mbps();
    // Same spec, different draw: results agree within a generous band.
    assert!(
        (t1 - t2).abs() / t1.max(t2) < 0.35,
        "throughputs diverged: {t1} vs {t2}"
    );
}

#[test]
fn adaptive_algorithms_are_deterministic_too() {
    let tb = didclab();
    let d = tb.dataset_spec.scaled(0.03).generate(5);
    let h1 = Htee::new(8).run(&mut RunCtx::new(&tb.env, &d));
    let h2 = Htee::new(8).run(&mut RunCtx::new(&tb.env, &d));
    assert_eq!(h1.duration, h2.duration);
    assert_eq!(
        h1.concurrency_series.samples(),
        h2.concurrency_series.samples()
    );

    let reference = ProMc::new(1).run(&mut RunCtx::new(&tb.env, &d));
    let s1 = Slaee::new(0.8, reference.avg_throughput(), 8).run(&mut RunCtx::new(&tb.env, &d));
    let s2 = Slaee::new(0.8, reference.avg_throughput(), 8).run(&mut RunCtx::new(&tb.env, &d));
    assert_eq!(s1.duration, s2.duration);
    assert!((s1.total_energy_j() - s2.total_energy_j()).abs() < 1e-9);
}
