//! Invariant-auditor smoke runs (DESIGN.md §10).
//!
//! Compiled only with `--features debug-invariants`: each scenario drives
//! a full algorithm on a real testbed with the conservation assertions
//! armed inside the engine, fault runtime and planners, so a violated
//! invariant panics here before it can skew a paper figure. CI runs the
//! tier-1 suite once with the feature on (the `lint-conformance` +
//! audited-test jobs in `.github/workflows/ci.yml`).
#![cfg(feature = "debug-invariants")]

use eadt::core::baselines::ProMc;
use eadt::core::{Algorithm, Htee, MinE, RunCtx, Slaee};
use eadt::sim::{Rate, SimDuration};
use eadt::testbeds::{didclab, futuregrid, xsede};
use eadt::transfer::{FaultModel, OutageModel, SiteSide};

#[test]
fn audited_paper_algorithms_hold_on_xsede() {
    let tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.02).generate(17);
    for cc in [1, 4, 10] {
        assert!(
            MinE::new(cc)
                .run(&mut RunCtx::new(&tb.env, &dataset))
                .completed
        );
        assert!(
            Htee::new(cc)
                .run(&mut RunCtx::new(&tb.env, &dataset))
                .completed
        );
        assert!(
            Slaee::new(0.7, Rate::from_gbps(7.0), cc)
                .run(&mut RunCtx::new(&tb.env, &dataset))
                .completed
        );
    }
}

#[test]
fn audited_algorithms_hold_under_faults_on_futuregrid() {
    let mut tb = futuregrid();
    let dataset = tb.dataset_spec.scaled(0.05).generate(23);
    tb.env.faults = Some(FaultModel::new(SimDuration::from_secs(25), 41).into());
    assert!(
        MinE::new(6)
            .run(&mut RunCtx::new(&tb.env, &dataset))
            .completed
    );
    assert!(
        Htee::new(6)
            .run(&mut RunCtx::new(&tb.env, &dataset))
            .completed
    );
    assert!(
        ProMc::new(6)
            .run(&mut RunCtx::new(&tb.env, &dataset))
            .completed
    );
}

#[test]
fn audited_run_holds_without_restart_markers_and_with_outages() {
    // The harshest accounting path: kills drop in-flight progress (the
    // retransmit ledger must absorb it) while an outage window starves
    // one destination server.
    let mut tb = didclab();
    let dataset = tb.dataset_spec.scaled(0.5).generate(29);
    tb.env.faults = Some(
        FaultModel {
            restart_markers: false,
            ..FaultModel::new(SimDuration::from_secs(15), 7)
        }
        .into(),
    );
    let r = ProMc::new(4).run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, dataset.total_size());

    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.02).generate(31);
    tb.env.faults = Some(
        eadt::transfer::FaultPlan::from(FaultModel::new(SimDuration::from_secs(30), 13))
            .with_outage(OutageModel::new(
                SiteSide::Dst,
                0,
                SimDuration::from_secs(40),
                SimDuration::from_secs(10),
                99,
            )),
    );
    let r = Slaee::new(0.7, Rate::from_gbps(7.0), 8).run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, dataset.total_size());
}
