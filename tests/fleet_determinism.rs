//! Fleet batch runner determinism: the aggregate report is a pure function
//! of (root seed, job list) — worker count, scheduling order and steal
//! pattern must leave no trace in the bytes.

use eadt::core::AlgorithmKind;
use eadt::fleet::{derive_job_seed, figures_matrix, JobSpec, Session};
use proptest::prelude::*;

/// A mixed batch that exercises every dispatch path the figures use:
/// tuned algorithms at several budgets on every testbed.
fn mixed_jobs() -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for tb in eadt::testbeds::all() {
        for kind in [
            AlgorithmKind::Sc,
            AlgorithmKind::MinE,
            AlgorithmKind::ProMc,
            AlgorithmKind::Htee,
        ] {
            for cc in [1, 4] {
                jobs.push(
                    JobSpec::new(kind, tb.clone())
                        .with_scale(0.003)
                        .with_max_channel(cc),
                );
            }
        }
    }
    jobs
}

#[test]
fn aggregate_json_is_identical_across_worker_counts() {
    let jobs = mixed_jobs();
    let baseline = Session::builder()
        .root_seed(7)
        .workers(1)
        .build()
        .run(&jobs)
        .to_json();
    assert!(baseline.contains("\"root_seed\": 7"), "{baseline}");
    for workers in [2, 4, 8] {
        let report = Session::builder()
            .root_seed(7)
            .workers(workers)
            .build()
            .run(&jobs);
        assert_eq!(
            baseline,
            report.to_json(),
            "{workers}-worker aggregate diverged from serial"
        );
    }
}

#[test]
fn different_root_seeds_change_the_aggregate() {
    let jobs: Vec<JobSpec> = figures_matrix(0.003).into_iter().take(4).collect();
    let a = Session::builder()
        .root_seed(1)
        .workers(2)
        .build()
        .run(&jobs);
    let b = Session::builder()
        .root_seed(2)
        .workers(2)
        .build()
        .run(&jobs);
    assert_ne!(a.to_json(), b.to_json(), "root seed must reach every job");
}

#[test]
fn job_seeds_never_collide_across_ten_thousand_jobs() {
    let mut seen = std::collections::BTreeMap::new();
    for index in 0..10_000u64 {
        let seed = derive_job_seed(99, index);
        if let Some(prev) = seen.insert(seed, index) {
            panic!("jobs {prev} and {index} derived the same seed {seed:#x}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..Default::default() })]
    /// Any root seed keeps per-job seeds collision-free over a large batch
    /// and stable across calls (same (root, index) → same seed).
    #[test]
    fn derived_seeds_are_unique_and_stable(root in 0u64..u64::MAX) {
        let mut seen = std::collections::BTreeMap::new();
        for index in 0..10_000u64 {
            let seed = derive_job_seed(root, index);
            prop_assert_eq!(seed, derive_job_seed(root, index));
            let prev = seen.insert(seed, index);
            prop_assert!(
                prev.is_none(),
                "root {}: jobs {:?} and {} share seed {:#x}",
                root, prev, index, seed
            );
        }
    }
}
