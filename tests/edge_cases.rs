//! Degenerate inputs the full stack must survive: empty datasets,
//! single-file datasets, zero-byte files, extreme parameters.

use eadt::core::baselines::{GlobusOnline, GlobusUrlCopy, ProMc, SingleChunk};
use eadt::core::{Algorithm, Htee, MinE, RunCtx, Slaee};
use eadt::dataset::Dataset;
use eadt::sim::{Bytes, Rate};
use eadt::testbeds::xsede;

fn empty() -> Dataset {
    Dataset::default()
}

#[test]
fn every_algorithm_survives_an_empty_dataset() {
    let tb = xsede();
    let d = empty();
    let algos: Vec<Box<dyn Algorithm>> = vec![
        Box::new(GlobusUrlCopy::new()),
        Box::new(GlobusOnline::new()),
        Box::new(SingleChunk::new(4)),
        Box::new(ProMc::new(4)),
        Box::new(MinE::new(4)),
        Box::new(Htee::new(4)),
        Box::new(Slaee::new(0.8, Rate::from_gbps(5.0), 4)),
    ];
    for a in &algos {
        let r = a.run(&mut RunCtx::new(&tb.env, &d));
        assert!(r.completed, "{} on empty dataset", a.name());
        assert_eq!(r.moved_bytes, Bytes::ZERO, "{}", a.name());
        assert_eq!(r.total_energy_j(), 0.0, "{}", a.name());
        assert_eq!(r.packets, 0, "{}", a.name());
    }
}

#[test]
fn single_tiny_file_transfers() {
    let tb = xsede();
    let d = Dataset::from_sizes("one", [Bytes::from_kb(1)]);
    let r = ProMc::new(12).run(&mut RunCtx::new(&tb.env, &d));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, Bytes::from_kb(1));
    assert!(r.duration.as_secs_f64() > 0.0);
    assert!(r.packets >= 1);
}

#[test]
fn single_huge_file_uses_one_channel_effectively() {
    let tb = xsede();
    let d = Dataset::from_sizes("huge", [Bytes::from_gb(20)]);
    // Twelve channels cannot parallelise one file beyond its own streams.
    let r = ProMc::new(12).run(&mut RunCtx::new(&tb.env, &d));
    assert!(r.completed);
    // One channel at p=2 → ≤ 2 Gbps proc cap on XSEDE.
    let thr = r.avg_throughput().as_gbps();
    assert!(
        thr <= 2.1,
        "one file cannot exceed a channel's ceiling: {thr}"
    );
}

#[test]
fn zero_byte_files_are_pure_overhead() {
    let tb = xsede();
    let mut sizes = vec![Bytes::from_mb(100); 3];
    sizes.extend([Bytes(0); 5]);
    let d = Dataset::from_sizes("zeros", sizes);
    let r = ProMc::new(4).run(&mut RunCtx::new(&tb.env, &d));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, Bytes::from_mb(300));
}

#[test]
fn extreme_concurrency_still_conserves() {
    let tb = xsede();
    let d = Dataset::from_sizes("few", vec![Bytes::from_mb(50); 6]);
    // Far more channels than files: the surplus idles harmlessly.
    let r = ProMc::new(64).run(&mut RunCtx::new(&tb.env, &d));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, d.total_size());
}

#[test]
fn slaee_with_zero_reference_throughput_terminates() {
    let tb = xsede();
    let d = Dataset::from_sizes("d", vec![Bytes::from_mb(200); 4]);
    // A zero reference makes the target zero: always satisfied.
    let r = Slaee::new(0.9, Rate::ZERO, 8).run(&mut RunCtx::new(&tb.env, &d));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, d.total_size());
}

#[test]
fn prelude_exposes_the_advertised_api() {
    // The facade's prelude is the documented entry point; keep it honest.
    use eadt::prelude::*;
    let tb = didclab();
    let _ = (xsede(), futuregrid());
    let dataset = tb.dataset_spec.scaled(0.005).generate(1);
    let report: TransferReport = MinE::new(2).run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(report.completed);
    let params = TransferParams::new(2, 2, 2);
    assert_eq!(params.total_streams(), 4);
    let _: SimDuration = report.duration;
    let _: Bytes = report.moved_bytes;
    let _: Rate = report.avg_throughput();
    let _: SimTime = eadt::sim::SimTime::ZERO;
    let _algos: (
        Htee,
        Slaee,
        GlobusUrlCopy,
        GlobusOnline,
        SingleChunk,
        ProMc,
        BruteForce,
    ) = (
        Htee::new(2),
        Slaee::new(0.5, report.avg_throughput(), 2),
        GlobusUrlCopy::new(),
        GlobusOnline::new(),
        SingleChunk::new(2),
        ProMc::new(2),
        BruteForce::new(2),
    );
}
