//! Macro-stepping equivalence: the event-horizon fast path must not change
//! a single byte of output.
//!
//! Every algorithm runs twice on every testbed — once with event-horizon
//! macro-stepping (the default) and once with `macro_step = false` (the
//! CLI's `--no-macro-step`) — and the *serialized* `TransferReport` plus
//! the telemetry journal JSONL are compared for byte identity. The same
//! matrix repeats under fault plans (MTBF channel failures, correlated
//! outages + stalls + disk degradation, markers-off restarts) and
//! background cross traffic, because those are exactly the state sources
//! the horizon computation must respect.
//!
//! Controller coverage (checked by the `eadt-lint` `horizon` rule): every
//! production `Controller` that overrides `next_decision_in` is exercised
//! here — `NullController` (Manual, and inside every planner-driven run),
//! `FaultAware` (fault-aware Manual/HTEE/SLAEE/ProMC), `HteeController`
//! (HTEE) and `SlaeeController` (SLAEE).

use eadt::core::baselines::{BruteForce, GlobusOnline, GlobusUrlCopy, ProMc, SingleChunk};
use eadt::core::{Algorithm, AlgorithmKind, Htee, MinE, RunCtx, Slaee};
use eadt::sim::SimDuration;
use eadt::telemetry::{Telemetry, DEFAULT_CADENCE};
use eadt::testbeds::{didclab, futuregrid, xsede, Environment};
use eadt::transfer::{
    BackgroundTraffic, DiskDegradationModel, FaultModel, FaultPlan, OutageModel, SiteSide,
    StallModel,
};

const SEED: u64 = 11;
const SCALE: f64 = 0.01;

/// Runs one algorithm with journal + metrics telemetry and returns the
/// serialized report and journal — the two artifacts that must be
/// bit-identical with and without macro-stepping.
fn run_once(tb: &Environment, kind: AlgorithmKind, fault_aware: bool) -> (String, String) {
    let dataset = tb.dataset_spec.scaled(SCALE).generate(SEED);
    let partition = tb.partition;
    let mut tel = Telemetry::enabled(DEFAULT_CADENCE);
    let report = {
        let mut ctx = RunCtx::with_telemetry(&tb.env, &dataset, &mut tel);
        match kind {
            AlgorithmKind::MinE => MinE {
                partition,
                ..MinE::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Htee => Htee {
                partition,
                fault_aware,
                ..Htee::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Slaee => {
                let reference = ProMc {
                    partition,
                    ..ProMc::new(tb.reference_concurrency)
                }
                .run(&mut RunCtx::new(&tb.env, &dataset));
                Slaee {
                    partition,
                    fault_aware,
                    ..Slaee::new(0.8, reference.avg_throughput(), 6)
                }
                .run(&mut ctx)
            }
            AlgorithmKind::Guc => GlobusUrlCopy::new().run(&mut ctx),
            AlgorithmKind::Go => GlobusOnline::new().run(&mut ctx),
            AlgorithmKind::Sc => SingleChunk {
                partition,
                ..SingleChunk::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::ProMc => ProMc {
                partition,
                fault_aware,
                ..ProMc::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Bf => BruteForce {
                partition,
                ..BruteForce::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Manual => {
                let plan = eadt::transfer::uniform_plan(
                    &dataset,
                    eadt::transfer::TransferParams::new(4, 4, 4),
                    eadt::endsys::Placement::PackFirst,
                );
                let engine = eadt::transfer::Engine::new(&tb.env);
                if fault_aware {
                    engine.run_instrumented(
                        &plan,
                        &mut eadt::transfer::FaultAware::new(eadt::transfer::NullController),
                        &mut tel,
                    )
                } else {
                    engine.run_instrumented(&plan, &mut eadt::transfer::NullController, &mut tel)
                }
            }
        }
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let journal = tel.into_journal().expect("journal attached").to_jsonl();
    (json, journal)
}

/// Asserts byte identity of report + journal across the macro-step toggle
/// for one (testbed, fault-plan) cell, over every algorithm.
fn assert_matrix(mut tb: Environment, label: &str, fault_aware: bool) {
    for kind in AlgorithmKind::ALL {
        tb.env.tuning.macro_step = true;
        let (fast_report, fast_journal) = run_once(&tb, kind, fault_aware);
        tb.env.tuning.macro_step = false;
        let (slow_report, slow_journal) = run_once(&tb, kind, fault_aware);
        assert_eq!(
            fast_report, slow_report,
            "{label}/{kind}: macro-stepped report differs from slice-by-slice"
        );
        assert_eq!(
            fast_journal, slow_journal,
            "{label}/{kind}: macro-stepped journal differs from slice-by-slice"
        );
    }
}

fn testbeds() -> [(Environment, &'static str); 3] {
    [
        (xsede(), "xsede"),
        (futuregrid(), "futuregrid"),
        (didclab(), "didclab"),
    ]
}

#[test]
fn every_algorithm_is_bit_identical_without_faults() {
    for (tb, name) in testbeds() {
        assert_matrix(tb, name, false);
    }
}

#[test]
fn every_algorithm_is_bit_identical_under_mtbf_faults() {
    for (mut tb, name) in testbeds() {
        tb.env.faults = Some(FaultPlan::channel_only(FaultModel::new(
            SimDuration::from_secs(30),
            7,
        )));
        assert_matrix(tb, &format!("{name}+mtbf"), true);
    }
}

#[test]
fn every_algorithm_is_bit_identical_under_correlated_faults() {
    for (mut tb, name) in testbeds() {
        tb.env.faults = Some(
            FaultPlan::channel_only(FaultModel::new(SimDuration::from_secs(45), 11))
                .with_outage(OutageModel::new(
                    SiteSide::Src,
                    0,
                    SimDuration::from_secs(20),
                    SimDuration::from_secs(3),
                    13,
                ))
                .with_stall(StallModel::new(
                    SimDuration::from_secs(15),
                    SimDuration::from_secs(2),
                    4.0,
                    17,
                ))
                .with_disk(DiskDegradationModel::new(
                    SiteSide::Dst,
                    0,
                    SimDuration::from_secs(25),
                    SimDuration::from_secs(4),
                    0.4,
                    19,
                )),
        );
        tb.env.background = Some(BackgroundTraffic::square(
            SimDuration::from_secs(10),
            SimDuration::from_secs(4),
            0.5,
        ));
        assert_matrix(tb, &format!("{name}+correlated"), true);
    }
}

#[test]
fn every_algorithm_is_bit_identical_with_markers_off() {
    for (mut tb, name) in testbeds() {
        let mut plan = FaultPlan::channel_only(FaultModel::new(SimDuration::from_secs(12), 23));
        plan.drop_restart_markers = true;
        tb.env.faults = Some(plan);
        assert_matrix(tb, &format!("{name}+markers-off"), false);
    }
}
