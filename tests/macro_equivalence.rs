//! Macro-stepping equivalence: the event-horizon fast path must not change
//! a single byte of output.
//!
//! Every algorithm runs twice on every testbed — once with event-horizon
//! macro-stepping (the default) and once with `macro_step = false` (the
//! CLI's `--no-macro-step`) — and the *serialized* `TransferReport` plus
//! the telemetry journal JSONL are compared for byte identity. The same
//! matrix repeats under fault plans (MTBF channel failures, correlated
//! outages + stalls + disk degradation, markers-off restarts) and
//! background cross traffic, because those are exactly the state sources
//! the horizon computation must respect.
//!
//! Controller coverage (checked by the `eadt-lint` `horizon` rule): every
//! production `Controller` that overrides `next_decision_in` is exercised
//! here — `NullController` (Manual, and inside every planner-driven run),
//! `FaultAware` (fault-aware Manual/HTEE/SLAEE/ProMC), `HteeController`
//! (HTEE), `SlaeeController` (SLAEE), and the bench measurement probes
//! `SliceCounter` and `AllocWindow` (never-wake observers).

use eadt::core::baselines::{BruteForce, GlobusOnline, GlobusUrlCopy, ProMc, SingleChunk};
use eadt::core::{Algorithm, AlgorithmKind, Htee, MinE, RunCtx, Slaee};
use eadt::sim::SimDuration;
use eadt::telemetry::{Telemetry, DEFAULT_CADENCE};
use eadt::testbeds::{didclab, futuregrid, xsede, Environment};
use eadt::transfer::{
    BackgroundTraffic, DiskDegradationModel, FaultModel, FaultPlan, OutageModel, SiteSide,
    StallModel,
};

const SEED: u64 = 11;
const SCALE: f64 = 0.01;

/// Runs one algorithm with journal + metrics telemetry and returns the
/// serialized report and journal — the two artifacts that must be
/// bit-identical with and without macro-stepping.
fn run_once(tb: &Environment, kind: AlgorithmKind, fault_aware: bool) -> (String, String) {
    let dataset = tb.dataset_spec.scaled(SCALE).generate(SEED);
    let partition = tb.partition;
    let mut tel = Telemetry::enabled(DEFAULT_CADENCE);
    let report = {
        let mut ctx = RunCtx::with_telemetry(&tb.env, &dataset, &mut tel);
        match kind {
            AlgorithmKind::MinE => MinE {
                partition,
                ..MinE::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Htee => Htee {
                partition,
                fault_aware,
                ..Htee::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Slaee => {
                let reference = ProMc {
                    partition,
                    ..ProMc::new(tb.reference_concurrency)
                }
                .run(&mut RunCtx::new(&tb.env, &dataset));
                Slaee {
                    partition,
                    fault_aware,
                    ..Slaee::new(0.8, reference.avg_throughput(), 6)
                }
                .run(&mut ctx)
            }
            AlgorithmKind::Guc => GlobusUrlCopy::new().run(&mut ctx),
            AlgorithmKind::Go => GlobusOnline::new().run(&mut ctx),
            AlgorithmKind::Sc => SingleChunk {
                partition,
                ..SingleChunk::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::ProMc => ProMc {
                partition,
                fault_aware,
                ..ProMc::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Bf => BruteForce {
                partition,
                ..BruteForce::new(6)
            }
            .run(&mut ctx),
            AlgorithmKind::Manual => {
                let plan = eadt::transfer::uniform_plan(
                    &dataset,
                    eadt::transfer::TransferParams::new(4, 4, 4),
                    eadt::endsys::Placement::PackFirst,
                );
                let engine = eadt::transfer::Engine::new(&tb.env);
                if fault_aware {
                    engine.run_instrumented(
                        &plan,
                        &mut eadt::transfer::FaultAware::new(eadt::transfer::NullController),
                        &mut tel,
                    )
                } else {
                    engine.run_instrumented(&plan, &mut eadt::transfer::NullController, &mut tel)
                }
            }
        }
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    let journal = tel.into_journal().expect("journal attached").to_jsonl();
    (json, journal)
}

/// Asserts byte identity of report + journal across the macro-step toggle
/// for one (testbed, fault-plan) cell, over every algorithm.
fn assert_matrix(mut tb: Environment, label: &str, fault_aware: bool) {
    for kind in AlgorithmKind::ALL {
        tb.env.tuning.macro_step = true;
        let (fast_report, fast_journal) = run_once(&tb, kind, fault_aware);
        tb.env.tuning.macro_step = false;
        let (slow_report, slow_journal) = run_once(&tb, kind, fault_aware);
        assert_eq!(
            fast_report, slow_report,
            "{label}/{kind}: macro-stepped report differs from slice-by-slice"
        );
        assert_eq!(
            fast_journal, slow_journal,
            "{label}/{kind}: macro-stepped journal differs from slice-by-slice"
        );
    }
}

fn testbeds() -> [(Environment, &'static str); 3] {
    [
        (xsede(), "xsede"),
        (futuregrid(), "futuregrid"),
        (didclab(), "didclab"),
    ]
}

/// The four fault regimes of the matrix, applied to one testbed. Returns
/// `(label suffix, configured testbed, fault_aware)` cells.
fn regimes(tb: Environment, name: &str) -> [(String, Environment, bool); 4] {
    let plain = tb.clone();
    let mut mtbf = tb.clone();
    mtbf.env.faults = Some(FaultPlan::channel_only(FaultModel::new(
        SimDuration::from_secs(30),
        7,
    )));
    let mut correlated = tb.clone();
    correlated.env.faults = Some(
        FaultPlan::channel_only(FaultModel::new(SimDuration::from_secs(45), 11))
            .with_outage(OutageModel::new(
                SiteSide::Src,
                0,
                SimDuration::from_secs(20),
                SimDuration::from_secs(3),
                13,
            ))
            .with_stall(StallModel::new(
                SimDuration::from_secs(15),
                SimDuration::from_secs(2),
                4.0,
                17,
            ))
            .with_disk(DiskDegradationModel::new(
                SiteSide::Dst,
                0,
                SimDuration::from_secs(25),
                SimDuration::from_secs(4),
                0.4,
                19,
            )),
    );
    correlated.env.background = Some(BackgroundTraffic::square(
        SimDuration::from_secs(10),
        SimDuration::from_secs(4),
        0.5,
    ));
    let mut markers_off = tb;
    let mut plan = FaultPlan::channel_only(FaultModel::new(SimDuration::from_secs(12), 23));
    plan.drop_restart_markers = true;
    markers_off.env.faults = Some(plan);
    [
        (name.to_string(), plain, false),
        (format!("{name}+mtbf"), mtbf, true),
        (format!("{name}+correlated"), correlated, true),
        (format!("{name}+markers-off"), markers_off, false),
    ]
}

#[test]
fn every_algorithm_is_bit_identical_without_faults() {
    for (tb, name) in testbeds() {
        let [(label, tb, aware), _, _, _] = regimes(tb, name);
        assert_matrix(tb, &label, aware);
    }
}

#[test]
fn every_algorithm_is_bit_identical_under_mtbf_faults() {
    for (tb, name) in testbeds() {
        let [_, (label, tb, aware), _, _] = regimes(tb, name);
        assert_matrix(tb, &label, aware);
    }
}

#[test]
fn every_algorithm_is_bit_identical_under_correlated_faults() {
    for (tb, name) in testbeds() {
        let [_, _, (label, tb, aware), _] = regimes(tb, name);
        assert_matrix(tb, &label, aware);
    }
}

#[test]
fn every_algorithm_is_bit_identical_with_markers_off() {
    for (tb, name) in testbeds() {
        let [_, _, _, (label, tb, aware)] = regimes(tb, name);
        assert_matrix(tb, &label, aware);
    }
}

// ---- SoA-vs-seed byte identity (DESIGN.md §17) ----
//
// The data-layout refactor (flat struct-of-arrays channel state in the
// engine's scratch arena) must not change one output byte. Digests of
// every matrix cell's (report, journal) pair — and of a service run that
// preempts and resumes through the checkpoint path — were captured from
// the pre-SoA engine and committed under `tests/golden/`; the refactored
// engine must reproduce them exactly.
//
// Regenerate (only when an intentional output change lands) with:
//   EADT_REGEN_GOLDEN=1 cargo test --release --test macro_equivalence golden

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/engine_digests.txt"
);

/// FNV-1a over the artifact bytes: stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A strict-priority service run on one slot whose low-priority incumbent
/// is preempted mid-transfer and resumed from its engine checkpoint — the
/// halt/resume path the arena must leave byte-identical.
fn serve_preempt_resume_digest() -> String {
    use eadt::core::AlgorithmKind;
    use eadt::endsys::{ArbitrationPolicy, PoolCapacity};
    use eadt::fleet::{JobSpec, ServiceJob, ServiceSession, Workload};
    let tb = didclab();
    let pool = PoolCapacity::from_servers(tb.env.link.bandwidth, &tb.env.src.servers, 1);
    let spec = |kind: AlgorithmKind, scale: f64| {
        JobSpec::new(kind, didclab())
            .with_scale(scale)
            .with_max_channel(2)
    };
    let workload = Workload::new()
        .site("didclab", pool)
        .arrival_gap_s(20.0)
        .job(
            ServiceJob::new(spec(AlgorithmKind::Sc, 0.05), "didclab")
                .with_tenant(0)
                .with_priority(1),
        )
        .job(
            ServiceJob::new(spec(AlgorithmKind::ProMc, 0.01), "didclab")
                .with_tenant(1)
                .with_priority(9),
        );
    let run = ServiceSession::builder()
        .root_seed(5)
        .workers(1)
        .policy(ArbitrationPolicy::StrictPriority)
        .quantum(100)
        .build()
        .run(&workload)
        .expect("workload is valid");
    assert!(
        run.report.jobs.iter().any(|j| j.preemptions > 0),
        "golden service scenario must actually preempt"
    );
    format!(
        "serve/preempt-resume report={:016x} journal={:016x}\n",
        fnv1a(run.report.to_json().as_bytes()),
        fnv1a(run.journal.to_jsonl().as_bytes())
    )
}

#[test]
fn golden_digests_match_the_seed_engine() {
    let mut lines = String::new();
    for (tb, name) in testbeds() {
        for (label, mut tb, aware) in regimes(tb, name) {
            tb.env.tuning.macro_step = true;
            for kind in AlgorithmKind::ALL {
                let (report, journal) = run_once(&tb, kind, aware);
                lines.push_str(&format!(
                    "{label}/{kind} report={:016x} journal={:016x}\n",
                    fnv1a(report.as_bytes()),
                    fnv1a(journal.as_bytes())
                ));
            }
        }
    }
    lines.push_str(&serve_preempt_resume_digest());
    if std::env::var_os("EADT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden"))
            .expect("golden dir");
        std::fs::write(GOLDEN_PATH, &lines).expect("golden file is writable");
        return;
    }
    let committed = std::fs::read_to_string(GOLDEN_PATH).expect(
        "tests/golden/engine_digests.txt is committed; regenerate with EADT_REGEN_GOLDEN=1",
    );
    for (got, want) in lines.lines().zip(committed.lines()) {
        assert_eq!(
            got, want,
            "engine output diverged from the committed seed digest"
        );
    }
    assert_eq!(
        lines.lines().count(),
        committed.lines().count(),
        "digest line count changed — regenerate the golden file"
    );
}

/// The bench measurement probes — `SliceCounter` (the executed-slice
/// odometer) and `AllocWindow` (the counting-allocator sampler) — promise
/// `u64::MAX` from `next_decision_in`, i.e. they never request a wake-up.
/// The horizon may therefore skip freely around them, and neither probe
/// may change a byte of the report relative to the other or to the
/// slice-by-slice run.
#[test]
fn bench_probe_controllers_preserve_equivalence() {
    use eadt::transfer::Engine;
    use eadt_bench::kernel::{turbulent_scenario, AllocWindow, SliceCounter};

    let (env, plan) = turbulent_scenario();
    let mut fast_env = env.clone();
    fast_env.tuning.macro_step = true;
    let mut slow_env = env;
    slow_env.tuning.macro_step = false;

    let mut slow_ctr = SliceCounter::default();
    let slow = Engine::new(&slow_env).run(&plan, &mut slow_ctr);
    let mut fast_ctr = SliceCounter::default();
    let fast = Engine::new(&fast_env).run(&plan, &mut fast_ctr);
    let slow_json = serde_json::to_string(&slow).expect("report serializes");
    assert_eq!(
        slow_json,
        serde_json::to_string(&fast).expect("report serializes"),
        "SliceCounter must not perturb macro-stepping"
    );
    assert!(
        fast_ctr.slices < slow_ctr.slices,
        "the horizon must actually skip slices ({} vs {})",
        fast_ctr.slices,
        slow_ctr.slices
    );

    // A window over executed-slice ordinals 2..3 closes under both
    // execution modes (even the macro-stepped run executes a ramp-in).
    fn inert() -> u64 {
        0
    }
    let mut slow_probe = AllocWindow::new(inert, 2, 3);
    let slow_probed = Engine::new(&slow_env).run(&plan, &mut slow_probe);
    let mut fast_probe = AllocWindow::new(inert, 2, 3);
    let fast_probed = Engine::new(&fast_env).run(&plan, &mut fast_probe);
    let slow_probed_json = serde_json::to_string(&slow_probed).expect("report serializes");
    assert_eq!(
        slow_probed_json,
        serde_json::to_string(&fast_probed).expect("report serializes"),
        "AllocWindow must not perturb macro-stepping"
    );
    assert_eq!(slow_json, slow_probed_json, "probes are inert observers");
}
