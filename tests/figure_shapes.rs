//! Cross-crate shape assertions: the relations the paper's Figures 2–7
//! report must hold on scaled-down datasets too (the simulator's shapes
//! are scale-invariant; only absolute Joules change).

use eadt::core::baselines::{GlobusOnline, GlobusUrlCopy, ProMc, SingleChunk};
use eadt::core::{Algorithm, Htee, MinE, RunCtx, Slaee};
use eadt::testbeds::{didclab, futuregrid, xsede, Environment};
use eadt_dataset::Dataset;

const SEED: u64 = 42;

fn dataset(tb: &Environment, scale: f64) -> Dataset {
    tb.dataset_spec.scaled(scale).generate(SEED)
}

#[test]
fn fig2_promc_has_top_throughput_on_xsede() {
    let tb = xsede();
    let d = dataset(&tb, 0.03);
    let promc = ProMc::new(12).run(&mut RunCtx::new(&tb.env, &d));
    let sc = SingleChunk::new(12).run(&mut RunCtx::new(&tb.env, &d));
    let mine = MinE::new(12).run(&mut RunCtx::new(&tb.env, &d));
    let guc = GlobusUrlCopy::new().run(&mut RunCtx::new(&tb.env, &d));
    assert!(
        promc.avg_throughput().as_mbps() >= sc.avg_throughput().as_mbps(),
        "ProMC {} vs SC {}",
        promc.avg_throughput(),
        sc.avg_throughput()
    );
    assert!(promc.avg_throughput().as_mbps() >= mine.avg_throughput().as_mbps());
    assert!(
        guc.avg_throughput().as_mbps() < 0.5 * promc.avg_throughput().as_mbps(),
        "GUC must trail badly: {} vs {}",
        guc.avg_throughput(),
        promc.avg_throughput()
    );
}

#[test]
fn fig2_mine_energy_is_lowest_at_low_concurrency() {
    let tb = xsede();
    let d = dataset(&tb, 0.03);
    for cc in [2u32, 4] {
        let mine = MinE::new(cc).run(&mut RunCtx::new(&tb.env, &d));
        let sc = SingleChunk::new(cc).run(&mut RunCtx::new(&tb.env, &d));
        let guc = GlobusUrlCopy::new().run(&mut RunCtx::new(&tb.env, &d));
        assert!(
            mine.total_energy_j() <= sc.total_energy_j() * 1.02,
            "cc={cc}: MinE {} vs SC {}",
            mine.total_energy_j(),
            sc.total_energy_j()
        );
        assert!(mine.total_energy_j() < guc.total_energy_j());
    }
}

#[test]
fn fig2_promc_energy_dips_then_rises_with_concurrency() {
    // The Figure 2b parabola: energy at concurrency 1 and 12 exceeds the
    // minimum around 4.
    let tb = xsede();
    let d = dataset(&tb, 0.05);
    let e1 = ProMc::new(1)
        .run(&mut RunCtx::new(&tb.env, &d))
        .total_energy_j();
    let e4 = ProMc::new(4)
        .run(&mut RunCtx::new(&tb.env, &d))
        .total_energy_j();
    let e12 = ProMc::new(12)
        .run(&mut RunCtx::new(&tb.env, &d))
        .total_energy_j();
    assert!(e4 < e1, "E(4)={e4} should be below E(1)={e1}");
    assert!(e4 < e12, "E(4)={e4} should be below E(12)={e12}");
}

#[test]
fn fig2_go_spreading_costs_energy_vs_sc_at_cc2() {
    let tb = xsede();
    let d = dataset(&tb, 0.03);
    let go = GlobusOnline::new().run(&mut RunCtx::new(&tb.env, &d));
    let sc = SingleChunk::new(2).run(&mut RunCtx::new(&tb.env, &d));
    // Similar throughput, more energy (the Figure 2b observation).
    let thr_ratio = go.avg_throughput().as_mbps() / sc.avg_throughput().as_mbps();
    assert!((0.6..1.7).contains(&thr_ratio), "thr ratio {thr_ratio}");
    assert!(
        go.total_energy_j() > sc.total_energy_j(),
        "GO {} vs SC@2 {}",
        go.total_energy_j(),
        sc.total_energy_j()
    );
}

#[test]
fn fig3_algorithms_converge_near_link_capacity_on_futuregrid() {
    let tb = futuregrid();
    // Large enough that the biggest files stop dominating the tail.
    let d = dataset(&tb, 0.3);
    let promc = ProMc {
        partition: tb.partition,
        ..ProMc::new(12)
    }
    .run(&mut RunCtx::new(&tb.env, &d));
    let mine = MinE {
        partition: tb.partition,
        ..MinE::new(12)
    }
    .run(&mut RunCtx::new(&tb.env, &d));
    let thr_p = promc.avg_throughput().as_mbps();
    let thr_m = mine.avg_throughput().as_mbps();
    // "ProMC, MinE, and HTEE algorithms yield comparable data transfer
    // throughput" (§3).
    assert!(
        (thr_m - thr_p).abs() / thr_p < 0.35,
        "MinE {thr_m} vs ProMC {thr_p}"
    );
    // And the link is the binding constraint: ≥ 60% of 1 Gbps.
    assert!(
        thr_p > 550.0,
        "ProMC should approach the 1 Gbps link: {thr_p}"
    );
}

#[test]
fn fig4_concurrency_hurts_throughput_on_didclab() {
    let tb = didclab();
    let d = dataset(&tb, 0.05);
    let mut prev = f64::INFINITY;
    for cc in [1u32, 4, 8, 12] {
        let r = ProMc::new(cc).run(&mut RunCtx::new(&tb.env, &d));
        let thr = r.avg_throughput().as_mbps();
        assert!(
            thr <= prev * 1.02,
            "LAN throughput must not rise with concurrency: cc={cc} thr={thr} prev={prev}"
        );
        prev = thr;
    }
}

#[test]
fn fig4_mine_stays_at_one_channel_on_lan() {
    let tb = didclab();
    let d = dataset(&tb, 0.05);
    let r = MinE::new(12).run(&mut RunCtx::new(&tb.env, &d));
    assert!(r.completed);
    let peak = r.concurrency_series.max_value().unwrap();
    // Everything is a Large chunk on a 25 KB BDP → one channel each; the
    // dataset collapses to a single chunk → exactly one channel.
    assert!(
        peak <= 2.0,
        "MinE should stay minimal on the LAN: peak={peak}"
    );
}

#[test]
fn fig4_energy_grows_with_concurrency_on_didclab() {
    let tb = didclab();
    let d = dataset(&tb, 0.05);
    let e1 = ProMc::new(1)
        .run(&mut RunCtx::new(&tb.env, &d))
        .total_energy_j();
    let e12 = ProMc::new(12)
        .run(&mut RunCtx::new(&tb.env, &d))
        .total_energy_j();
    assert!(e12 > 1.3 * e1, "E(12)={e12} must clearly exceed E(1)={e1}");
}

#[test]
fn fig5_slaee_meets_reachable_targets_with_bounded_deviation() {
    let tb = xsede();
    let d = dataset(&tb, 0.05);
    let reference = ProMc::new(12).run(&mut RunCtx::new(&tb.env, &d));
    let max = reference.avg_throughput();
    for pct in [70u32, 50] {
        let level = f64::from(pct) / 100.0;
        let r = Slaee::new(level, max, 12).run(&mut RunCtx::new(&tb.env, &d));
        assert!(r.completed);
        let achieved = r.avg_throughput().as_mbps();
        let target = max.as_mbps() * level;
        let deviation = (target - achieved) / target;
        assert!(
            deviation < 0.3,
            "{pct}%: achieved {achieved} vs target {target} (deviation {deviation})"
        );
    }
}

#[test]
fn fig5_slaee_lower_targets_do_not_cost_more_energy() {
    let tb = xsede();
    let d = dataset(&tb, 0.05);
    let reference = ProMc::new(12).run(&mut RunCtx::new(&tb.env, &d));
    let max = reference.avg_throughput();
    let hi = Slaee::new(0.95, max, 12).run(&mut RunCtx::new(&tb.env, &d));
    let lo = Slaee::new(0.5, max, 12).run(&mut RunCtx::new(&tb.env, &d));
    assert!(
        lo.total_energy_j() <= hi.total_energy_j() * 1.05,
        "50% target ({}) should not burn more than 95% target ({})",
        lo.total_energy_j(),
        hi.total_energy_j()
    );
}

#[test]
fn fig7_slaee_on_lan_settles_at_one_channel() {
    let tb = didclab();
    let d = dataset(&tb, 0.05);
    let reference = ProMc::new(1).run(&mut RunCtx::new(&tb.env, &d));
    let r = Slaee::new(0.5, reference.avg_throughput(), 12).run(&mut RunCtx::new(&tb.env, &d));
    assert!(r.completed);
    // Concurrency 1 already overshoots a 50% target; SLAEE must not ramp.
    let peak = r.concurrency_series.max_value().unwrap();
    assert!(peak <= 3.0, "peak={peak}");
    // Energy stays at the single-channel level.
    let base = ProMc::new(1)
        .run(&mut RunCtx::new(&tb.env, &d))
        .total_energy_j();
    assert!(
        r.total_energy_j() < base * 1.15,
        "{} vs {}",
        r.total_energy_j(),
        base
    );
}

#[test]
fn htee_efficiency_beats_untuned_baselines() {
    let tb = xsede();
    // HTEE's 20 s search phase must be small relative to the transfer.
    let d = dataset(&tb, 0.12);
    let htee = Htee::new(8).run(&mut RunCtx::new(&tb.env, &d));
    let guc = GlobusUrlCopy::new().run(&mut RunCtx::new(&tb.env, &d));
    let go = GlobusOnline::new().run(&mut RunCtx::new(&tb.env, &d));
    assert!(
        htee.efficiency() > 1.5 * go.efficiency(),
        "HTEE {} vs GO {}",
        htee.efficiency(),
        go.efficiency()
    );
    assert!(
        htee.efficiency() > 4.0 * guc.efficiency(),
        "HTEE {} vs GUC {}",
        htee.efficiency(),
        guc.efficiency()
    );
}
