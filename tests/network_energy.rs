//! Cross-crate §4 checks: Eq. 5 accounting over real transfer reports and
//! the Figure 10 decomposition claims.

use eadt::core::{Algorithm, Htee, RunCtx};
use eadt::netenergy::account::{decompose, path_energy_joules};
use eadt::netenergy::dynmodel::DynamicPowerModel;
use eadt::testbeds::{all, didclab, futuregrid, xsede};

#[test]
fn end_systems_dominate_load_dependent_energy_everywhere() {
    for tb in all() {
        let dataset = tb.dataset_spec.scaled(0.03).generate(3);
        let r = Htee {
            partition: tb.partition,
            ..Htee::new(8)
        }
        .run(&mut RunCtx::new(&tb.env, &dataset));
        assert!(r.completed, "{}", tb.name);
        let d = decompose(r.total_energy_j(), &tb.path, r.wire_bytes, &tb.env.packets);
        assert!(
            d.end_system_percent() > 80.0,
            "{}: end-system share {}",
            tb.name,
            d.end_system_percent()
        );
    }
}

#[test]
fn metro_router_paths_cost_most_per_byte() {
    // Figure 10 / §4: more metro routers on the path → more network energy
    // for the same bytes.
    let bytes = eadt::sim::Bytes::from_gb(10);
    let packets = eadt_net::packets::PacketModel::default().total_packets(bytes);
    let fg = path_energy_joules(&futuregrid().path, packets);
    let xs = path_energy_joules(&xsede().path, packets);
    let lab = path_energy_joules(&didclab().path, packets);
    assert!(fg > xs, "FutureGrid {fg} vs XSEDE {xs}");
    assert!(xs > 20.0 * lab, "XSEDE {xs} vs DIDCLAB {lab}");
}

#[test]
fn network_energy_is_algorithm_rate_dependent_only_through_packets() {
    // §4's conclusion: under the linear model, total network energy is the
    // same whatever rate the end systems choose — only retransmissions
    // (wire bytes) can change it.
    let tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.02).generate(3);
    let slow = eadt::core::baselines::ProMc::new(1).run(&mut RunCtx::new(&tb.env, &dataset));
    let fast = eadt::core::baselines::ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    let e_slow = path_energy_joules(&tb.path, tb.env.packets.total_packets(slow.wire_bytes));
    let e_fast = path_energy_joules(&tb.path, tb.env.packets.total_packets(fast.wire_bytes));
    let ratio = e_fast / e_slow;
    assert!(
        (0.95..1.15).contains(&ratio),
        "per-packet accounting should be nearly rate-independent: {ratio}"
    );
}

#[test]
fn nonlinear_devices_reward_faster_transfers() {
    // §4: with sub-linear dynamic power, tuning for throughput also saves
    // network energy; with linear it is neutral.
    let m = DynamicPowerModel::NonLinear;
    let e_quarter = m.dynamic_energy_joules(0.25, 5.0, 60.0);
    let e_full = m.dynamic_energy_joules(1.0, 5.0, 60.0);
    assert!(e_full < e_quarter);
    let l = DynamicPowerModel::Linear;
    assert!(
        (l.dynamic_energy_joules(0.25, 5.0, 60.0) - l.dynamic_energy_joules(1.0, 5.0, 60.0)).abs()
            < 1e-9
    );
}
