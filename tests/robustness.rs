//! Cross-crate robustness scenarios: faults, background traffic and the
//! in-vivo estimator on the real testbeds.

use eadt::core::baselines::ProMc;
use eadt::core::{Algorithm, Htee, RunCtx, Slaee};
use eadt::endsys::{DiskSubsystem, Placement, ServerSpec, Site, UtilizationCoeffs};
use eadt::net::link::Link;
use eadt::net::packets::PacketModel;
use eadt::net::tcp::CongestionModel;
use eadt::power::{CpuOnlyModel, FineGrainedModel, PowerModelKind};
use eadt::sim::{Bytes, Rate, SimDuration};
use eadt::testbeds::{futuregrid, xsede};
use eadt::transfer::{
    BackgroundTraffic, ChunkPlan, Engine, EngineTuning, FaultAware, FaultModel, FaultPlan,
    NullController, OutageModel, SiteSide, TransferEnv, TransferPlan,
};

#[test]
fn faults_cost_time_never_bytes_on_xsede() {
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.03).generate(11);
    let clean = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    tb.env.faults = Some(FaultModel::new(SimDuration::from_secs(20), 3).into());
    let faulty = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(faulty.completed);
    assert_eq!(faulty.moved_bytes, clean.moved_bytes);
    assert!(faulty.failures > 0);
    assert!(faulty.duration >= clean.duration);
}

#[test]
fn restart_markers_beat_full_restarts() {
    // XSEDE moves even the largest files well inside the MTBF, so the
    // full-restart variant converges (on a slow link it can livelock —
    // exactly why GridFTP has markers; see the engine's fault tests).
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.05).generate(5);
    tb.env.faults = Some(FaultModel::new(SimDuration::from_secs(30), 9).into());
    let with_markers = ProMc {
        partition: tb.partition,
        ..ProMc::new(4)
    }
    .run(&mut RunCtx::new(&tb.env, &dataset));
    tb.env.faults = Some(
        FaultModel {
            restart_markers: false,
            ..FaultModel::new(SimDuration::from_secs(30), 9)
        }
        .into(),
    );
    let without = ProMc {
        partition: tb.partition,
        ..ProMc::new(4)
    }
    .run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(with_markers.completed && without.completed);
    assert!(
        with_markers.duration <= without.duration,
        "markers {} vs full restarts {}",
        with_markers.duration,
        without.duration
    );
}

#[test]
fn background_traffic_costs_throughput_and_energy_efficiency() {
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.03).generate(7);
    let clean = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    tb.env.background = Some(BackgroundTraffic::square(
        SimDuration::from_secs(20),
        SimDuration::from_secs(10),
        0.7,
    ));
    let busy = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(busy.completed);
    assert!(busy.avg_throughput().as_mbps() < clean.avg_throughput().as_mbps());
    assert!(busy.efficiency() < clean.efficiency());
}

#[test]
fn reprobing_htee_is_no_worse_under_changing_conditions() {
    let mut tb = xsede();
    // Capacity drops hard after ~40 s and stays down for a long stretch.
    tb.env.background = Some(BackgroundTraffic::square(
        SimDuration::from_secs(400),
        SimDuration::from_secs(360),
        0.5,
    ));
    let dataset = tb.dataset_spec.scaled(0.1).generate(13);
    let static_htee = Htee::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    let adaptive = Htee {
        reprobe_interval: Some(SimDuration::from_secs(60)),
        ..Htee::new(8)
    }
    .run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(static_htee.completed && adaptive.completed);
    // Re-probing costs a little search time but must stay in the same
    // efficiency ballpark (and often wins); it must never collapse.
    assert!(
        adaptive.efficiency() > 0.7 * static_htee.efficiency(),
        "adaptive {} vs static {}",
        adaptive.efficiency(),
        static_htee.efficiency()
    );
}

#[test]
fn slaee_conserves_bytes_under_composed_faults() {
    // SLAEE's adaptation loop keeps running while channel failures and a
    // recurring outage on its (PackFirst) primary dst server interleave;
    // the report's cause breakdown must reconcile with the legacy counter.
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.03).generate(17);
    let clean = ProMc::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    tb.env.faults = Some(
        FaultPlan::from(FaultModel::new(SimDuration::from_secs(25), 5)).with_outage(
            OutageModel::new(
                SiteSide::Dst,
                0,
                SimDuration::from_secs(20),
                SimDuration::from_secs(15),
                33,
            ),
        ),
    );
    let r = Slaee::new(0.6, clean.avg_throughput(), 12).run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, clean.moved_bytes);
    assert!(r.failures > 0);
    assert_eq!(r.failures, r.faults.total_failures());
    assert_eq!(
        r.faults.total_failures(),
        r.faults.channel_failures + r.faults.outage_failures
    );
    assert_eq!(r.faults.retransmitted_bytes, Bytes::ZERO);
}

#[test]
fn htee_conserves_bytes_under_faults() {
    // HTEE's probe phase must survive fault-injected measurements without
    // losing bytes or diverging from its clean-run dataset coverage.
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.03).generate(19);
    let clean = Htee::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    tb.env.faults = Some(FaultModel::new(SimDuration::from_secs(25), 13).into());
    let r = Htee::new(8).run(&mut RunCtx::new(&tb.env, &dataset));
    assert!(r.completed);
    assert_eq!(r.moved_bytes, clean.moved_bytes);
    assert!(r.failures > 0);
    assert_eq!(r.failures, r.faults.total_failures());
    assert!(r.duration >= clean.duration);
}

/// Two-server receiving site with slow single-disk storage: the setting
/// where shedding concurrency during an outage pays on *both* axes,
/// because extra channels piling onto the surviving disk cost throughput
/// (contention) and Watts (active CPUs) at once.
fn outage_demo_env() -> TransferEnv {
    let fast_src = ServerSpec::new(
        "src-dtn",
        4,
        115.0,
        Rate::from_gbps(10.0),
        DiskSubsystem::Array {
            per_access: Rate::from_gbps(2.4),
            aggregate: Rate::from_gbps(7.6),
        },
    );
    let slow_dst = ServerSpec::new(
        "dst-ws",
        4,
        115.0,
        Rate::from_gbps(10.0),
        DiskSubsystem::Single {
            rate: Rate::from_mbps(800.0),
            contention_penalty: 0.18,
        },
    );
    TransferEnv {
        link: Link::new(
            Rate::from_gbps(10.0),
            SimDuration::from_millis(40),
            Bytes::from_mb(32),
        ),
        src: Site::new("src", vec![fast_src]),
        dst: Site::new("dst", vec![slow_dst; 2]),
        util: UtilizationCoeffs::default(),
        power: FineGrainedModel::paper_default(),
        congestion: CongestionModel::default(),
        packets: PacketModel::default(),
        tuning: EngineTuning::default(),
        faults: Some(FaultPlan::default().with_outage(OutageModel::new(
            SiteSide::Dst,
            1,
            SimDuration::from_secs(20),
            SimDuration::from_secs(60),
            42,
        ))),
        background: None,
        estimator: None,
    }
}

fn outage_demo_plan() -> TransferPlan {
    let cp = ChunkPlan {
        label: "bulk".into(),
        files: (0..16)
            .map(|i| eadt::dataset::FileSpec::new(i, Bytes::from_mb(500)))
            .collect(),
        pipelining: 4,
        parallelism: 2,
        channels: 8,
        accepts_reallocation: true,
    };
    TransferPlan::concurrent(vec![cp], Placement::RoundRobin)
}

#[test]
fn fault_aware_control_beats_static_on_time_and_energy_under_outage() {
    let env = outage_demo_env();
    let plan = outage_demo_plan();
    let run_static = || Engine::new(&env).run(&plan, &mut NullController);
    let run_adaptive = || Engine::new(&env).run(&plan, &mut FaultAware::new(NullController));
    let stat = run_static();
    let adapt = run_adaptive();
    assert!(stat.completed && adapt.completed);
    assert_eq!(stat.moved_bytes, adapt.moved_bytes);
    // Both arms collide with the outage and learn about it the hard way.
    assert!(stat.faults.outage_failures > 0);
    assert!(adapt.faults.outage_failures > 0);
    assert!(adapt.faults.breaker_opens >= 1);
    // Restart markers are on: nothing is retransmitted, only time is lost.
    assert_eq!(adapt.faults.retransmitted_bytes, Bytes::ZERO);
    // The adaptive run wins on BOTH completion time and total joules.
    assert!(
        adapt.duration < stat.duration,
        "adaptive {} vs static {}",
        adapt.duration,
        stat.duration
    );
    assert!(
        adapt.total_energy_j() < stat.total_energy_j(),
        "adaptive {} J vs static {} J",
        adapt.total_energy_j(),
        stat.total_energy_j()
    );
    // And the whole demo is exactly reproducible.
    let stat2 = run_static();
    let adapt2 = run_adaptive();
    assert_eq!(stat.duration, stat2.duration);
    assert_eq!(stat.total_energy_j(), stat2.total_energy_j());
    assert_eq!(stat.faults, stat2.faults);
    assert_eq!(adapt.duration, adapt2.duration);
    assert_eq!(adapt.total_energy_j(), adapt2.total_energy_j());
    assert_eq!(adapt.faults, adapt2.faults);
}

#[test]
fn fitted_cpu_only_estimator_is_accurate_in_vivo() {
    // The §2.2 model-building phase, end to end on the simulator: run one
    // calibration transfer with an unfitted CPU-only monitor, scale its
    // weight by the observed energy ratio (the regression of Eq. 3 boils
    // down to exactly this for a single predictor through the origin),
    // then verify the fitted monitor tracks a *different* transfer.
    for mut tb in [xsede(), futuregrid()] {
        let tdp = tb.env.src.servers[0].cpu_tdp_watts;
        let raw_weight = tb.env.power.cpu_scale;
        tb.env.estimator = Some(PowerModelKind::CpuOnly(CpuOnlyModel::local(
            raw_weight, tdp,
        )));
        let calib_set = tb.dataset_spec.scaled(0.05).generate(3);
        let calib = ProMc {
            partition: tb.partition,
            ..ProMc::new(8)
        }
        .run(&mut RunCtx::new(&tb.env, &calib_set));
        let est0 = calib.estimated_energy_j.expect("estimator configured");
        let fitted = raw_weight * calib.total_energy_j() / est0;

        tb.env.estimator = Some(PowerModelKind::CpuOnly(CpuOnlyModel::local(fitted, tdp)));
        let eval_set = tb.dataset_spec.scaled(0.05).generate(77);
        let r = ProMc {
            partition: tb.partition,
            ..ProMc::new(8)
        }
        .run(&mut RunCtx::new(&tb.env, &eval_set));
        let est = r.estimated_energy_j.expect("estimator configured");
        let err = (est - r.total_energy_j()).abs() / r.total_energy_j();
        assert!(
            err < 0.10,
            "{}: fitted estimate off by {:.1}%",
            tb.name,
            err * 100.0
        );
    }
}
