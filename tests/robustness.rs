//! Cross-crate robustness scenarios: faults, background traffic and the
//! in-vivo estimator on the real testbeds.

use eadt::core::baselines::ProMc;
use eadt::core::{Algorithm, Htee};
use eadt::power::{CpuOnlyModel, PowerModelKind};
use eadt::sim::SimDuration;
use eadt::testbeds::{futuregrid, xsede};
use eadt::transfer::{BackgroundTraffic, FaultModel};

#[test]
fn faults_cost_time_never_bytes_on_xsede() {
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.03).generate(11);
    let clean = ProMc::new(8).run(&tb.env, &dataset);
    tb.env.faults = Some(FaultModel::new(SimDuration::from_secs(20), 3));
    let faulty = ProMc::new(8).run(&tb.env, &dataset);
    assert!(faulty.completed);
    assert_eq!(faulty.moved_bytes, clean.moved_bytes);
    assert!(faulty.failures > 0);
    assert!(faulty.duration >= clean.duration);
}

#[test]
fn restart_markers_beat_full_restarts() {
    // XSEDE moves even the largest files well inside the MTBF, so the
    // full-restart variant converges (on a slow link it can livelock —
    // exactly why GridFTP has markers; see the engine's fault tests).
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.05).generate(5);
    tb.env.faults = Some(FaultModel::new(SimDuration::from_secs(30), 9));
    let with_markers = ProMc {
        partition: tb.partition,
        ..ProMc::new(4)
    }
    .run(&tb.env, &dataset);
    tb.env.faults = Some(FaultModel {
        restart_markers: false,
        ..FaultModel::new(SimDuration::from_secs(30), 9)
    });
    let without = ProMc {
        partition: tb.partition,
        ..ProMc::new(4)
    }
    .run(&tb.env, &dataset);
    assert!(with_markers.completed && without.completed);
    assert!(
        with_markers.duration <= without.duration,
        "markers {} vs full restarts {}",
        with_markers.duration,
        without.duration
    );
}

#[test]
fn background_traffic_costs_throughput_and_energy_efficiency() {
    let mut tb = xsede();
    let dataset = tb.dataset_spec.scaled(0.03).generate(7);
    let clean = ProMc::new(8).run(&tb.env, &dataset);
    tb.env.background = Some(BackgroundTraffic::square(
        SimDuration::from_secs(20),
        SimDuration::from_secs(10),
        0.7,
    ));
    let busy = ProMc::new(8).run(&tb.env, &dataset);
    assert!(busy.completed);
    assert!(busy.avg_throughput().as_mbps() < clean.avg_throughput().as_mbps());
    assert!(busy.efficiency() < clean.efficiency());
}

#[test]
fn reprobing_htee_is_no_worse_under_changing_conditions() {
    let mut tb = xsede();
    // Capacity drops hard after ~40 s and stays down for a long stretch.
    tb.env.background = Some(BackgroundTraffic::square(
        SimDuration::from_secs(400),
        SimDuration::from_secs(360),
        0.5,
    ));
    let dataset = tb.dataset_spec.scaled(0.1).generate(13);
    let static_htee = Htee::new(8).run(&tb.env, &dataset);
    let adaptive = Htee {
        reprobe_interval: Some(SimDuration::from_secs(60)),
        ..Htee::new(8)
    }
    .run(&tb.env, &dataset);
    assert!(static_htee.completed && adaptive.completed);
    // Re-probing costs a little search time but must stay in the same
    // efficiency ballpark (and often wins); it must never collapse.
    assert!(
        adaptive.efficiency() > 0.7 * static_htee.efficiency(),
        "adaptive {} vs static {}",
        adaptive.efficiency(),
        static_htee.efficiency()
    );
}

#[test]
fn fitted_cpu_only_estimator_is_accurate_in_vivo() {
    // The §2.2 model-building phase, end to end on the simulator: run one
    // calibration transfer with an unfitted CPU-only monitor, scale its
    // weight by the observed energy ratio (the regression of Eq. 3 boils
    // down to exactly this for a single predictor through the origin),
    // then verify the fitted monitor tracks a *different* transfer.
    for mut tb in [xsede(), futuregrid()] {
        let tdp = tb.env.src.servers[0].cpu_tdp_watts;
        let raw_weight = tb.env.power.cpu_scale;
        tb.env.estimator = Some(PowerModelKind::CpuOnly(CpuOnlyModel::local(
            raw_weight, tdp,
        )));
        let calib_set = tb.dataset_spec.scaled(0.05).generate(3);
        let calib = ProMc {
            partition: tb.partition,
            ..ProMc::new(8)
        }
        .run(&tb.env, &calib_set);
        let est0 = calib.estimated_energy_j.expect("estimator configured");
        let fitted = raw_weight * calib.total_energy_j() / est0;

        tb.env.estimator = Some(PowerModelKind::CpuOnly(CpuOnlyModel::local(fitted, tdp)));
        let eval_set = tb.dataset_spec.scaled(0.05).generate(77);
        let r = ProMc {
            partition: tb.partition,
            ..ProMc::new(8)
        }
        .run(&tb.env, &eval_set);
        let est = r.estimated_energy_j.expect("estimator configured");
        let err = (est - r.total_energy_j()).abs() / r.total_energy_j();
        assert!(
            err < 0.10,
            "{}: fitted estimate off by {:.1}%",
            tb.name,
            err * 100.0
        );
    }
}
