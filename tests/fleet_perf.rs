//! Fleet scaling check (ignored by default): the full figures matrix must
//! run at least 3× faster on 8 workers than on 1, and the measurement is
//! recorded in `BENCH_fleet.json` next to the Criterion numbers.
//!
//! Run with: `cargo test --release --test fleet_perf -- --ignored`
//! The speedup assertion only fires on hosts with ≥4 cores — a 1-core CI
//! runner still executes both passes and records its numbers, it just
//! cannot meaningfully parallelise.

use criterion::measurement::WallTime;
use eadt::fleet::{figures_matrix, Session};

fn merge_into_bench_json(key: &str, value: serde_json::Value) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fleet.json");
    let mut root: serde_json::Value = std::fs::read_to_string(path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_else(|| serde_json::json!({ "schema": 1 }));
    if let Some(map) = root.as_object_mut() {
        map.insert(key.to_string(), value);
    }
    let mut text = serde_json::to_string_pretty(&root).expect("serializable");
    text.push('\n');
    std::fs::write(path, text).expect("workspace root is writable");
}

#[test]
#[ignore = "perf measurement: run explicitly with --ignored on a multi-core host"]
fn figures_matrix_scales_on_eight_workers() {
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let jobs = figures_matrix(0.02);

    let serial = Session::builder().root_seed(42).workers(1).build();
    let eight = Session::builder().root_seed(42).workers(8).build();
    let (serial_report, serial_s) = WallTime::time(|| serial.run(&jobs));
    let (eight_report, eight_s) = WallTime::time(|| eight.run(&jobs));
    assert_eq!(
        serial_report.to_json(),
        eight_report.to_json(),
        "8-worker aggregate diverged from serial"
    );

    // A 1-core host still proves serial/parallel result equality above, but
    // its wall-clock ratio is scheduling noise, not a speedup — record the
    // measurement as skipped instead of publishing a meaningless number.
    let mut entry = serde_json::json!({
        "jobs": jobs.len(),
        "scale": 0.02,
        "root_seed": 42,
        "host_parallelism": host_parallelism,
        "serial_s": serial_s,
        "eight_worker_s": eight_s,
    });
    let speedup = serial_s / eight_s.max(1e-9);
    let map = entry.as_object_mut().expect("entry is an object");
    if host_parallelism == 1 {
        map.insert("skipped".to_string(), serde_json::json!(true));
        map.insert(
            "skip_reason".to_string(),
            serde_json::json!("single-core host: wall-clock ratio is not a parallel speedup"),
        );
        println!(
            "figures matrix: {} jobs, serial {serial_s:.2}s, 8-worker {eight_s:.2}s (speedup skipped: 1 core)",
            jobs.len()
        );
    } else {
        map.insert("speedup".to_string(), serde_json::json!(speedup));
        println!(
            "figures matrix: {} jobs, serial {serial_s:.2}s, 8-worker {eight_s:.2}s ({speedup:.2}x, {host_parallelism} cores)",
            jobs.len()
        );
    }
    merge_into_bench_json("perf_test", entry);

    if host_parallelism >= 4 {
        assert!(
            speedup >= 3.0,
            "expected ≥3x on {host_parallelism} cores, measured {speedup:.2}x"
        );
    }
}
