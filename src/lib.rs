//! # EADT — Energy-Aware Data Transfer algorithms
//!
//! A reproduction of *"Energy-Aware Data Transfer Algorithms"* (Alan,
//! Arslan, Kosar — SC 2015) as a Rust workspace. This facade crate
//! re-exports the public API of every member crate so applications can
//! depend on a single crate:
//!
//! ```
//! use eadt::prelude::*;
//!
//! let testbed = eadt::testbeds::didclab();
//! let dataset = testbed.dataset_spec.scaled(0.01).generate(42);
//! let report = Htee::new(4).run(&mut RunCtx::new(&testbed.env, &dataset));
//! assert!(report.completed);
//! assert!(report.avg_throughput().as_mbps() > 0.0);
//! ```
//!
//! Batches of transfers — sweeps, repeated trials, whole figure matrices —
//! go through the [`fleet`] session instead of hand-rolled loops:
//!
//! ```
//! use eadt::prelude::*;
//!
//! let jobs = vec![JobSpec::new(AlgorithmKind::ProMc, eadt::testbeds::didclab())
//!     .with_scale(0.01)];
//! let report = Session::builder().root_seed(42).workers(1).build().run(&jobs);
//! assert!(report.jobs[0].completed);
//! ```
//!
//! Multi-tenant workloads contending for shared site pools go through the
//! continuous [`fleet`] service ([`ServiceSession`](fleet::ServiceSession),
//! DESIGN.md §16): jobs arrive on a seeded process, are admitted and
//! preempted by the scheduler, and share each site's bandwidth and disk
//! under fair-share or strict-priority arbitration:
//!
//! ```
//! use eadt::prelude::*;
//!
//! let tb = eadt::testbeds::didclab();
//! let capacity = PoolCapacity::from_servers(tb.env.link.bandwidth, &tb.env.src.servers, 2);
//! let workload = Workload::new()
//!     .site("didclab", capacity)
//!     .job(ServiceJob::new(
//!         JobSpec::new(AlgorithmKind::Sc, tb.clone()).with_scale(0.01),
//!         "didclab",
//!     ))
//!     .job(ServiceJob::new(
//!         JobSpec::new(AlgorithmKind::ProMc, tb).with_scale(0.01),
//!         "didclab",
//!     ).with_tenant(1));
//! let run = ServiceSession::builder().root_seed(42).quantum(100).build()
//!     .run(&workload)
//!     .unwrap();
//! assert_eq!(run.report.completed_count(), 2);
//! ```
//!
//! The three paper algorithms live in [`core`] as [`MinE`](core::MinE),
//! [`Htee`](core::Htee) and [`Slaee`](core::Slaee); the baselines they are
//! evaluated against (GUC, GO, SC, ProMC, BF) are in
//! [`core::baselines`]. The simulated substrate — network paths,
//! end-systems, power models, the GridFTP-like transfer engine and the
//! network-device energy accounting — lives in the remaining crates.

pub use eadt_core as core;
pub use eadt_dataset as dataset;
pub use eadt_endsys as endsys;
pub use eadt_fleet as fleet;
pub use eadt_net as net;
pub use eadt_netenergy as netenergy;
pub use eadt_power as power;
pub use eadt_sim as sim;
pub use eadt_telemetry as telemetry;
pub use eadt_testbeds as testbeds;
pub use eadt_transfer as transfer;

/// Commonly used items, importable in one line.
pub mod prelude {
    pub use eadt_core::baselines::{BruteForce, GlobusOnline, GlobusUrlCopy, ProMc, SingleChunk};
    pub use eadt_core::{Algorithm, AlgorithmKind, Htee, MinE, Planner, RunCtx, Slaee};
    pub use eadt_dataset::{Dataset, FileSpec};
    pub use eadt_endsys::{ArbitrationPolicy, PoolCapacity};
    pub use eadt_fleet::{
        FleetReport, JobSpec, ServiceJob, ServiceReport, ServiceSession, Session, Workload,
    };
    pub use eadt_sim::{Bytes, EadtError, Rate, SimDuration, SimTime};
    pub use eadt_testbeds::{didclab, futuregrid, xsede, Environment};
    pub use eadt_transfer::{TransferParams, TransferReport};
}
