//! Command execution: resolve the environment, build the dataset, run the
//! requested experiment, render tables (or JSON).

use crate::args::{AlgorithmKind, Cli, Command, FaultArgs};
use crate::envfile;
use eadt_core::baselines::{BruteForce, GlobusOnline, GlobusUrlCopy, ProMc, SingleChunk};
use eadt_core::{Algorithm, Htee, MinE, RunCtx, Slaee};
use eadt_dataset::{partition, Dataset};
use eadt_endsys::PoolCapacity;
use eadt_fleet::{
    figures_matrix, FleetReport, JobSpec, ServiceJob, ServiceSession, Session, Workload,
};
use eadt_power::calibrate::{build_models, evaluate_model, GroundTruth, ToolProfile};
use eadt_sim::{EadtError, SimDuration, SimTime};
use eadt_telemetry::{chrome, timeline, Event, Journal, Telemetry, SCHEMA_VERSION};
use eadt_testbeds::Environment;
use eadt_transfer::{FaultModel, OutageModel, SiteSide, TransferEnv, TransferReport};
use std::io::Write;

type Out<'a> = &'a mut dyn Write;

/// Executes a parsed invocation.
pub fn execute(cli: &Cli, out: Out) -> Result<(), EadtError> {
    match &cli.command {
        Command::Help => {
            writeln!(out, "{}", crate::args::USAGE)?;
            Ok(())
        }
        Command::Transfer {
            algorithm,
            max_channel,
            sla_level,
            csv,
            pipelining,
            parallelism,
        } => {
            let tb = resolve(cli)?;
            let dataset = make_dataset(cli, &tb, out)?;
            let report = if let Some(dir) = &cli.checkpoint_dir {
                run_transfer_checkpointed(
                    cli,
                    &tb,
                    &dataset,
                    *algorithm,
                    *max_channel,
                    *sla_level,
                    *pipelining,
                    *parallelism,
                    dir,
                    out,
                )?
            } else if *algorithm == AlgorithmKind::Manual {
                let params =
                    eadt_transfer::TransferParams::new(*pipelining, *parallelism, *max_channel);
                let plan = eadt_transfer::uniform_plan(
                    &dataset,
                    params,
                    eadt_endsys::Placement::PackFirst,
                );
                run_manual(&tb.env, &plan, cli.faults.fault_aware)
            } else {
                run_algorithm(
                    &tb,
                    &dataset,
                    *algorithm,
                    *max_channel,
                    *sla_level,
                    cli.faults.fault_aware,
                )
            };
            if let Some(path) = csv {
                let mut file = std::fs::File::create(path)?;
                report.write_series_csv(&mut file)?;
                writeln!(out, "[series written to {path}]")?;
            }
            print_report(cli, out, algorithm.name(), &report)
        }
        Command::Sweep { algorithms, levels } => {
            let tb = resolve(cli)?;
            let dataset = make_dataset(cli, &tb, out)?;
            writeln!(
                out,
                "{:<8} {:>5} {:>10} {:>10} {:>12} {:>10}",
                "algo", "cc", "Mbps", "seconds", "energy (J)", "Mbps/J"
            )?;
            for &cc in levels {
                for &a in algorithms {
                    let r = run_algorithm(&tb, &dataset, a, cc, 0.9, cli.faults.fault_aware);
                    writeln!(
                        out,
                        "{:<8} {:>5} {:>10.0} {:>10.1} {:>12.0} {:>10.4}",
                        a.name(),
                        cc,
                        r.avg_throughput().as_mbps(),
                        r.duration.as_secs_f64(),
                        r.total_energy_j(),
                        r.efficiency()
                    )?;
                }
            }
            Ok(())
        }
        Command::Fleet {
            algorithms,
            levels,
            workers,
            figures,
            out: report_path,
            resume,
            metrics_out,
            cadence_s,
        } => {
            let mut builder = Session::builder().root_seed(cli.seed);
            if *workers > 0 {
                builder = builder.workers(*workers);
            }
            if let Some(dir) = &cli.checkpoint_dir {
                builder = builder.checkpoints(dir, cli.checkpoint_every);
            }
            if metrics_out.is_some() {
                builder = builder.metrics(SimDuration::from_secs_f64(*cadence_s));
            }
            let session = builder.build();
            let jobs = if *figures {
                figures_matrix(cli.scale)
            } else {
                let tb = resolve(cli)?;
                let mut jobs = Vec::with_capacity(levels.len() * algorithms.len());
                for &cc in levels {
                    for &a in algorithms {
                        jobs.push(
                            JobSpec::new(a, tb.clone())
                                .with_scale(cli.scale)
                                .with_max_channel(cc)
                                .with_fault_aware(cli.faults.fault_aware),
                        );
                    }
                }
                jobs
            };
            let report = if *resume {
                session.resume(&jobs)
            } else {
                session.run(&jobs)
            };
            if cli.json {
                write!(out, "{}", report.to_json())?;
            } else {
                writeln!(
                    out,
                    "fleet: {} jobs on {} workers (root seed {})",
                    report.jobs.len(),
                    session.workers(),
                    report.root_seed
                )?;
                writeln!(
                    out,
                    "{:<24} {:>10} {:>10} {:>12} {:>10}",
                    "job", "Mbps", "seconds", "energy (J)", "Mbps/J"
                )?;
                for j in &report.jobs {
                    writeln!(
                        out,
                        "{:<24} {:>10.0} {:>10.1} {:>12.0} {:>10.4}",
                        j.label, j.throughput_mbps, j.duration_s, j.energy_j, j.efficiency
                    )?;
                    if let Some(err) = &j.error {
                        writeln!(out, "  error: {err}")?;
                    }
                }
                writeln!(
                    out,
                    "completed {}/{} ({} errors)",
                    report.completed_count(),
                    report.jobs.len(),
                    report.error_count()
                )?;
            }
            if let Some(path) = report_path {
                std::fs::write(path, report.to_json())
                    .map_err(|e| EadtError::io(path.clone(), e.to_string()))?;
                writeln!(out, "[fleet report -> {path}]")?;
            }
            if let Some(path) = metrics_out {
                std::fs::write(path, report.metrics.to_prometheus())
                    .map_err(|e| EadtError::io(path.clone(), e.to_string()))?;
                writeln!(out, "[fleet metrics -> {path}]")?;
            }
            Ok(())
        }
        Command::Serve {
            algorithms,
            jobs,
            tenants,
            arrival_gap_s,
            policy,
            slots,
            quantum,
            max_channel,
            workers,
            out: report_path,
            journal: journal_path,
            resume,
        } => {
            let tb = resolve(cli)?;
            let site = tb.name.clone();
            let capacity =
                PoolCapacity::from_servers(tb.env.link.bandwidth, &tb.env.src.servers, *slots);
            let n_jobs = if *jobs == 0 { algorithms.len() } else { *jobs };
            let mut workload = Workload::new()
                .site(site.clone(), capacity)
                .arrival_gap_s(*arrival_gap_s);
            for i in 0..n_jobs {
                let kind = algorithms[i % algorithms.len()];
                let tenant = (i % *tenants as usize) as u32;
                workload = workload.job(
                    ServiceJob::new(
                        JobSpec::new(kind, tb.clone())
                            .with_scale(cli.scale)
                            .with_max_channel(*max_channel)
                            .with_fault_aware(cli.faults.fault_aware),
                        site.clone(),
                    )
                    .with_tenant(tenant)
                    .with_priority(tenant),
                );
            }
            let mut builder = ServiceSession::builder()
                .root_seed(cli.seed)
                .policy(*policy)
                .quantum(*quantum);
            if *workers > 0 {
                builder = builder.workers(*workers);
            }
            if let Some(dir) = &cli.checkpoint_dir {
                builder = builder.checkpoints(dir, cli.checkpoint_every);
            }
            let session = builder.build();
            let run = if *resume {
                session.resume(&workload)?
            } else {
                session.run(&workload)?
            };
            let report = &run.report;
            if cli.json {
                write!(out, "{}", report.to_json())?;
            } else {
                writeln!(
                    out,
                    "serve: {} jobs, {} tenants on site {} ({} slots, {} policy, quantum {} slices)",
                    report.jobs.len(),
                    tenants,
                    site,
                    slots,
                    report.policy,
                    report.quantum_slices
                )?;
                writeln!(
                    out,
                    "{:<24} {:>6} {:>4} {:>7} {:>7} {:>7} {:>5} {:>10} {:>12}",
                    "job",
                    "tenant",
                    "pri",
                    "arrive",
                    "admit",
                    "finish",
                    "evict",
                    "Mbps",
                    "energy (J)"
                )?;
                for j in &report.jobs {
                    writeln!(
                        out,
                        "{:<24} {:>6} {:>4} {:>7} {:>7} {:>7} {:>5} {:>10.0} {:>12.0}",
                        j.outcome.label,
                        j.tenant,
                        j.priority,
                        j.arrival_round,
                        j.admitted_round.map_or("-".into(), |r| r.to_string()),
                        j.finished_round.map_or("-".into(), |r| r.to_string()),
                        j.preemptions,
                        j.outcome.throughput_mbps,
                        j.outcome.energy_j
                    )?;
                    if let Some(err) = &j.outcome.error {
                        writeln!(out, "  error: {err}")?;
                    }
                }
                for s in &report.sites {
                    writeln!(
                        out,
                        "site {}: {} jobs, {} bytes, {:.0} J over {} rounds",
                        s.site, s.jobs, s.moved_bytes, s.energy_j, report.rounds
                    )?;
                }
                writeln!(
                    out,
                    "completed {}/{}",
                    report.completed_count(),
                    report.jobs.len()
                )?;
            }
            if let Some(path) = report_path {
                std::fs::write(path, report.to_json())
                    .map_err(|e| EadtError::io(path.clone(), e.to_string()))?;
                writeln!(out, "[service report -> {path}]")?;
            }
            if let Some(path) = journal_path {
                std::fs::write(path, run.journal.to_jsonl())
                    .map_err(|e| EadtError::io(path.clone(), e.to_string()))?;
                writeln!(out, "[service journal -> {path}]")?;
            }
            Ok(())
        }
        Command::Sla {
            targets,
            max_channel,
        } => {
            let tb = resolve(cli)?;
            let dataset = make_dataset(cli, &tb, out)?;
            let mut ctx = RunCtx::new(&tb.env, &dataset);
            let reference = ProMc {
                partition: tb.partition,
                ..ProMc::new(tb.reference_concurrency)
            }
            .run(&mut ctx);
            writeln!(
                out,
                "reference: ProMC@{} = {:.0} Mbps, {:.0} J",
                tb.reference_concurrency,
                reference.avg_throughput().as_mbps(),
                reference.total_energy_j()
            )?;
            writeln!(
                out,
                "{:>7} {:>12} {:>13} {:>11} {:>10}",
                "target", "target Mbps", "achieved Mbps", "energy J", "saved"
            )?;
            for &pct in targets {
                let level = f64::from(pct) / 100.0;
                let slaee = Slaee {
                    partition: tb.partition,
                    fault_aware: cli.faults.fault_aware,
                    ..Slaee::new(level, reference.avg_throughput(), *max_channel)
                };
                let r = slaee.run(&mut ctx);
                writeln!(
                    out,
                    "{:>6}% {:>12.0} {:>13.0} {:>11.0} {:>9.1}%",
                    pct,
                    reference.avg_throughput().as_mbps() * level,
                    r.avg_throughput().as_mbps(),
                    r.total_energy_j(),
                    100.0 * (reference.total_energy_j() - r.total_energy_j())
                        / reference.total_energy_j()
                )?;
            }
            Ok(())
        }
        Command::Dataset => {
            let tb = resolve(cli)?;
            let dataset = make_dataset(cli, &tb, out)?;
            let chunks = partition(&dataset, tb.env.link.bdp(), &tb.partition);
            writeln!(out, "BDP: {}", tb.env.link.bdp())?;
            writeln!(
                out,
                "{:<8} {:>8} {:>12} {:>14} {:>9}",
                "class", "files", "bytes", "avg file", "weight"
            )?;
            for c in &chunks {
                writeln!(
                    out,
                    "{:<8} {:>8} {:>12} {:>14} {:>9.2}",
                    c.class.label(),
                    c.file_count(),
                    c.total_size().to_string(),
                    c.avg_file_size().to_string(),
                    c.weight()
                )?;
            }
            Ok(())
        }
        Command::Env { export } => {
            let tb = resolve(cli)?;
            let json = envfile::to_json(&tb);
            match export {
                Some(path) => {
                    std::fs::write(path, &json)
                        .map_err(|e| EadtError::io(path.clone(), e.to_string()))?;
                    writeln!(out, "wrote {path}")?;
                }
                None => writeln!(out, "{json}")?,
            }
            Ok(())
        }
        Command::NetEnergy {
            algorithm,
            max_channel,
        } => {
            let tb = resolve(cli)?;
            let dataset = make_dataset(cli, &tb, out)?;
            let r = run_algorithm(
                &tb,
                &dataset,
                *algorithm,
                *max_channel,
                0.9,
                cli.faults.fault_aware,
            );
            let packets = tb.env.packets.total_packets(r.wire_bytes);
            let d = eadt_netenergy::decompose(
                r.total_energy_j(),
                &tb.path,
                r.wire_bytes,
                &tb.env.packets,
            );
            writeln!(out, "transfer: {} over {}", algorithm.name(), tb.path.name)?;
            writeln!(
                out,
                "end-system: {:.0} J ({:.1}%)   network: {:.1} J ({:.1}%)   {} packets",
                d.end_system_joules,
                d.end_system_percent(),
                d.network_joules,
                d.network_percent(),
                packets
            )?;
            writeln!(out, "per-device (load-dependent):")?;
            for (device, joules) in eadt_netenergy::path_breakdown(&tb.path, packets) {
                writeln!(out, "  {:<28} {:>10.2} J", device.label(), joules)?;
            }
            let idle = eadt_netenergy::account::path_energy_with_idle_joules(
                &tb.path,
                packets,
                r.duration.as_secs_f64(),
            );
            writeln!(
                out,
                "with idle power the path would burn {:.0} J over the {:.0} s transfer",
                idle,
                r.duration.as_secs_f64()
            )?;
            Ok(())
        }
        Command::Trace {
            algorithm,
            max_channel,
            sla_level,
            pipelining,
            parallelism,
            out: journal_path,
            cadence_s,
        } => {
            let tb = resolve(cli)?;
            let dataset = make_dataset(cli, &tb, out)?;
            let mut tel = Telemetry::enabled(SimDuration::from_secs_f64(*cadence_s));
            tel.record(
                SimTime::ZERO,
                Event::RunStart {
                    schema: SCHEMA_VERSION,
                    algorithm: algorithm.name().to_string(),
                    environment: tb.name.clone(),
                    seed: cli.seed,
                    requested_bytes: dataset.total_size().as_u64(),
                },
            );
            let report = if *algorithm == AlgorithmKind::Manual {
                let params =
                    eadt_transfer::TransferParams::new(*pipelining, *parallelism, *max_channel);
                let plan = eadt_transfer::uniform_plan(
                    &dataset,
                    params,
                    eadt_endsys::Placement::PackFirst,
                );
                run_manual_instrumented(&tb.env, &plan, cli.faults.fault_aware, &mut tel)
            } else {
                run_algorithm_instrumented(
                    &tb,
                    &dataset,
                    *algorithm,
                    *max_channel,
                    *sla_level,
                    cli.faults.fault_aware,
                    &mut tel,
                )
            };
            let journal = tel.into_journal().expect("trace telemetry has a journal");
            std::fs::write(journal_path, journal.to_jsonl())
                .map_err(|e| EadtError::io(journal_path.clone(), e.to_string()))?;
            writeln!(out, "[journal: {} events -> {journal_path}]", journal.len())?;
            print_report(cli, out, algorithm.name(), &report)
        }
        Command::Inspect {
            journal,
            chrome: chrome_path,
            width,
        } => {
            let text = std::fs::read_to_string(journal)
                .map_err(|e| EadtError::io(journal.clone(), e.to_string()))?;
            let j = Journal::from_jsonl(&text)
                .map_err(|e| EadtError::io(journal.clone(), format!("cannot parse: {e}")))?;
            out.write_all(timeline::render_summary(&j).as_bytes())?;
            writeln!(out)?;
            out.write_all(timeline::render_timeline(&j, *width).as_bytes())?;
            writeln!(out)?;
            out.write_all(timeline::render_decisions(&j).as_bytes())?;
            if let Some(path) = chrome_path {
                std::fs::write(path, chrome::to_chrome_trace(&j))
                    .map_err(|e| EadtError::io(path.clone(), e.to_string()))?;
                writeln!(out, "[chrome trace -> {path}] (open in Perfetto)")?;
            }
            Ok(())
        }
        Command::Profile {
            algorithm,
            max_channel,
            sla_level,
            pipelining,
            parallelism,
            from,
            width,
        } => {
            // Either re-read a saved fleet report's rolled-up ledger or run
            // one transfer and profile it; both paths print the same flame.
            let (source, ledger) = match from {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| EadtError::io(path.clone(), e.to_string()))?;
                    let report: FleetReport = serde_json::from_str(&text)
                        .map_err(|e| EadtError::io(path.clone(), format!("cannot parse: {e}")))?;
                    let label = format!(
                        "fleet of {} jobs (root seed {})",
                        report.metrics.jobs_total, report.root_seed
                    );
                    (label, report.metrics.ledger)
                }
                None => {
                    let tb = resolve(cli)?;
                    let dataset = make_dataset(cli, &tb, out)?;
                    let report = if *algorithm == AlgorithmKind::Manual {
                        let plan = eadt_transfer::uniform_plan(
                            &dataset,
                            eadt_transfer::TransferParams::new(
                                *pipelining,
                                *parallelism,
                                *max_channel,
                            ),
                            eadt_endsys::Placement::PackFirst,
                        );
                        run_manual(&tb.env, &plan, cli.faults.fault_aware)
                    } else {
                        run_algorithm(
                            &tb,
                            &dataset,
                            *algorithm,
                            *max_channel,
                            *sla_level,
                            cli.faults.fault_aware,
                        )
                    };
                    (algorithm.name().to_string(), report.ledger)
                }
            };
            if cli.json {
                let json = serde_json::json!({
                    "source": source,
                    "total_j": ledger.total_j(),
                    "ledger": ledger,
                });
                writeln!(
                    out,
                    "{}",
                    serde_json::to_string_pretty(&json).expect("serializable")
                )?;
            } else {
                writeln!(out, "profile: {source}")?;
                writeln!(
                    out,
                    "total energy: {:.1} J (src {:.1} + dst {:.1})",
                    ledger.total_j(),
                    ledger.src.total_j(),
                    ledger.dst.total_j()
                )?;
                out.write_all(ledger.render_flame(*width).as_bytes())?;
            }
            Ok(())
        }
        Command::Calibrate => {
            let intel = GroundTruth::intel_server();
            let amd = GroundTruth::amd_server();
            let outcome = build_models(&intel, 115.0, 4, cli.seed);
            writeln!(
                out,
                "fine-grained: cpu_scale={:.3} c_mem={:.3} c_disk={:.3} c_nic={:.3} (R²={:.4})",
                outcome.fine_grained.cpu_scale,
                outcome.fine_grained.c_memory,
                outcome.fine_grained.c_disk,
                outcome.fine_grained.c_nic,
                outcome.fine_r_squared
            )?;
            writeln!(
                out,
                "cpu-only weight={:.3}, CPU↔power correlation {:.2}%",
                outcome.cpu_only.cpu_weight,
                outcome.cpu_power_correlation * 100.0
            )?;
            let ext = outcome.cpu_only.extend_to(95.0);
            writeln!(
                out,
                "{:<9} {:>13} {:>10} {:>14}",
                "tool", "fine-grained", "cpu-only", "tdp-extended"
            )?;
            for tool in ToolProfile::paper_tools() {
                writeln!(
                    out,
                    "{:<9} {:>12.2}% {:>9.2}% {:>13.2}%",
                    tool.name,
                    evaluate_model(&outcome.fine_grained, &tool, &intel, 4, cli.seed),
                    evaluate_model(&outcome.cpu_only, &tool, &intel, 4, cli.seed),
                    evaluate_model(&ext, &tool, &amd, 4, cli.seed),
                )?;
            }
            Ok(())
        }
    }
}

fn resolve(cli: &Cli) -> Result<Environment, EadtError> {
    let mut tb = envfile::load(&cli.env)?;
    apply_fault_args(&cli.faults, cli.seed, &mut tb.env);
    if cli.no_macro_step {
        tb.env.tuning.macro_step = false;
    }
    Ok(tb)
}

/// Folds the CLI fault flags into the environment's fault plan. Flags
/// compose with (and override pieces of) whatever plan the environment
/// already declares; the dataset seed keeps CLI-injected faults exactly
/// reproducible.
fn apply_fault_args(args: &FaultArgs, seed: u64, env: &mut TransferEnv) {
    if !args.any() {
        return;
    }
    let mut plan = env.faults.take().unwrap_or_default();
    if let Some(mtbf) = args.mtbf_s {
        plan.channel = Some(FaultModel::new(SimDuration::from_secs_f64(mtbf), seed));
    }
    if let Some((gap, dur, server)) = args.outage {
        plan.outages.push(OutageModel::new(
            SiteSide::Dst,
            server,
            SimDuration::from_secs_f64(gap),
            SimDuration::from_secs_f64(dur),
            seed ^ 0x0074_a63e,
        ));
    }
    if let Some(budget) = args.retry_budget {
        plan.retry.retry_budget = budget.max(1);
    }
    if args.no_restart_markers {
        plan.drop_restart_markers = true;
    }
    env.faults = Some(plan);
}

fn make_dataset(cli: &Cli, tb: &Environment, out: Out) -> Result<Dataset, EadtError> {
    let dataset = match &cli.dataset_file {
        Some(path) => envfile::load_dataset(path)?,
        None => tb.dataset_spec.scaled(cli.scale).generate(cli.seed),
    };
    writeln!(
        out,
        "[{} | {} files, {} | scale {} seed {}]",
        tb.name,
        dataset.file_count(),
        dataset.total_size(),
        cli.scale,
        cli.seed
    )?;
    Ok(dataset)
}

/// Runs one algorithm by kind. SLAEE derives its reference maximum from a
/// ProMC run at the testbed's reference concurrency. `fault_aware` wraps
/// the controller of the algorithms that support it (HTEE, SLAEE, ProMC,
/// manual); the energy-agnostic baselines run as the paper describes them.
pub fn run_algorithm(
    tb: &Environment,
    dataset: &Dataset,
    kind: AlgorithmKind,
    max_channel: u32,
    sla_level: f64,
    fault_aware: bool,
) -> TransferReport {
    run_algorithm_instrumented(
        tb,
        dataset,
        kind,
        max_channel,
        sla_level,
        fault_aware,
        &mut Telemetry::disabled(),
    )
}

/// [`run_algorithm`] with telemetry: journal events and metric samples
/// land in `tel` (pass [`Telemetry::disabled`] for a plain run). SLAEE's
/// uninstrumented reference run stays out of the journal.
pub fn run_algorithm_instrumented(
    tb: &Environment,
    dataset: &Dataset,
    kind: AlgorithmKind,
    max_channel: u32,
    sla_level: f64,
    fault_aware: bool,
    tel: &mut Telemetry,
) -> TransferReport {
    let partition = tb.partition;
    let mut ctx = RunCtx::with_telemetry(&tb.env, dataset, tel);
    match kind {
        AlgorithmKind::MinE => MinE {
            partition,
            ..MinE::new(max_channel)
        }
        .run(&mut ctx),
        AlgorithmKind::Htee => Htee {
            partition,
            fault_aware,
            ..Htee::new(max_channel)
        }
        .run(&mut ctx),
        AlgorithmKind::Slaee => {
            let reference = ProMc {
                partition,
                ..ProMc::new(tb.reference_concurrency)
            }
            .run(&mut RunCtx::new(&tb.env, dataset));
            Slaee {
                partition,
                fault_aware,
                ..Slaee::new(sla_level, reference.avg_throughput(), max_channel)
            }
            .run(&mut ctx)
        }
        AlgorithmKind::Guc => GlobusUrlCopy::new().run(&mut ctx),
        AlgorithmKind::Go => GlobusOnline::new().run(&mut ctx),
        AlgorithmKind::Sc => SingleChunk {
            partition,
            ..SingleChunk::new(max_channel)
        }
        .run(&mut ctx),
        AlgorithmKind::ProMc => ProMc {
            partition,
            fault_aware,
            ..ProMc::new(max_channel)
        }
        .run(&mut ctx),
        AlgorithmKind::Bf => BruteForce {
            partition,
            ..BruteForce::new(max_channel)
        }
        .run(&mut ctx),
        AlgorithmKind::Manual => {
            // Defaults to the untuned baseline when called through this
            // path; the CLI's transfer command supplies explicit values.
            let plan = eadt_transfer::uniform_plan(
                dataset,
                eadt_transfer::TransferParams::new(1, 1, max_channel),
                eadt_endsys::Placement::PackFirst,
            );
            run_manual_instrumented(&tb.env, &plan, fault_aware, ctx.telemetry())
        }
    }
}

/// Runs one transfer under the crash-safe checkpoint cadence (DESIGN.md
/// §13): the job executes through the fleet session's checkpointed
/// runner, so an interrupted invocation rerun with the same flags resumes
/// from the snapshot under `dir` — and determinism makes the final report
/// byte-identical to an uninterrupted run.
#[allow(clippy::too_many_arguments)]
fn run_transfer_checkpointed(
    cli: &Cli,
    tb: &Environment,
    dataset: &Dataset,
    kind: AlgorithmKind,
    max_channel: u32,
    sla_level: f64,
    pipelining: u32,
    parallelism: u32,
    dir: &str,
    out: Out,
) -> Result<TransferReport, EadtError> {
    let mut job = JobSpec::new(kind, tb.clone())
        .with_scale(cli.scale)
        .with_dataset(dataset.clone())
        .with_max_channel(max_channel)
        .with_sla_level(sla_level)
        .with_fault_aware(cli.faults.fault_aware)
        .with_seed(cli.seed);
    if kind == AlgorithmKind::Manual {
        job = job.with_manual_params(pipelining, parallelism);
    }
    let outcome = Session::builder()
        .root_seed(cli.seed)
        .checkpoints(dir, cli.checkpoint_every)
        .build()
        .run_one(&job);
    writeln!(
        out,
        "[checkpoints every {} slices -> {dir}]",
        cli.checkpoint_every
    )?;
    match outcome.report {
        Some(r) => Ok(r),
        None => Err(EadtError::job_failed(
            job.display_label(),
            outcome
                .error
                .unwrap_or_else(|| "job failed without an error message".to_string()),
        )),
    }
}

fn run_manual(
    env: &TransferEnv,
    plan: &eadt_transfer::TransferPlan,
    fault_aware: bool,
) -> TransferReport {
    run_manual_instrumented(env, plan, fault_aware, &mut Telemetry::disabled())
}

fn run_manual_instrumented(
    env: &TransferEnv,
    plan: &eadt_transfer::TransferPlan,
    fault_aware: bool,
    tel: &mut Telemetry,
) -> TransferReport {
    if fault_aware {
        eadt_transfer::Engine::new(env).run_instrumented(
            plan,
            &mut eadt_transfer::FaultAware::new(eadt_transfer::NullController),
            tel,
        )
    } else {
        eadt_transfer::Engine::new(env).run_instrumented(
            plan,
            &mut eadt_transfer::NullController,
            tel,
        )
    }
}

fn print_report(cli: &Cli, out: Out, name: &str, r: &TransferReport) -> Result<(), EadtError> {
    if cli.json {
        let faults = serde_json::json!({
            "channel_failures": r.faults.channel_failures,
            "outage_failures": r.faults.outage_failures,
            "outage_episodes": r.faults.outage_episodes,
            "retries": r.faults.retries,
            "breaker_opens": r.faults.breaker_opens,
            "budget_exhaustions": r.faults.budget_exhaustions,
            "backoff_s": r.faults.backoff_time.as_secs_f64(),
            "retransmitted_bytes": r.faults.retransmitted_bytes.as_u64(),
            "retransmitted_energy_j": r.retransmitted_energy_j(),
        });
        let json = serde_json::json!({
            "schema": eadt_transfer::REPORT_SCHEMA_VERSION,
            "algorithm": name,
            "completed": r.completed,
            "moved_bytes": r.moved_bytes.as_u64(),
            "duration_s": r.duration.as_secs_f64(),
            "throughput_mbps": r.avg_throughput().as_mbps(),
            "src_energy_j": r.src_energy_j,
            "dst_energy_j": r.dst_energy_j,
            "efficiency": r.efficiency(),
            "wire_bytes": r.wire_bytes.as_u64(),
            "packets": r.packets,
            "failures": r.failures,
            "faults": faults,
            "chunks": r.chunk_stats.iter().map(|c| serde_json::json!({
                "label": c.label,
                "bytes": c.bytes.as_u64(),
                "files": c.files,
                "completed_at_s": c.completed_at.map(|d| d.as_secs_f64()),
            })).collect::<Vec<_>>(),
        });
        writeln!(
            out,
            "{}",
            serde_json::to_string_pretty(&json).expect("serializable")
        )?;
    } else {
        writeln!(out, "algorithm:   {name}")?;
        writeln!(out, "completed:   {}", r.completed)?;
        writeln!(out, "moved:       {}", r.moved_bytes)?;
        writeln!(out, "duration:    {}", r.duration)?;
        writeln!(out, "throughput:  {}", r.avg_throughput())?;
        writeln!(
            out,
            "energy:      {:.0} J (src {:.0} + dst {:.0}), mean {:.1} W",
            r.total_energy_j(),
            r.src_energy_j,
            r.dst_energy_j,
            r.mean_power_w()
        )?;
        writeln!(out, "efficiency:  {:.4} Mbps/J", r.efficiency())?;
        writeln!(out, "wire bytes:  {} ({} packets)", r.wire_bytes, r.packets)?;
        if r.failures > 0 {
            let f = &r.faults;
            writeln!(
                out,
                "failures:    {} ({} channel, {} outage over {} windows)",
                f.total_failures(),
                f.channel_failures,
                f.outage_failures,
                f.outage_episodes
            )?;
            writeln!(
                out,
                "recovery:    {} retries, {} channel-time in backoff, {} breaker opens, {} budget exhaustions",
                f.retries, f.backoff_time, f.breaker_opens, f.budget_exhaustions
            )?;
            if !f.retransmitted_bytes.is_zero() {
                writeln!(
                    out,
                    "retransmit:  {} ({:.0} J of energy re-spent)",
                    f.retransmitted_bytes,
                    r.retransmitted_energy_j()
                )?;
            }
        }
        for c in &r.chunk_stats {
            writeln!(
                out,
                "  chunk {:<7} {:>6} files {:>12}  done at {}",
                c.label,
                c.files,
                c.bytes.to_string(),
                c.completed_at.map_or("-".into(), |d| d.to_string())
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::EnvSource;

    fn run_cli(words: &str) -> String {
        let argv: Vec<String> = words.split_whitespace().map(str::to_string).collect();
        let mut buf = Vec::new();
        crate::run(&argv, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli("help");
        assert!(out.contains("USAGE"));
        assert!(out.contains("transfer"));
        assert!(out.contains("fleet"));
    }

    #[test]
    fn transfer_prints_report() {
        let out = run_cli("transfer --testbed didclab --algorithm promc --scale 0.01");
        assert!(out.contains("algorithm:   ProMC"), "{out}");
        assert!(out.contains("completed:   true"), "{out}");
        assert!(out.contains("chunk"), "{out}");
    }

    #[test]
    fn transfer_json_is_valid() {
        let out = run_cli("transfer --testbed didclab --algorithm guc --scale 0.01 --json");
        let start = out.find('{').expect("json in output");
        let v: serde_json::Value = serde_json::from_str(&out[start..]).unwrap();
        assert_eq!(v["algorithm"], "GUC");
        assert_eq!(v["completed"], true);
        assert!(v["throughput_mbps"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn fault_flags_inject_and_report_breakdown() {
        let out = run_cli(
            "transfer --testbed didclab --algorithm promc --scale 0.02 --mtbf 8 --retry-budget 3 --fault-aware --json",
        );
        let start = out.find('{').expect("json in output");
        let v: serde_json::Value = serde_json::from_str(&out[start..]).unwrap();
        assert_eq!(v["completed"], true);
        let f = &v["faults"];
        assert!(f["channel_failures"].as_u64().unwrap() > 0, "{out}");
        assert_eq!(
            v["failures"].as_u64().unwrap(),
            f["channel_failures"].as_u64().unwrap() + f["outage_failures"].as_u64().unwrap()
        );
        assert!(f["retries"].as_u64().unwrap() > 0);
        assert!(f["backoff_s"].as_f64().unwrap() > 0.0);
        // Restart markers stay on unless --no-restart-markers is given.
        assert_eq!(f["retransmitted_bytes"].as_u64().unwrap(), 0);

        // Text mode prints the same breakdown.
        let out = run_cli("transfer --testbed didclab --algorithm promc --scale 0.02 --mtbf 8");
        assert!(out.contains("failures:"), "{out}");
        assert!(out.contains("recovery:"), "{out}");

        // Without markers the lost progress is priced in joules.
        let out = run_cli(
            "transfer --testbed didclab --algorithm promc --scale 0.02 --mtbf 8 --no-restart-markers --json",
        );
        let start = out.find('{').expect("json in output");
        let v: serde_json::Value = serde_json::from_str(&out[start..]).unwrap();
        assert_eq!(v["completed"], true);
        assert!(
            v["faults"]["retransmitted_bytes"].as_u64().unwrap() > 0,
            "{out}"
        );
        assert!(v["faults"]["retransmitted_energy_j"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn sweep_emits_rows_for_each_cell() {
        let out = run_cli("sweep --testbed didclab --algorithms sc,mine --levels 1,2 --scale 0.01");
        let rows: Vec<&str> = out
            .lines()
            .filter(|l| l.starts_with("SC") || l.starts_with("MinE"))
            .collect();
        assert_eq!(rows.len(), 4, "{out}");
    }

    #[test]
    fn fleet_runs_batch_and_prints_summary() {
        let out = run_cli(
            "fleet --testbed didclab --algorithms sc,promc --levels 1,2 --scale 0.01 --workers 2",
        );
        assert!(out.contains("fleet: 4 jobs"), "{out}");
        assert!(out.contains("DIDCLAB/SC@1"), "{out}");
        assert!(out.contains("completed 4/4 (0 errors)"), "{out}");
    }

    #[test]
    fn fleet_json_is_worker_count_invariant() {
        let run_json = |workers: u32| {
            let out = run_cli(&format!(
                "fleet --testbed didclab --algorithms sc,mine --levels 1,2 --scale 0.01 \
                 --seed 9 --workers {workers} --json"
            ));
            let start = out.find('{').expect("json in output");
            out[start..].to_string()
        };
        let serial = run_json(1);
        let parallel = run_json(4);
        assert_eq!(serial, parallel, "fleet JSON must not depend on workers");
        let v: serde_json::Value = serde_json::from_str(&serial).unwrap();
        assert_eq!(v["root_seed"].as_u64().unwrap(), 9);
        assert_eq!(v["jobs"].as_array().unwrap().len(), 4);
        assert!(serial.find("workers").is_none(), "no worker count in JSON");
    }

    #[test]
    fn fleet_writes_report_file() {
        let dir = std::env::temp_dir().join("eadt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.json");
        let path_s = path.to_string_lossy().into_owned();
        let out = run_cli(&format!(
            "fleet --testbed didclab --algorithms sc --levels 1 --scale 0.01 --out {path_s}"
        ));
        assert!(out.contains("fleet report ->"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["jobs"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn checkpointed_transfer_matches_plain_run() {
        let dir = std::env::temp_dir().join(format!("eadt-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = dir.to_string_lossy().into_owned();
        let plain =
            run_cli("transfer --testbed didclab --algorithm mine --scale 0.01 --seed 4 --json");
        let checkpointed = run_cli(&format!(
            "transfer --testbed didclab --algorithm mine --scale 0.01 --seed 4 --json \
             --checkpoint-dir {ds} --checkpoint-every 8"
        ));
        let json_of = |s: &str| s[s.find('{').expect("json in output")..].to_string();
        assert_eq!(json_of(&plain), json_of(&checkpointed));
        assert!(
            checkpointed.contains("checkpoints every 8 slices"),
            "{checkpointed}"
        );
        // The finished job retired its checkpoint and left its outcome.
        assert!(dir.join("job-0.outcome.json").exists());
        assert!(!dir.join("job-0.ckpt.json").exists());

        // A rerun over the same directory re-drives the job (outcome file
        // present, but `transfer` always executes) and stays identical.
        let again = run_cli(&format!(
            "transfer --testbed didclab --algorithm mine --scale 0.01 --seed 4 --json \
             --checkpoint-dir {ds} --checkpoint-every 8"
        ));
        assert_eq!(json_of(&plain), json_of(&again));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_resume_reproduces_straight_run() {
        let dir = std::env::temp_dir().join(format!("eadt-cli-fleet-ck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = dir.to_string_lossy().into_owned();
        let straight = run_cli(
            "fleet --testbed didclab --algorithms sc,promc --levels 1,2 --scale 0.01 \
             --seed 6 --workers 2 --json",
        );
        let checkpointed = run_cli(&format!(
            "fleet --testbed didclab --algorithms sc,promc --levels 1,2 --scale 0.01 \
             --seed 6 --workers 2 --json --checkpoint-dir {ds} --checkpoint-every 8"
        ));
        // Simulate a crash that lost one finished job's outcome: the
        // resume re-runs exactly that job and re-admits the rest.
        std::fs::remove_file(dir.join("job-2.outcome.json")).unwrap();
        let resumed = run_cli(&format!(
            "fleet --testbed didclab --algorithms sc,promc --levels 1,2 --scale 0.01 \
             --seed 6 --workers 2 --json --checkpoint-dir {ds} --resume"
        ));
        let json_of = |s: &str| s[s.find('{').expect("json in output")..].to_string();
        assert_eq!(json_of(&straight), json_of(&checkpointed));
        assert_eq!(json_of(&straight), json_of(&resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_runs_contending_tenants_and_prints_summary() {
        let out = run_cli(
            "serve --testbed didclab --algorithms sc,promc --tenants 2 --slots 2 \
             --quantum 100 --scale 0.01 --workers 2",
        );
        assert!(out.contains("serve: 2 jobs, 2 tenants"), "{out}");
        assert!(out.contains("site DIDCLAB:"), "{out}");
        assert!(out.contains("completed 2/2"), "{out}");
    }

    #[test]
    fn serve_json_is_worker_count_invariant() {
        let run_json = |workers: u32| {
            let out = run_cli(&format!(
                "serve --testbed didclab --algorithms sc,promc --quantum 100 --scale 0.01 \
                 --seed 9 --workers {workers} --json"
            ));
            let start = out.find('{').expect("json in output");
            out[start..].to_string()
        };
        let serial = run_json(1);
        let parallel = run_json(4);
        assert_eq!(serial, parallel, "serve JSON must not depend on workers");
        let v: serde_json::Value = serde_json::from_str(&serial).unwrap();
        assert_eq!(v["root_seed"].as_u64().unwrap(), 9);
        assert_eq!(v["policy"], "fair");
        assert_eq!(v["jobs"].as_array().unwrap().len(), 2);
        assert_eq!(v["sites"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn serve_policies_produce_different_reports_and_journals() {
        let dir = std::env::temp_dir().join(format!("eadt-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run_policy = |policy: &str| {
            let jp = dir.join(format!("{policy}.jsonl"));
            // The arrival gap makes the low-priority tenant-0 job land
            // first and occupy the single slot; when the tenant-1 job
            // arrives a round later, strict priority must preempt.
            let out = run_cli(&format!(
                "serve --testbed didclab --algorithms sc,promc --tenants 2 --slots 1 \
                 --quantum 100 --scale 0.05 --seed 4 --arrival-gap 40 --policy {policy} \
                 --json --journal {}",
                jp.to_string_lossy()
            ));
            let start = out.find('{').expect("json in output");
            (
                out[start..].to_string(),
                std::fs::read_to_string(&jp).unwrap(),
            )
        };
        let (fair, fair_journal) = run_policy("fair");
        let (strict, strict_journal) = run_policy("priority");
        assert_ne!(fair, strict, "policies must change the schedule");
        assert!(
            fair_journal.contains("\"ev\":\"job_submitted\""),
            "{fair_journal}"
        );
        assert!(
            fair_journal.contains("\"ev\":\"job_admitted\""),
            "{fair_journal}"
        );
        // One slot + a higher-priority tenant ⇒ strict priority preempts.
        assert!(
            strict_journal.contains("\"ev\":\"job_preempted\""),
            "{strict_journal}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sla_lists_targets() {
        let out = run_cli("sla --testbed didclab --targets 90,50 --scale 0.01");
        assert!(out.contains("90%"), "{out}");
        assert!(out.contains("50%"), "{out}");
        assert!(out.contains("reference: ProMC@1"), "{out}");
    }

    #[test]
    fn dataset_shows_partition() {
        let out = run_cli("dataset --testbed xsede --scale 0.01");
        assert!(out.contains("BDP: 50.00 MB"), "{out}");
        assert!(out.contains("Small"), "{out}");
    }

    #[test]
    fn env_export_round_trips() {
        let dir = std::env::temp_dir().join("eadt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fg.json");
        let path_s = path.to_string_lossy().into_owned();
        let out = run_cli(&format!("env --testbed futuregrid --export {path_s}"));
        assert!(out.contains("wrote"), "{out}");
        // And the exported file powers a transfer.
        let out = run_cli(&format!(
            "transfer --env-file {path_s} --algorithm sc --max-channel 2 --scale 0.01"
        ));
        assert!(out.contains("completed:   true"), "{out}");
        assert!(out.contains("FutureGrid"), "{out}");
    }

    #[test]
    fn dataset_file_overrides_synthetic_dataset() {
        let dir = std::env::temp_dir().join("eadt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.txt");
        std::fs::write(&path, "100MB\n100MB\n100MB\n").unwrap();
        let out = run_cli(&format!(
            "transfer --testbed didclab --algorithm promc --dataset-file {}",
            path.to_string_lossy()
        ));
        assert!(out.contains("3 files, 300.00 MB"), "{out}");
        assert!(out.contains("completed:   true"), "{out}");
    }

    #[test]
    fn manual_transfer_uses_given_parameters() {
        let out = run_cli(
            "transfer --testbed xsede --algorithm manual --pipelining 8 --parallelism 2 \
             --max-channel 4 --scale 0.01",
        );
        assert!(out.contains("algorithm:   manual"), "{out}");
        assert!(out.contains("completed:   true"), "{out}");
    }

    #[test]
    fn transfer_csv_writes_series() {
        let dir = std::env::temp_dir().join("eadt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.csv");
        let path_s = path.to_string_lossy().into_owned();
        let out = run_cli(&format!(
            "transfer --testbed didclab --algorithm sc --scale 0.01 --csv {path_s}"
        ));
        assert!(out.contains("series written"), "{out}");
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("time_s,throughput_mbps,power_w,concurrency"));
        assert!(csv.lines().count() > 2, "{csv}");
    }

    #[test]
    fn trace_writes_journal_and_inspect_renders_it() {
        let dir = std::env::temp_dir().join("eadt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("htee.jsonl");
        let jp = jpath.to_string_lossy().into_owned();
        // max-channel 3 keeps the search to two 5 s probe windows so the
        // commit lands well before this small transfer drains.
        let out = run_cli(&format!(
            "trace --testbed didclab --algorithm htee --scale 0.05 --max-channel 3 --out {jp}"
        ));
        assert!(out.contains("journal:"), "{out}");
        assert!(out.contains("completed:   true"), "{out}");
        let text = std::fs::read_to_string(&jpath).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"ev\":\"run_start\""), "{first}");
        assert!(first.contains("\"algorithm\":\"HTEE\""), "{first}");
        for tag in [
            "\"ev\":\"chunk_start\"",
            "\"ev\":\"channel_open\"",
            "\"ev\":\"probe_window\"",
            "\"ev\":\"commit\"",
            "\"ev\":\"sample\"",
            "\"ev\":\"run_end\"",
        ] {
            assert!(text.contains(tag), "missing {tag} in journal");
        }

        let cpath = dir.join("htee-trace.json");
        let cp = cpath.to_string_lossy().into_owned();
        let out = run_cli(&format!("inspect --journal {jp} --chrome {cp}"));
        assert!(out.contains("run: HTEE"), "{out}");
        assert!(out.contains("timeline:"), "{out}");
        assert!(out.contains("probe"), "{out}");
        assert!(out.contains("commit"), "{out}");
        let chrome_text = std::fs::read_to_string(&cpath).unwrap();
        let v: serde_json::Value = serde_json::from_str(&chrome_text).unwrap();
        assert!(!v["traceEvents"].as_array().unwrap().is_empty());
    }

    #[test]
    fn trace_same_seed_is_byte_identical() {
        let dir = std::env::temp_dir().join("eadt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("det-a.jsonl");
        let b = dir.join("det-b.jsonl");
        let cmd = |p: &std::path::Path| {
            format!(
                "trace --testbed didclab --algorithm promc --scale 0.02 --seed 11 \
                 --mtbf 8 --fault-aware --out {}",
                p.to_string_lossy()
            )
        };
        run_cli(&cmd(&a));
        run_cli(&cmd(&b));
        let ja = std::fs::read(&a).unwrap();
        let jb = std::fs::read(&b).unwrap();
        assert!(!ja.is_empty());
        assert_eq!(ja, jb, "same seed must produce byte-identical journals");
    }

    #[test]
    fn inspect_width_changes_timeline_columns() {
        let dir = std::env::temp_dir().join("eadt-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("width.jsonl");
        let jp = jpath.to_string_lossy().into_owned();
        run_cli(&format!(
            "trace --testbed didclab --algorithm sc --scale 0.01 --out {jp}"
        ));
        let narrow = run_cli(&format!("inspect --journal {jp} --width 40"));
        let wide = run_cli(&format!("inspect --journal {jp} --width 100"));
        let max_line = |s: &str| s.lines().map(str::len).max().unwrap_or(0);
        assert!(
            max_line(&wide) > max_line(&narrow),
            "wider --width must widen the render: {} vs {}",
            max_line(&wide),
            max_line(&narrow)
        );
    }

    #[test]
    fn profile_accounts_for_the_report_energy() {
        let out = run_cli("profile --testbed didclab --algorithm htee --scale 0.01 --json");
        let start = out.find('{').expect("json in output");
        let v: serde_json::Value = serde_json::from_str(&out[start..]).unwrap();
        assert_eq!(v["source"], "HTEE");
        let total = v["total_j"].as_f64().unwrap();
        assert!(total > 0.0);
        let phases = [
            "steady_j",
            "probe_j",
            "retransmit_j",
            "backoff_idle_j",
            "outage_idle_j",
            "startup_j",
        ];
        for side in ["src", "dst"] {
            for p in phases {
                assert!(
                    v["ledger"][side][p].as_f64().is_some(),
                    "missing {side}.{p}"
                );
            }
        }
        // HTEE's probe windows must book probe-phase joules.
        assert!(
            v["ledger"]["src"]["probe_j"].as_f64().unwrap() > 0.0,
            "{out}"
        );

        // Text mode draws the flame.
        let out = run_cli("profile --testbed didclab --algorithm htee --scale 0.01");
        assert!(out.contains("profile: HTEE"), "{out}");
        assert!(out.contains("energy by phase"), "{out}");
        assert!(out.contains("energy by component"), "{out}");
        assert!(out.contains("probe"), "{out}");
    }

    #[test]
    fn profile_from_fleet_report_uses_the_rollup() {
        let dir = std::env::temp_dir().join(format!("eadt-cli-prof-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.json");
        let ps = path.to_string_lossy().into_owned();
        run_cli(&format!(
            "fleet --testbed didclab --algorithms sc,promc --levels 1 --scale 0.01 \
             --seed 5 --out {ps}"
        ));
        let out = run_cli(&format!("profile --from {ps}"));
        assert!(
            out.contains("profile: fleet of 2 jobs (root seed 5)"),
            "{out}"
        );
        assert!(out.contains("energy by phase"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_metrics_out_writes_deterministic_exposition() {
        let dir = std::env::temp_dir().join(format!("eadt-cli-prom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run_once = |name: &str, workers: u32| {
            let p = dir.join(name);
            let ps = p.to_string_lossy().into_owned();
            let out = run_cli(&format!(
                "fleet --testbed didclab --algorithms sc,mine --levels 1,2 --scale 0.01 \
                 --seed 7 --workers {workers} --metrics-out {ps}"
            ));
            assert!(out.contains("fleet metrics ->"), "{out}");
            std::fs::read_to_string(&p).unwrap()
        };
        let serial = run_once("a.prom", 1);
        let parallel = run_once("b.prom", 4);
        assert_eq!(serial, parallel, "exposition must not depend on workers");
        assert!(
            serial.contains("# TYPE eadt_fleet_jobs_total counter"),
            "{serial}"
        );
        assert!(serial.contains("eadt_fleet_energy_joules{side=\"src\",phase=\"steady\"}"));
        assert!(
            serial.contains("eadt_fleet_channel_throughput_mbps_bucket{le=\"+Inf\"}"),
            "{serial}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn netenergy_prints_breakdown() {
        let out = run_cli("netenergy --testbed futuregrid --algorithm promc --scale 0.02");
        assert!(out.contains("end-system:"), "{out}");
        assert!(out.contains("Metro IP Router"), "{out}");
        assert!(out.contains("with idle power"), "{out}");
    }

    #[test]
    fn calibrate_prints_tool_errors() {
        let out = run_cli("calibrate");
        assert!(out.contains("gridftp"), "{out}");
        assert!(out.contains("correlation"), "{out}");
    }

    #[test]
    fn bad_testbed_is_a_typed_error() {
        let argv: Vec<String> = "transfer --testbed mars"
            .split_whitespace()
            .map(str::to_string)
            .collect();
        let mut buf = Vec::new();
        let err = crate::run(&argv, &mut buf).unwrap_err();
        assert_eq!(err.kind(), eadt_sim::ErrorKind::InvalidArgument);
    }

    #[test]
    fn run_algorithm_covers_every_kind() {
        let tb = envfile::load(&EnvSource::Testbed("didclab".into())).unwrap();
        let dataset = tb.dataset_spec.scaled(0.005).generate(1);
        for kind in [
            AlgorithmKind::MinE,
            AlgorithmKind::Htee,
            AlgorithmKind::Slaee,
            AlgorithmKind::Guc,
            AlgorithmKind::Go,
            AlgorithmKind::Sc,
            AlgorithmKind::ProMc,
            AlgorithmKind::Bf,
        ] {
            let r = run_algorithm(&tb, &dataset, kind, 4, 0.8, false);
            assert!(r.completed, "{kind:?}");
            assert_eq!(r.moved_bytes, dataset.total_size(), "{kind:?}");
        }
    }
}
