//! The `eadt` binary: see `eadt help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = eadt_cli::run(&argv, &mut out) {
        // A closed stdout (`eadt ... | head`) is how pagers end us, not a
        // user error: follow Unix convention and leave quietly.
        if e.kind() == eadt_cli::ErrorKind::Io && e.to_string().contains("Broken pipe") {
            return;
        }
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
