//! The `eadt` binary: see `eadt help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = eadt_cli::run(&argv, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
