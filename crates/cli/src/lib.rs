//! Implementation of the `eadt` command-line tool.
//!
//! The binary is a thin `main` over [`run`]; everything else lives here so
//! argument parsing, environment loading and command execution are unit
//! testable without spawning processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod envfile;

pub use args::{Cli, Command};
pub use eadt_sim::{EadtError, ErrorKind};

/// Parses `argv` (without the program name) and executes the command,
/// writing human-readable output to `out`. Failures are typed
/// [`EadtError`]s; `main` renders them for stderr via `Display`.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), EadtError> {
    let cli = Cli::parse(argv)?;
    commands::execute(&cli, out)
}
