//! Loading environments: built-in testbeds or JSON files.
//!
//! A JSON environment file is simply the serde form of
//! [`eadt_testbeds::Environment`] — export one with `eadt env --export
//! my-env.json`, edit the link/server/tuning numbers, and point any command
//! at it with `--env-file my-env.json`. That is the intended way for a
//! downstream user to model *their* path without writing Rust.

use crate::args::EnvSource;
use eadt_dataset::Dataset;
use eadt_sim::{Bytes, EadtError};
use eadt_testbeds::Environment;

/// Resolves an environment source to a concrete environment. Testbed
/// lookup delegates to [`eadt_testbeds::by_name`]; file loads report typed
/// [`EadtError::Io`] / [`EadtError::Environment`] failures.
pub fn load(source: &EnvSource) -> Result<Environment, EadtError> {
    match source {
        EnvSource::Testbed(name) => eadt_testbeds::by_name(name),
        EnvSource::File(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| EadtError::io(path.clone(), format!("cannot read: {e}")))?;
            let env: Environment = serde_json::from_str(&text)
                .map_err(|e| EadtError::environment(path.clone(), format!("cannot parse: {e}")))?;
            let issues = env.validate();
            if issues.is_empty() {
                Ok(env)
            } else {
                Err(EadtError::environment(
                    path.clone(),
                    format!("not a usable environment: {}", issues.join("; ")),
                ))
            }
        }
    }
}

/// Loads a dataset from a manifest file: one file size per line
/// (`3MB`, `2.5 GB`, `1048576`, …), `#` comments and blank lines ignored.
/// This is how a user replays *their* directory listing through the
/// simulator (`du -b` output piped through `awk '{print $1}'` works).
pub fn load_dataset(path: &str) -> Result<Dataset, EadtError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| EadtError::io(path, format!("cannot read: {e}")))?;
    let mut sizes = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let size = Bytes::parse(trimmed)
            .map_err(|e| EadtError::dataset(path, format!("line {}: {e}", lineno + 1)))?;
        if size.is_zero() {
            return Err(EadtError::dataset(
                path,
                format!("line {}: zero-byte file", lineno + 1),
            ));
        }
        sizes.push(size);
    }
    if sizes.is_empty() {
        return Err(EadtError::dataset(path, "no file sizes found"));
    }
    Ok(Dataset::from_sizes(path.to_string(), sizes))
}

/// Serialises an environment as pretty JSON.
pub fn to_json(env: &Environment) -> String {
    serde_json::to_string_pretty(env).expect("environments are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_sim::ErrorKind;
    use eadt_testbeds::xsede;

    #[test]
    fn builtin_testbeds_load() {
        for name in ["xsede", "FutureGrid", "DIDCLAB"] {
            let env = load(&EnvSource::Testbed(name.into())).unwrap();
            assert!(!env.name.is_empty());
        }
        let err = load(&EnvSource::Testbed("nowhere".into())).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidArgument);
    }

    #[test]
    fn environment_round_trips_through_json() {
        let env = xsede();
        let json = to_json(&env);
        let dir = std::env::temp_dir().join("eadt-envfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("xsede.json");
        std::fs::write(&path, &json).unwrap();
        let loaded = load(&EnvSource::File(path.to_string_lossy().into_owned())).unwrap();
        assert_eq!(loaded, env);
    }

    #[test]
    fn invalid_environment_files_are_rejected() {
        let mut env = xsede();
        env.env.tuning.wan_stream_cap = eadt_sim::Rate::ZERO;
        let dir = std::env::temp_dir().join("eadt-envfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("invalid.json");
        std::fs::write(&path, to_json(&env)).unwrap();
        let err = load(&EnvSource::File(path.to_string_lossy().into_owned())).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Environment);
        assert!(
            err.to_string().contains("not a usable environment"),
            "{err}"
        );
    }

    #[test]
    fn dataset_manifests_load() {
        let dir = std::env::temp_dir().join("eadt-envfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("files.txt");
        std::fs::write(&path, "# my dataset\n3MB\n\n2.5 GB\n1000\n").unwrap();
        let d = load_dataset(&path.to_string_lossy()).unwrap();
        assert_eq!(d.file_count(), 3);
        assert_eq!(d.total_size().as_u64(), 3_000_000 + 2_500_000_000 + 1000);
        // Malformed lines carry positions and a typed kind.
        std::fs::write(&path, "3MB\nnonsense\n").unwrap();
        let err = load_dataset(&path.to_string_lossy()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Dataset);
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::write(&path, "# only comments\n").unwrap();
        assert!(load_dataset(&path.to_string_lossy()).is_err());
    }

    #[test]
    fn missing_and_malformed_files_error() {
        let err = load(&EnvSource::File("/definitely/not/here.json".into())).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        let dir = std::env::temp_dir().join("eadt-envfile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = load(&EnvSource::File(path.to_string_lossy().into_owned())).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Environment);
    }
}
