//! Hand-rolled argument parsing (the workspace's dependency policy keeps
//! external crates to the approved numeric/concurrency set, so no clap).
//!
//! Algorithm selection ([`AlgorithmKind`]) is shared workspace-wide from
//! `eadt-core`; parse failures are typed [`EadtError`]s so callers (and
//! batch runners) classify them without string matching.

use eadt_sim::EadtError;

pub use eadt_core::AlgorithmKind;
pub use eadt_endsys::ArbitrationPolicy;

/// Where the transfer runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvSource {
    /// One of the built-in paper testbeds.
    Testbed(String),
    /// A JSON environment file (see [`crate::envfile`]).
    File(String),
}

/// The sub-command to execute.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one transfer and print its report.
    Transfer {
        /// Algorithm to run.
        algorithm: AlgorithmKind,
        /// Channel budget (`maxChannel`).
        max_channel: u32,
        /// SLA level for `slaee` (fraction of the reference maximum).
        sla_level: f64,
        /// Write the per-slice time series to this CSV file.
        csv: Option<String>,
        /// Pipelining for `--algorithm manual`.
        pipelining: u32,
        /// Parallelism for `--algorithm manual`.
        parallelism: u32,
    },
    /// Run several algorithms over several concurrency levels.
    Sweep {
        /// Algorithms to include.
        algorithms: Vec<AlgorithmKind>,
        /// Concurrency levels.
        levels: Vec<u32>,
    },
    /// Run a batch of transfers on worker threads via the fleet session.
    Fleet {
        /// Algorithms to include (ignored with `--figures`).
        algorithms: Vec<AlgorithmKind>,
        /// Concurrency levels (ignored with `--figures`).
        levels: Vec<u32>,
        /// Worker threads (0 = ask the OS for its parallelism).
        workers: usize,
        /// Run the full three-testbed figures matrix instead of the
        /// environment × algorithms × levels batch.
        figures: bool,
        /// Write the merged fleet report JSON here.
        out: Option<String>,
        /// Complete an interrupted batch from `--checkpoint-dir` instead
        /// of starting over.
        resume: bool,
        /// Write the fleet metrics rollup as Prometheus text exposition
        /// here (also turns per-job metrics collection on).
        metrics_out: Option<String>,
        /// Gauge sampling cadence for `--metrics-out`, simulated seconds.
        cadence_s: f64,
    },
    /// Run a multi-tenant continuous service on shared site pools.
    Serve {
        /// Algorithms to cycle jobs over.
        algorithms: Vec<AlgorithmKind>,
        /// Total jobs to submit (0 = one per algorithm).
        jobs: usize,
        /// Tenants to spread the jobs over round-robin (the tenant index
        /// doubles as the job's priority class).
        tenants: u32,
        /// Mean inter-arrival gap of the seeded arrival process, seconds.
        arrival_gap_s: f64,
        /// Site pool arbitration policy.
        policy: ArbitrationPolicy,
        /// Core slots of the shared site (concurrent residents).
        slots: u32,
        /// Scheduling quantum, engine slices.
        quantum: u64,
        /// Channel budget for every job.
        max_channel: u32,
        /// Worker threads (0 = ask the OS for its parallelism).
        workers: usize,
        /// Write the service report JSON here.
        out: Option<String>,
        /// Write the service event journal (JSON Lines) here.
        journal: Option<String>,
        /// Complete an interrupted service from `--checkpoint-dir`.
        resume: bool,
    },
    /// Run the SLAEE experiment over target percentages.
    Sla {
        /// Target percentages (e.g. 95, 90, 50).
        targets: Vec<u32>,
        /// Channel budget.
        max_channel: u32,
    },
    /// Inspect the dataset and its BDP partitioning.
    Dataset,
    /// Print the environment (or export it as JSON with `--export`).
    Env {
        /// Path to write the JSON environment to.
        export: Option<String>,
    },
    /// Run the §2.2 power-model calibration and print accuracies.
    Calibrate,
    /// Run one transfer with full telemetry and write the event journal.
    Trace {
        /// Algorithm to run.
        algorithm: AlgorithmKind,
        /// Channel budget (`maxChannel`).
        max_channel: u32,
        /// SLA level for `slaee`.
        sla_level: f64,
        /// Pipelining for `--algorithm manual`.
        pipelining: u32,
        /// Parallelism for `--algorithm manual`.
        parallelism: u32,
        /// Journal output path (JSON Lines).
        out: String,
        /// Gauge sampling cadence, simulated seconds.
        cadence_s: f64,
    },
    /// Render a recorded journal: summary, timelines, decision log.
    Inspect {
        /// Journal input path.
        journal: String,
        /// Optional Chrome `trace_event` output (open in Perfetto).
        chrome: Option<String>,
        /// Timeline render width, columns.
        width: usize,
    },
    /// Energy-attribution profile: where did every joule go?
    Profile {
        /// Algorithm to run (ignored with `--from`).
        algorithm: AlgorithmKind,
        /// Channel budget (`maxChannel`).
        max_channel: u32,
        /// SLA level for `slaee`.
        sla_level: f64,
        /// Pipelining for `--algorithm manual`.
        pipelining: u32,
        /// Parallelism for `--algorithm manual`.
        parallelism: u32,
        /// Profile a saved fleet report instead of running a transfer.
        from: Option<String>,
        /// Flame render width, columns.
        width: usize,
    },
    /// The §4 network-energy analysis for one transfer.
    NetEnergy {
        /// Algorithm whose transfer is analysed.
        algorithm: AlgorithmKind,
        /// Channel budget.
        max_channel: u32,
    },
    /// Print usage.
    Help,
}

/// Fault-injection and recovery overrides, applied on top of whatever the
/// environment (testbed or `--env-file`) already declares.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultArgs {
    /// `--mtbf SECS`: per-channel mean time to failure.
    pub mtbf_s: Option<f64>,
    /// `--outage GAP:DUR[:SERVER]`: recurring outage windows on a server
    /// of the receiving site (mean gap and duration in seconds; server
    /// index defaults to 0).
    pub outage: Option<(f64, f64, usize)>,
    /// `--retry-budget N`: consecutive failures before a channel is parked
    /// for the full cooldown.
    pub retry_budget: Option<u32>,
    /// `--no-restart-markers`: lose in-flight file progress on failure.
    pub no_restart_markers: bool,
    /// `--fault-aware`: wrap the algorithm's controller in the
    /// fault-aware decorator (shed concurrency under quarantine, re-ramp
    /// on recovery).
    pub fault_aware: bool,
}

impl FaultArgs {
    /// Whether any fault-related flag was given.
    pub fn any(&self) -> bool {
        self.mtbf_s.is_some()
            || self.outage.is_some()
            || self.retry_budget.is_some()
            || self.no_restart_markers
    }
}

/// Fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// What to do.
    pub command: Command,
    /// Where to do it.
    pub env: EnvSource,
    /// Dataset scale factor (1.0 = the paper's volumes).
    pub scale: f64,
    /// Path to a dataset manifest (one file size per line); overrides the
    /// testbed's synthetic dataset.
    pub dataset_file: Option<String>,
    /// Dataset seed (and the fleet's root seed).
    pub seed: u64,
    /// Emit a JSON report instead of tables.
    pub json: bool,
    /// Fault-injection overrides.
    pub faults: FaultArgs,
    /// `--no-macro-step`: force the engine through every 100 ms slice
    /// instead of skipping provably-steady stretches. Output is
    /// bit-identical either way; this is the escape hatch for debugging
    /// the horizon computation (and for timing the plain slice loop).
    pub no_macro_step: bool,
    /// `--checkpoint-dir DIR`: crash-safe checkpointing (DESIGN.md §13)
    /// for `transfer` and `fleet` — engine state is persisted under DIR
    /// on the `--checkpoint-every` cadence, and an interrupted invocation
    /// rerun with the same flags resumes from the latest snapshot.
    pub checkpoint_dir: Option<String>,
    /// `--checkpoint-every N`: checkpoint cadence in 100 ms engine slices.
    pub checkpoint_every: u64,
}

/// The usage string printed by `eadt help`.
pub const USAGE: &str = "\
eadt — energy-aware data transfer simulator (SC'15 reproduction)

USAGE:
  eadt <command> [options]

COMMANDS:
  transfer   run one transfer            (--algorithm, --max-channel, --sla-level)
  sweep      algorithms × concurrency    (--algorithms a,b,c --levels 1,2,4)
  fleet      batch runner on worker threads (--workers N [--figures] [--out F])
             deterministic: same --seed → byte-identical report, any N
  serve      multi-tenant continuous service: jobs arrive on a seeded
             process and contend for one shared site pool
             (--tenants N --policy fair|priority --slots N --arrival-gap S)
             deterministic: same --seed → byte-identical report, any N
  sla        SLAEE target sweep          (--targets 95,90,50 --max-channel N)
  dataset    show the dataset and its BDP partitioning
  env        show the environment        (--export FILE writes JSON)
  calibrate  run the power-model calibration of paper §2.2
  netenergy  §4 analysis: end-system vs network split, per-device breakdown
  trace      run one transfer with telemetry on, write the event journal
             (--algorithm, --out FILE, --cadence SECS)
  inspect    render a journal: summary, per-chunk timeline, decision log
             (--journal FILE [--chrome FILE] for Perfetto [--width COLS])
  profile    energy-attribution profile: joules by phase and component
             (--algorithm … for one run, or --from FLEET.json for a fleet)
  help       this text

OPTIONS:
  --testbed NAME     xsede | futuregrid | didclab        [default: xsede]
  --env-file FILE    load a custom JSON environment instead of a testbed
  --dataset-file F   one file size per line (3MB, 2.5GB, …) instead of the
                     synthetic paper dataset
  --scale F          dataset volume scale                [default: 0.1]
  --seed N           dataset seed / fleet root seed      [default: 42]
  --algorithm NAME   mine|htee|slaee|guc|go|sc|promc|bf  [default: htee]
  --algorithms A,B   for `sweep`/`fleet`                 [default: sc,mine,promc,htee]
  --levels L1,L2     for `sweep`/`fleet`                 [default: 1,2,4,8]
  --targets T1,T2    for `sla`                           [default: 95,90,80,70,50]
  --max-channel N    channel budget                      [default: 8]
  --sla-level F      SLAEE target fraction               [default: 0.9]
  --csv FILE         (transfer) write per-slice series as CSV
  --pipelining N     (transfer --algorithm manual) command queue depth
  --parallelism N    (transfer --algorithm manual) streams per channel
  --workers N        (fleet, serve) worker threads     [default: all cores]
  --jobs N           (serve) total jobs to submit      [default: one per algorithm]
  --tenants N        (serve) tenants, round-robin over jobs; the tenant
                     index is also the job's priority  [default: 2]
  --arrival-gap S    (serve) mean inter-arrival gap, simulated seconds
                     (0 = everything arrives at once)  [default: 0]
  --policy NAME      (serve) fair | priority           [default: fair]
  --slots N          (serve) core slots of the shared site [default: 2]
  --quantum N        (serve) scheduling quantum, 100 ms slices [default: 600]
  --figures          (fleet) run the full 3-testbed figures matrix
  --out FILE         (trace) journal path [default: trace.jsonl]
                     (fleet, serve) write the merged report JSON here
  --cadence SECS     (trace, fleet --metrics-out) gauge sampling cadence
                                                       [default: 1]
  --journal FILE     (inspect) journal to render
                     (serve) write the service event journal here
  --chrome FILE      (inspect) also export Chrome trace_event JSON
  --width COLS       (inspect, profile) render width   [default: 72]
  --from FILE        (profile) read a saved fleet report instead of running
  --metrics-out FILE (fleet) write the metrics rollup as Prometheus text
                     exposition (turns per-job metrics collection on)
  --json             machine-readable output
  --no-macro-step    execute every 100 ms slice instead of macro-stepping
                     steady stretches (same output, slower; for debugging
                     and timing the plain slice loop)

CRASH SAFETY (transfer, fleet and serve):
  --checkpoint-dir D   persist engine checkpoints under D; a rerun with the
                       same flags resumes from the latest snapshot, and the
                       result is byte-identical to an uninterrupted run
  --checkpoint-every N checkpoint cadence: 100 ms slices for transfer and
                       fleet, scheduling rounds for serve   [default: 600]
  --resume             (fleet, serve) complete an interrupted run from
                       --checkpoint-dir: finished jobs are re-admitted from
                       their saved outcomes, half-done jobs resume from
                       their checkpoints, the rest run fresh

FAULT INJECTION (composes with whatever the environment declares):
  --mtbf SECS          per-channel mean time to failure
  --outage G:D[:S]     outage windows on dst server S (default 0): mean gap
                       G seconds, duration D seconds
  --retry-budget N     consecutive failures before the full cooldown
  --no-restart-markers lose in-flight file progress on failure
  --fault-aware        shed concurrency while servers are quarantined,
                       re-ramp on recovery
";

impl Cli {
    /// Parses `argv` (program name excluded).
    pub fn parse(argv: &[String]) -> Result<Cli, EadtError> {
        let mut it = argv.iter().peekable();
        let cmd_word = it.next().map(String::as_str).unwrap_or("help");

        let mut testbed: Option<String> = None;
        let mut env_file: Option<String> = None;
        let mut scale = 0.1f64;
        let mut seed = 42u64;
        let mut json = false;
        let mut algorithm = AlgorithmKind::Htee;
        let mut algorithms = vec![
            AlgorithmKind::Sc,
            AlgorithmKind::MinE,
            AlgorithmKind::ProMc,
            AlgorithmKind::Htee,
        ];
        let mut levels = vec![1u32, 2, 4, 8];
        let mut targets = vec![95u32, 90, 80, 70, 50];
        let mut max_channel = 8u32;
        let mut sla_level = 0.9f64;
        let mut export: Option<String> = None;
        let mut csv: Option<String> = None;
        let mut pipelining = 1u32;
        let mut parallelism = 1u32;
        let mut dataset_file: Option<String> = None;
        let mut faults = FaultArgs::default();
        let mut out_file: Option<String> = None;
        let mut cadence_s = 1.0f64;
        let mut journal: Option<String> = None;
        let mut chrome: Option<String> = None;
        let mut workers = 0usize;
        let mut figures = false;
        let mut width = 72usize;
        let mut from: Option<String> = None;
        let mut metrics_out: Option<String> = None;
        let mut no_macro_step = false;
        let mut checkpoint_dir: Option<String> = None;
        let mut checkpoint_every = 600u64;
        let mut resume = false;
        let mut jobs = 0usize;
        let mut tenants = 2u32;
        let mut arrival_gap_s = 0.0f64;
        let mut policy = ArbitrationPolicy::FairShare;
        let mut slots = 2u32;
        let mut quantum = 600u64;

        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<&String, EadtError> {
                it.next()
                    .ok_or_else(|| EadtError::invalid_argument(name, "requires a value"))
            };
            match flag.as_str() {
                "--testbed" => testbed = Some(value("--testbed")?.clone()),
                "--env-file" => env_file = Some(value("--env-file")?.clone()),
                "--scale" => scale = parse_num(value("--scale")?, "--scale")?,
                "--seed" => seed = parse_num(value("--seed")?, "--seed")?,
                "--json" => json = true,
                "--algorithm" => algorithm = AlgorithmKind::parse(value("--algorithm")?)?,
                "--algorithms" => {
                    algorithms = value("--algorithms")?
                        .split(',')
                        .map(AlgorithmKind::parse)
                        .collect::<Result<_, _>>()?;
                }
                "--levels" => levels = parse_list(value("--levels")?, "--levels")?,
                "--targets" => targets = parse_list(value("--targets")?, "--targets")?,
                "--max-channel" => {
                    max_channel = parse_num(value("--max-channel")?, "--max-channel")?
                }
                "--sla-level" => sla_level = parse_num(value("--sla-level")?, "--sla-level")?,
                "--export" => export = Some(value("--export")?.clone()),
                "--csv" => csv = Some(value("--csv")?.clone()),
                "--dataset-file" => dataset_file = Some(value("--dataset-file")?.clone()),
                "--pipelining" => pipelining = parse_num(value("--pipelining")?, "--pipelining")?,
                "--parallelism" => {
                    parallelism = parse_num(value("--parallelism")?, "--parallelism")?
                }
                "--mtbf" => faults.mtbf_s = Some(parse_num(value("--mtbf")?, "--mtbf")?),
                "--outage" => faults.outage = Some(parse_outage(value("--outage")?)?),
                "--retry-budget" => {
                    faults.retry_budget =
                        Some(parse_num(value("--retry-budget")?, "--retry-budget")?)
                }
                "--no-restart-markers" => faults.no_restart_markers = true,
                "--fault-aware" => faults.fault_aware = true,
                "--out" => out_file = Some(value("--out")?.clone()),
                "--cadence" => cadence_s = parse_num(value("--cadence")?, "--cadence")?,
                "--journal" => journal = Some(value("--journal")?.clone()),
                "--chrome" => chrome = Some(value("--chrome")?.clone()),
                "--workers" => workers = parse_num(value("--workers")?, "--workers")?,
                "--figures" => figures = true,
                "--width" => width = parse_num(value("--width")?, "--width")?,
                "--from" => from = Some(value("--from")?.clone()),
                "--metrics-out" => metrics_out = Some(value("--metrics-out")?.clone()),
                "--no-macro-step" => no_macro_step = true,
                "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")?.clone()),
                "--checkpoint-every" => {
                    checkpoint_every =
                        parse_num(value("--checkpoint-every")?, "--checkpoint-every")?
                }
                "--resume" => resume = true,
                "--jobs" => jobs = parse_num(value("--jobs")?, "--jobs")?,
                "--tenants" => tenants = parse_num(value("--tenants")?, "--tenants")?,
                "--arrival-gap" => {
                    arrival_gap_s = parse_num(value("--arrival-gap")?, "--arrival-gap")?
                }
                "--policy" => {
                    policy = ArbitrationPolicy::parse(value("--policy")?)
                        .map_err(|e| EadtError::invalid_argument("--policy", e))?
                }
                "--slots" => slots = parse_num(value("--slots")?, "--slots")?,
                "--quantum" => quantum = parse_num(value("--quantum")?, "--quantum")?,
                other => {
                    return Err(EadtError::invalid_argument(
                        other,
                        "unknown option (try `eadt help`)",
                    ))
                }
            }
        }

        if testbed.is_some() && env_file.is_some() {
            return Err(EadtError::invalid_argument(
                "--env-file",
                "--testbed and --env-file are mutually exclusive",
            ));
        }
        let env = match env_file {
            Some(f) => EnvSource::File(f),
            None => EnvSource::Testbed(testbed.unwrap_or_else(|| "xsede".into())),
        };
        if scale.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(EadtError::invalid_argument("--scale", "must be positive"));
        }
        if let Some(m) = faults.mtbf_s {
            if m.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return Err(EadtError::invalid_argument("--mtbf", "must be positive"));
            }
        }
        if checkpoint_every == 0 {
            return Err(EadtError::invalid_argument(
                "--checkpoint-every",
                "must be at least 1 slice",
            ));
        }
        if resume && checkpoint_dir.is_none() {
            return Err(EadtError::invalid_argument(
                "--resume",
                "requires --checkpoint-dir",
            ));
        }

        let command = match cmd_word {
            "transfer" => Command::Transfer {
                algorithm,
                max_channel,
                sla_level,
                csv,
                pipelining,
                parallelism,
            },
            "sweep" => {
                if algorithms.is_empty() || levels.is_empty() {
                    return Err(EadtError::invalid_argument(
                        "sweep",
                        "needs at least one algorithm and one level",
                    ));
                }
                Command::Sweep { algorithms, levels }
            }
            "fleet" => {
                if !figures && (algorithms.is_empty() || levels.is_empty()) {
                    return Err(EadtError::invalid_argument(
                        "fleet",
                        "needs at least one algorithm and one level (or --figures)",
                    ));
                }
                if cadence_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(EadtError::invalid_argument("--cadence", "must be positive"));
                }
                Command::Fleet {
                    algorithms,
                    levels,
                    workers,
                    figures,
                    out: out_file,
                    resume,
                    metrics_out,
                    cadence_s,
                }
            }
            "serve" => {
                if algorithms.is_empty() {
                    return Err(EadtError::invalid_argument(
                        "serve",
                        "needs at least one algorithm",
                    ));
                }
                if tenants == 0 {
                    return Err(EadtError::invalid_argument(
                        "--tenants",
                        "must be at least 1",
                    ));
                }
                if slots == 0 {
                    return Err(EadtError::invalid_argument("--slots", "must be at least 1"));
                }
                if quantum == 0 {
                    return Err(EadtError::invalid_argument(
                        "--quantum",
                        "must be at least 1 slice",
                    ));
                }
                if !(arrival_gap_s >= 0.0 && arrival_gap_s.is_finite()) {
                    return Err(EadtError::invalid_argument(
                        "--arrival-gap",
                        "must be a finite non-negative number of seconds",
                    ));
                }
                Command::Serve {
                    algorithms,
                    jobs,
                    tenants,
                    arrival_gap_s,
                    policy,
                    slots,
                    quantum,
                    max_channel,
                    workers,
                    out: out_file,
                    journal,
                    resume,
                }
            }
            "sla" => {
                if targets.is_empty() {
                    return Err(EadtError::invalid_argument(
                        "sla",
                        "needs at least one target",
                    ));
                }
                Command::Sla {
                    targets,
                    max_channel,
                }
            }
            "dataset" => Command::Dataset,
            "env" => Command::Env { export },
            "calibrate" => Command::Calibrate,
            "trace" => {
                if cadence_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                    return Err(EadtError::invalid_argument("--cadence", "must be positive"));
                }
                Command::Trace {
                    algorithm,
                    max_channel,
                    sla_level,
                    pipelining,
                    parallelism,
                    out: out_file.unwrap_or_else(|| String::from("trace.jsonl")),
                    cadence_s,
                }
            }
            "inspect" => {
                if width < 20 {
                    return Err(EadtError::invalid_argument(
                        "--width",
                        "must be at least 20 columns",
                    ));
                }
                Command::Inspect {
                    journal: journal.ok_or_else(|| {
                        EadtError::invalid_argument("inspect", "requires --journal FILE")
                    })?,
                    chrome,
                    width,
                }
            }
            "profile" => {
                if width < 20 {
                    return Err(EadtError::invalid_argument(
                        "--width",
                        "must be at least 20 columns",
                    ));
                }
                Command::Profile {
                    algorithm,
                    max_channel,
                    sla_level,
                    pipelining,
                    parallelism,
                    from,
                    width,
                }
            }
            "netenergy" | "net-energy" => Command::NetEnergy {
                algorithm,
                max_channel,
            },
            "help" | "--help" | "-h" => Command::Help,
            other => {
                return Err(EadtError::invalid_argument(
                    other,
                    "unknown command (try `eadt help`)",
                ))
            }
        };

        Ok(Cli {
            command,
            env,
            scale,
            seed,
            json,
            dataset_file,
            faults,
            no_macro_step,
            checkpoint_dir,
            checkpoint_every,
        })
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, EadtError> {
    s.parse()
        .map_err(|_| EadtError::invalid_argument(flag, format!("cannot parse '{s}'")))
}

/// Parses `GAP:DUR[:SERVER]` (seconds, seconds, dst-server index).
fn parse_outage(s: &str) -> Result<(f64, f64, usize), EadtError> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() < 2 || parts.len() > 3 {
        return Err(EadtError::invalid_argument(
            "--outage",
            format!("expected GAP:DUR[:SERVER], got '{s}'"),
        ));
    }
    let gap: f64 = parse_num(parts[0], "--outage gap")?;
    let dur: f64 = parse_num(parts[1], "--outage duration")?;
    if gap <= 0.0 || dur <= 0.0 {
        return Err(EadtError::invalid_argument(
            "--outage",
            "gap and duration must be positive",
        ));
    }
    let server: usize = match parts.get(2) {
        Some(p) => parse_num(p, "--outage server")?,
        None => 0,
    };
    Ok((gap, dur, server))
}

fn parse_list(s: &str, flag: &str) -> Result<Vec<u32>, EadtError> {
    s.split(',').map(|p| parse_num(p.trim(), flag)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_sim::ErrorKind;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn default_invocation_is_help() {
        let cli = Cli::parse(&[]).unwrap();
        assert_eq!(cli.command, Command::Help);
        assert_eq!(cli.env, EnvSource::Testbed("xsede".into()));
    }

    #[test]
    fn transfer_with_options() {
        let cli = Cli::parse(&argv(
            "transfer --testbed didclab --algorithm mine --max-channel 12 --scale 0.5 --seed 7 --json",
        ))
        .unwrap();
        assert_eq!(cli.env, EnvSource::Testbed("didclab".into()));
        assert_eq!(cli.scale, 0.5);
        assert_eq!(cli.seed, 7);
        assert!(cli.json);
        match cli.command {
            Command::Transfer {
                algorithm,
                max_channel,
                csv,
                pipelining,
                parallelism,
                ..
            } => {
                assert_eq!(algorithm, AlgorithmKind::MinE);
                assert_eq!(max_channel, 12);
                assert_eq!(csv, None);
                assert_eq!((pipelining, parallelism), (1, 1));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn sweep_parses_lists() {
        let cli = Cli::parse(&argv("sweep --algorithms sc,promc --levels 1,4,8")).unwrap();
        match cli.command {
            Command::Sweep { algorithms, levels } => {
                assert_eq!(algorithms, vec![AlgorithmKind::Sc, AlgorithmKind::ProMc]);
                assert_eq!(levels, vec![1, 4, 8]);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn fleet_parses_workers_and_figures() {
        let cli = Cli::parse(&argv(
            "fleet --algorithms sc,promc --levels 1,4 --workers 4 --out /tmp/fleet.json",
        ))
        .unwrap();
        match cli.command {
            Command::Fleet {
                algorithms,
                levels,
                workers,
                figures,
                out,
                resume,
                metrics_out,
                cadence_s,
            } => {
                assert_eq!(algorithms, vec![AlgorithmKind::Sc, AlgorithmKind::ProMc]);
                assert_eq!(levels, vec![1, 4]);
                assert_eq!(workers, 4);
                assert!(!figures);
                assert!(!resume);
                assert_eq!(out.as_deref(), Some("/tmp/fleet.json"));
                assert_eq!(metrics_out, None);
                assert_eq!(cadence_s, 1.0);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv("fleet --figures --workers 2")).unwrap();
        match cli.command {
            Command::Fleet {
                figures, workers, ..
            } => {
                assert!(figures);
                assert_eq!(workers, 2);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn serve_parses_service_flags() {
        let cli = Cli::parse(&argv(
            "serve --algorithms sc,promc --tenants 3 --arrival-gap 20 --policy priority \
             --slots 1 --quantum 300 --workers 2 --out /tmp/s.json --journal /tmp/s.jsonl",
        ))
        .unwrap();
        match cli.command {
            Command::Serve {
                algorithms,
                jobs,
                tenants,
                arrival_gap_s,
                policy,
                slots,
                quantum,
                workers,
                out,
                journal,
                resume,
                ..
            } => {
                assert_eq!(algorithms, vec![AlgorithmKind::Sc, AlgorithmKind::ProMc]);
                assert_eq!(jobs, 0, "0 = one job per algorithm");
                assert_eq!(tenants, 3);
                assert_eq!(arrival_gap_s, 20.0);
                assert_eq!(policy, ArbitrationPolicy::StrictPriority);
                assert_eq!(slots, 1);
                assert_eq!(quantum, 300);
                assert_eq!(workers, 2);
                assert_eq!(out.as_deref(), Some("/tmp/s.json"));
                assert_eq!(journal.as_deref(), Some("/tmp/s.jsonl"));
                assert!(!resume);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Defaults: fair policy, 2 tenants, 2 slots, immediate arrivals.
        let cli = Cli::parse(&argv("serve")).unwrap();
        match cli.command {
            Command::Serve {
                tenants,
                policy,
                slots,
                quantum,
                arrival_gap_s,
                ..
            } => {
                assert_eq!(tenants, 2);
                assert_eq!(policy, ArbitrationPolicy::FairShare);
                assert_eq!(slots, 2);
                assert_eq!(quantum, 600);
                assert_eq!(arrival_gap_s, 0.0);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(Cli::parse(&argv("serve --policy bogus")).is_err());
        assert!(Cli::parse(&argv("serve --tenants 0")).is_err());
        assert!(Cli::parse(&argv("serve --slots 0")).is_err());
        assert!(Cli::parse(&argv("serve --quantum 0")).is_err());
        assert!(Cli::parse(&argv("serve --arrival-gap -2")).is_err());
        assert!(Cli::parse(&argv("serve --resume")).is_err());
        // Both policy spellings from the pool module parse.
        for name in ["fair", "fair-share", "priority", "strict-priority"] {
            assert!(
                Cli::parse(&argv(&format!("serve --policy {name}"))).is_ok(),
                "{name}"
            );
        }
    }

    #[test]
    fn sla_targets() {
        let cli = Cli::parse(&argv("sla --targets 90,50 --max-channel 6")).unwrap();
        assert_eq!(
            cli.command,
            Command::Sla {
                targets: vec![90, 50],
                max_channel: 6
            }
        );
    }

    #[test]
    fn env_export() {
        let cli = Cli::parse(&argv("env --export /tmp/x.json")).unwrap();
        assert_eq!(
            cli.command,
            Command::Env {
                export: Some("/tmp/x.json".into())
            }
        );
    }

    #[test]
    fn env_file_source() {
        let cli = Cli::parse(&argv("dataset --env-file custom.json")).unwrap();
        assert_eq!(cli.env, EnvSource::File("custom.json".into()));
    }

    #[test]
    fn rejects_unknown_bits() {
        assert!(Cli::parse(&argv("frobnicate")).is_err());
        assert!(Cli::parse(&argv("transfer --bogus 1")).is_err());
        assert!(Cli::parse(&argv("transfer --algorithm nope")).is_err());
        assert!(Cli::parse(&argv("transfer --scale -1")).is_err());
        assert!(Cli::parse(&argv("transfer --scale")).is_err());
        assert!(Cli::parse(&argv("transfer --testbed a --env-file b")).is_err());
        assert!(Cli::parse(&argv("sweep --levels x")).is_err());
    }

    #[test]
    fn parse_errors_are_typed() {
        let err = Cli::parse(&argv("transfer --scale -1")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidArgument);
        let err = Cli::parse(&argv("transfer --algorithm nope")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidArgument);
        let err = Cli::parse(&argv("frobnicate")).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidArgument);
    }

    #[test]
    fn netenergy_command_parses() {
        let cli = Cli::parse(&argv("netenergy --algorithm promc --max-channel 4")).unwrap();
        assert_eq!(
            cli.command,
            Command::NetEnergy {
                algorithm: AlgorithmKind::ProMc,
                max_channel: 4
            }
        );
    }

    #[test]
    fn manual_transfer_parses_params() {
        let cli = Cli::parse(&argv(
            "transfer --algorithm manual --pipelining 8 --parallelism 4 --max-channel 2",
        ))
        .unwrap();
        match cli.command {
            Command::Transfer {
                algorithm,
                pipelining,
                parallelism,
                max_channel,
                ..
            } => {
                assert_eq!(algorithm, AlgorithmKind::Manual);
                assert_eq!((pipelining, parallelism, max_channel), (8, 4, 2));
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn fault_flags_round_trip() {
        let cli = Cli::parse(&argv(
            "transfer --mtbf 30 --outage 40:10:1 --retry-budget 4 --no-restart-markers --fault-aware",
        ))
        .unwrap();
        assert_eq!(cli.faults.mtbf_s, Some(30.0));
        assert_eq!(cli.faults.outage, Some((40.0, 10.0, 1)));
        assert_eq!(cli.faults.retry_budget, Some(4));
        assert!(cli.faults.no_restart_markers);
        assert!(cli.faults.fault_aware);
        assert!(cli.faults.any());
        // Server index defaults to 0 when omitted.
        let cli = Cli::parse(&argv("transfer --outage 20:5")).unwrap();
        assert_eq!(cli.faults.outage, Some((20.0, 5.0, 0)));
        // No flags → no overrides.
        let cli = Cli::parse(&argv("transfer")).unwrap();
        assert_eq!(cli.faults, FaultArgs::default());
        assert!(!cli.faults.any());
    }

    #[test]
    fn bad_fault_flags_are_rejected() {
        assert!(Cli::parse(&argv("transfer --mtbf 0")).is_err());
        assert!(Cli::parse(&argv("transfer --mtbf -3")).is_err());
        assert!(Cli::parse(&argv("transfer --mtbf")).is_err());
        assert!(Cli::parse(&argv("transfer --outage 10")).is_err());
        assert!(Cli::parse(&argv("transfer --outage 10:0")).is_err());
        assert!(Cli::parse(&argv("transfer --outage a:b")).is_err());
        assert!(Cli::parse(&argv("transfer --outage 1:2:3:4")).is_err());
        assert!(Cli::parse(&argv("transfer --retry-budget x")).is_err());
    }

    #[test]
    fn trace_and_inspect_parse() {
        let cli = Cli::parse(&argv(
            "trace --testbed didclab --algorithm htee --out /tmp/j.jsonl --cadence 0.5",
        ))
        .unwrap();
        match cli.command {
            Command::Trace {
                algorithm,
                out,
                cadence_s,
                ..
            } => {
                assert_eq!(algorithm, AlgorithmKind::Htee);
                assert_eq!(out, "/tmp/j.jsonl");
                assert_eq!(cadence_s, 0.5);
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Default journal path, default cadence.
        let cli = Cli::parse(&argv("trace")).unwrap();
        match cli.command {
            Command::Trace { out, cadence_s, .. } => {
                assert_eq!(out, "trace.jsonl");
                assert_eq!(cadence_s, 1.0);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv("inspect --journal j.jsonl --chrome t.json")).unwrap();
        assert_eq!(
            cli.command,
            Command::Inspect {
                journal: "j.jsonl".into(),
                chrome: Some("t.json".into()),
                width: 72,
            }
        );
        // inspect needs an input; trace needs a positive cadence.
        assert!(Cli::parse(&argv("inspect")).is_err());
        assert!(Cli::parse(&argv("trace --cadence 0")).is_err());
        assert!(Cli::parse(&argv("trace --cadence -2")).is_err());
    }

    #[test]
    fn inspect_width_is_tunable_with_a_floor() {
        let cli = Cli::parse(&argv("inspect --journal j.jsonl --width 120")).unwrap();
        match cli.command {
            Command::Inspect { width, .. } => assert_eq!(width, 120),
            other => panic!("wrong command: {other:?}"),
        }
        // Below the floor the timeline would degenerate to pure labels.
        assert!(Cli::parse(&argv("inspect --journal j.jsonl --width 19")).is_err());
        assert!(Cli::parse(&argv("inspect --journal j.jsonl --width nope")).is_err());
    }

    #[test]
    fn profile_parses_run_and_from_forms() {
        let cli = Cli::parse(&argv("profile --algorithm htee --max-channel 6")).unwrap();
        match cli.command {
            Command::Profile {
                algorithm,
                max_channel,
                from,
                width,
                ..
            } => {
                assert_eq!(algorithm, AlgorithmKind::Htee);
                assert_eq!(max_channel, 6);
                assert_eq!(from, None);
                assert_eq!(width, 72);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let cli = Cli::parse(&argv("profile --from fleet.json --width 100")).unwrap();
        match cli.command {
            Command::Profile { from, width, .. } => {
                assert_eq!(from.as_deref(), Some("fleet.json"));
                assert_eq!(width, 100);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("profile --width 10")).is_err());
    }

    #[test]
    fn fleet_metrics_out_parses_and_validates_cadence() {
        let cli = Cli::parse(&argv(
            "fleet --figures --metrics-out /tmp/m.prom --cadence 0.5",
        ))
        .unwrap();
        match cli.command {
            Command::Fleet {
                metrics_out,
                cadence_s,
                ..
            } => {
                assert_eq!(metrics_out.as_deref(), Some("/tmp/m.prom"));
                assert_eq!(cadence_s, 0.5);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("fleet --figures --metrics-out m.prom --cadence 0")).is_err());
    }

    #[test]
    fn checkpoint_flags_parse() {
        let cli = Cli::parse(&argv(
            "transfer --checkpoint-dir /tmp/ck --checkpoint-every 50",
        ))
        .unwrap();
        assert_eq!(cli.checkpoint_dir.as_deref(), Some("/tmp/ck"));
        assert_eq!(cli.checkpoint_every, 50);
        // Defaults: no directory, 600-slice cadence.
        let cli = Cli::parse(&argv("transfer")).unwrap();
        assert_eq!(cli.checkpoint_dir, None);
        assert_eq!(cli.checkpoint_every, 600);
        // Fleet resume round-trips and requires the directory.
        let cli = Cli::parse(&argv("fleet --checkpoint-dir /tmp/ck --resume")).unwrap();
        match cli.command {
            Command::Fleet { resume, .. } => assert!(resume),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(Cli::parse(&argv("fleet --resume")).is_err());
        assert!(Cli::parse(&argv("transfer --checkpoint-every 0")).is_err());
        assert!(Cli::parse(&argv("transfer --checkpoint-dir")).is_err());
    }

    #[test]
    fn no_macro_step_flag_parses() {
        let cli = Cli::parse(&argv("transfer --no-macro-step")).unwrap();
        assert!(cli.no_macro_step);
        let cli = Cli::parse(&argv("trace --no-macro-step --out /tmp/j.jsonl")).unwrap();
        assert!(cli.no_macro_step);
        let cli = Cli::parse(&argv("transfer")).unwrap();
        assert!(!cli.no_macro_step);
    }

    #[test]
    fn algorithm_names_round_trip() {
        for name in [
            "mine", "htee", "slaee", "guc", "go", "sc", "promc", "bf", "manual",
        ] {
            let kind = AlgorithmKind::parse(name).unwrap();
            assert!(AlgorithmKind::parse(&kind.name().to_ascii_lowercase()).is_ok());
        }
    }
}
