//! The workspace-wide error type.
//!
//! Every layer above the kernel used to report failures as bare `String`s
//! (CLI argument parsing, environment/dataset loading, retry exhaustion),
//! which forced callers to match on message text. [`EadtError`] replaces
//! those paths with one typed enum so batch runners can *classify* job
//! failures — retry budget exhausted vs. simulation-time guard vs. a bad
//! spec — without string inspection. [`ErrorKind`] is the coarse,
//! `Copy` classification used for aggregate counts.

use std::fmt;

/// A typed failure from any layer of the EADT workspace.
///
/// The enum is `#[non_exhaustive]`: new failure classes may be added
/// without a breaking release, so downstream matches need a `_` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EadtError {
    /// A malformed command-line flag, builder field, or job-spec value.
    InvalidArgument {
        /// The flag or field at fault (e.g. `--max-channel`).
        what: String,
        /// Human-readable detail.
        message: String,
    },
    /// An environment (named testbed or `--env-file`) failed to load or
    /// validate.
    Environment {
        /// The testbed name or file path the environment came from.
        source: String,
        /// Human-readable detail.
        message: String,
    },
    /// A dataset manifest failed to load, parse, or validate.
    Dataset {
        /// The manifest path or generator spec at fault.
        source: String,
        /// Human-readable detail.
        message: String,
    },
    /// A filesystem or serialization failure.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, stringified.
        message: String,
    },
    /// The transfer hit the simulated-time guard before moving every byte,
    /// without exhausting any retry budget: the plan was simply too slow.
    Incomplete {
        /// Bytes actually delivered.
        moved_bytes: u64,
        /// Bytes requested.
        requested_bytes: u64,
    },
    /// The transfer kept faulting until a retry budget ran dry.
    RetryExhausted {
        /// How many chunks/channels ran out of retry budget.
        exhaustions: u64,
        /// Total fault count observed before giving up.
        failures: u64,
    },
    /// A fleet job failed outside the simulation proper (e.g. a worker
    /// caught a panic while executing it).
    JobFailed {
        /// The job label.
        job: String,
        /// Human-readable detail.
        message: String,
    },
}

/// Coarse classification of an [`EadtError`], suitable for aggregate
/// counting in batch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Bad flag, field, or spec value.
    InvalidArgument,
    /// Environment failed to load or validate.
    Environment,
    /// Dataset failed to load or validate.
    Dataset,
    /// Filesystem or serialization failure.
    Io,
    /// Simulated-time guard hit before completion.
    Incomplete,
    /// Retry budget exhausted.
    RetryExhausted,
    /// Job-level failure (e.g. worker panic).
    JobFailed,
}

impl ErrorKind {
    /// Stable lowercase name used in JSON aggregates and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::InvalidArgument => "invalid-argument",
            ErrorKind::Environment => "environment",
            ErrorKind::Dataset => "dataset",
            ErrorKind::Io => "io",
            ErrorKind::Incomplete => "incomplete",
            ErrorKind::RetryExhausted => "retry-exhausted",
            ErrorKind::JobFailed => "job-failed",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl EadtError {
    /// Builds an [`EadtError::InvalidArgument`].
    pub fn invalid_argument(what: impl Into<String>, message: impl Into<String>) -> Self {
        EadtError::InvalidArgument {
            what: what.into(),
            message: message.into(),
        }
    }

    /// Builds an [`EadtError::Environment`].
    pub fn environment(source: impl Into<String>, message: impl Into<String>) -> Self {
        EadtError::Environment {
            source: source.into(),
            message: message.into(),
        }
    }

    /// Builds an [`EadtError::Dataset`].
    pub fn dataset(source: impl Into<String>, message: impl Into<String>) -> Self {
        EadtError::Dataset {
            source: source.into(),
            message: message.into(),
        }
    }

    /// Builds an [`EadtError::Io`].
    pub fn io(path: impl Into<String>, message: impl Into<String>) -> Self {
        EadtError::Io {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Builds an [`EadtError::JobFailed`].
    pub fn job_failed(job: impl Into<String>, message: impl Into<String>) -> Self {
        EadtError::JobFailed {
            job: job.into(),
            message: message.into(),
        }
    }

    /// The coarse classification of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            EadtError::InvalidArgument { .. } => ErrorKind::InvalidArgument,
            EadtError::Environment { .. } => ErrorKind::Environment,
            EadtError::Dataset { .. } => ErrorKind::Dataset,
            EadtError::Io { .. } => ErrorKind::Io,
            EadtError::Incomplete { .. } => ErrorKind::Incomplete,
            EadtError::RetryExhausted { .. } => ErrorKind::RetryExhausted,
            EadtError::JobFailed { .. } => ErrorKind::JobFailed,
        }
    }

    /// Whether re-running the same job (e.g. with a larger budget or a
    /// longer time guard) could plausibly succeed. Spec-level errors are
    /// permanent; simulation-outcome errors are not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.kind(),
            ErrorKind::Incomplete | ErrorKind::RetryExhausted | ErrorKind::JobFailed
        )
    }
}

impl fmt::Display for EadtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EadtError::InvalidArgument { what, message } => {
                write!(f, "invalid argument {what}: {message}")
            }
            EadtError::Environment { source, message } => {
                write!(f, "environment {source}: {message}")
            }
            EadtError::Dataset { source, message } => write!(f, "dataset {source}: {message}"),
            EadtError::Io { path, message } => write!(f, "io {path}: {message}"),
            EadtError::Incomplete {
                moved_bytes,
                requested_bytes,
            } => write!(
                f,
                "transfer incomplete: moved {moved_bytes} of {requested_bytes} bytes \
                 before the simulated-time guard"
            ),
            EadtError::RetryExhausted {
                exhaustions,
                failures,
            } => write!(
                f,
                "retry budget exhausted {exhaustions} time(s) after {failures} fault(s)"
            ),
            EadtError::JobFailed { job, message } => write!(f, "job {job} failed: {message}"),
        }
    }
}

impl std::error::Error for EadtError {}

impl From<EadtError> for std::io::Error {
    fn from(err: EadtError) -> Self {
        std::io::Error::other(err.to_string())
    }
}

impl From<std::io::Error> for EadtError {
    fn from(err: std::io::Error) -> Self {
        EadtError::Io {
            path: "<stream>".into(),
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification_is_stable() {
        let cases: Vec<(EadtError, ErrorKind)> = vec![
            (
                EadtError::invalid_argument("--n", "x"),
                ErrorKind::InvalidArgument,
            ),
            (EadtError::environment("xsede", "x"), ErrorKind::Environment),
            (EadtError::dataset("d.json", "x"), ErrorKind::Dataset),
            (EadtError::io("out.json", "x"), ErrorKind::Io),
            (
                EadtError::Incomplete {
                    moved_bytes: 1,
                    requested_bytes: 2,
                },
                ErrorKind::Incomplete,
            ),
            (
                EadtError::RetryExhausted {
                    exhaustions: 1,
                    failures: 3,
                },
                ErrorKind::RetryExhausted,
            ),
            (EadtError::job_failed("j", "x"), ErrorKind::JobFailed),
        ];
        for (err, kind) in cases {
            assert_eq!(err.kind(), kind);
            assert!(!err.to_string().is_empty());
            assert!(!kind.as_str().is_empty());
        }
    }

    #[test]
    fn retryability_tracks_outcome_vs_spec() {
        assert!(!EadtError::invalid_argument("--x", "bad").is_retryable());
        assert!(EadtError::RetryExhausted {
            exhaustions: 1,
            failures: 1
        }
        .is_retryable());
        assert!(EadtError::Incomplete {
            moved_bytes: 0,
            requested_bytes: 1
        }
        .is_retryable());
    }
}
