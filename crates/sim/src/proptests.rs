//! Property-based tests over the kernel's core data structures.

use crate::stats::{mape, LinearFit, MultiLinearFit};
use crate::time::{SimDuration, SimTime};
use crate::units::{Bytes, Rate};
use crate::{SimRng, TimeSeries};
use proptest::prelude::*;

proptest! {
    #[test]
    fn time_addition_is_monotone(base in 0u64..1_000_000_000, add in 0u64..1_000_000_000) {
        let t = SimTime::from_micros(base);
        let t2 = t + SimDuration::from_micros(add);
        prop_assert!(t2 >= t);
        prop_assert_eq!(t2.since(t).as_micros(), add);
    }

    #[test]
    fn duration_sub_saturates(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let d = SimDuration::from_micros(a) - SimDuration::from_micros(b);
        prop_assert_eq!(d.as_micros(), a.saturating_sub(b));
    }

    #[test]
    fn bytes_time_rate_roundtrip(mb in 1u64..10_000, mbps in 1u64..100_000) {
        let size = Bytes::from_mb(mb);
        let rate = Rate::from_mbps(mbps as f64);
        let t = size.time_at(rate);
        let back = rate.bytes_in(t);
        // Rounding to whole microseconds loses at most one rate-quantum.
        let loss = size.as_f64() - back.as_f64();
        prop_assert!(loss.abs() <= rate.as_bps() / 8.0 * 2e-6 + 1.0,
            "loss {} for {} at {}", loss, size, rate);
    }

    #[test]
    fn series_integral_of_nonnegative_is_nonnegative(values in prop::collection::vec(0.0f64..1e6, 2..50)) {
        let mut s = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            s.push(SimTime::from_secs_f64(i as f64), *v);
        }
        prop_assert!(s.integrate() >= 0.0);
    }

    #[test]
    fn series_integral_is_additive_over_split(values in prop::collection::vec(0.0f64..1e3, 4..40), cut in 1usize..3) {
        let mut s = TimeSeries::new();
        for (i, v) in values.iter().enumerate() {
            s.push(SimTime::from_secs_f64(i as f64), *v);
        }
        let end = (values.len() - 1) as f64;
        let mid = end * cut as f64 / 3.0;
        let a = s.integrate_between(SimTime::ZERO, SimTime::from_secs_f64(mid));
        let b = s.integrate_between(SimTime::from_secs_f64(mid), SimTime::from_secs_f64(end));
        let whole = s.integrate();
        prop_assert!((a + b - whole).abs() < 1e-6 * whole.max(1.0),
            "{} + {} != {}", a, b, whole);
    }

    #[test]
    fn linear_fit_recovers_any_line(slope in -100.0f64..100.0, intercept in -1000.0f64..1000.0) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
    }

    #[test]
    fn multi_fit_predicts_training_points_of_exact_models(
        c0 in 0.01f64..2.0, c1 in 0.01f64..2.0
    ) {
        let rows: Vec<(Vec<f64>, f64)> = (0..30)
            .map(|i| {
                let x0 = (i % 7) as f64 * 13.0;
                let x1 = ((i * 3) % 11) as f64 * 7.0;
                (vec![x0, x1], c0 * x0 + c1 * x1)
            })
            .collect();
        let fit = MultiLinearFit::fit(&rows, false).unwrap();
        for (x, y) in &rows {
            prop_assert!((fit.predict(x) - y).abs() < 1e-6 * y.abs().max(1.0));
        }
    }

    #[test]
    fn mape_is_nonnegative_and_zero_for_exact(values in prop::collection::vec(1.0f64..1e6, 1..30)) {
        prop_assert_eq!(mape(&values, &values), 0.0);
        let shifted: Vec<f64> = values.iter().map(|v| v * 1.1).collect();
        let e = mape(&values, &shifted);
        prop_assert!((e - 10.0).abs() < 1e-9);
    }

    #[test]
    fn shuffle_preserves_multiset(seed in 0u64..1000, n in 0usize..64) {
        let mut rng = SimRng::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn log_uniform_stays_in_bounds(seed in 0u64..500, lo in 1.0f64..100.0, span in 1.5f64..1000.0) {
        let mut rng = SimRng::new(seed);
        let hi = lo * span;
        for _ in 0..50 {
            let x = rng.log_uniform(lo, hi);
            prop_assert!(x >= lo && x < hi, "{} not in [{}, {})", x, lo, hi);
        }
    }
}
