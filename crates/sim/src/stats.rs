//! Summary statistics and least-squares regression.
//!
//! The paper builds its power models with a "one time model building phase":
//! measure component power at varying load levels, then apply **linear
//! regression** to derive per-component coefficients (§2.2). This module
//! provides that regression machinery: simple OLS for one predictor and
//! multiple OLS (normal equations + Gaussian elimination with partial
//! pivoting) for the four-component fine-grained model.

use serde::{Deserialize, Serialize};

/// Basic summary statistics over a slice of observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean; 0 when empty.
    pub mean: f64,
    /// Population standard deviation; 0 when fewer than two observations.
    pub std_dev: f64,
    /// Minimum value; 0 when empty.
    pub min: f64,
    /// Maximum value; 0 when empty.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `values`.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Summary {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Result of a simple (one predictor) least-squares fit `y ≈ a·x + b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope `a`.
    pub slope: f64,
    /// Intercept `b`.
    pub intercept: f64,
    /// Pearson correlation coefficient `r` (the paper quotes 89.71% CPU/power
    /// correlation).
    pub r: f64,
    /// Coefficient of determination `r²`.
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits `y ≈ slope·x + intercept` by ordinary least squares.
    ///
    /// Returns `None` when fewer than two points are supplied or all `x`
    /// are identical (the slope is then undefined).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
        let n = xs.len().min(ys.len());
        if n < 2 {
            return None;
        }
        let xs = &xs[..n];
        let ys = &ys[..n];
        let nf = n as f64;
        let mx = xs.iter().sum::<f64>() / nf;
        let my = ys.iter().sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for i in 0..n {
            let dx = xs[i] - mx;
            let dy = ys[i] - my;
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
        }
        if sxx <= 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let r = if syy <= 0.0 {
            0.0
        } else {
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        Some(LinearFit {
            slope,
            intercept,
            r,
            r_squared: r * r,
        })
    }

    /// Predicts `y` at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Result of a multiple least-squares fit `y ≈ Σ cᵢ·xᵢ (+ intercept)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiLinearFit {
    /// One coefficient per predictor column.
    pub coefficients: Vec<f64>,
    /// Intercept (0 when fitted without one).
    pub intercept: f64,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl MultiLinearFit {
    /// Fits `y ≈ Σ cᵢ·xᵢ + b` by solving the normal equations.
    ///
    /// `rows` holds one observation per entry: the predictor vector (all the
    /// same length) and the response. When `with_intercept` is false, the
    /// model is forced through the origin — appropriate for power models
    /// where zero utilization of every component should predict zero
    /// *dynamic* power.
    ///
    /// Returns `None` for an empty system, ragged rows, or a singular
    /// normal matrix (e.g. perfectly collinear predictors).
    pub fn fit(rows: &[(Vec<f64>, f64)], with_intercept: bool) -> Option<MultiLinearFit> {
        let m = rows.first()?.0.len();
        if m == 0 || rows.iter().any(|(x, _)| x.len() != m) {
            return None;
        }
        let k = m + usize::from(with_intercept);
        if rows.len() < k {
            return None;
        }
        // Build X^T X (k×k) and X^T y (k), with the intercept as a trailing
        // all-ones column when requested.
        let mut xtx = vec![0.0f64; k * k];
        let mut xty = vec![0.0f64; k];
        let col = |x: &[f64], j: usize| -> f64 {
            if j < m {
                x[j]
            } else {
                1.0
            }
        };
        for (x, y) in rows {
            for i in 0..k {
                let xi = col(x, i);
                xty[i] += xi * *y;
                for j in 0..k {
                    xtx[i * k + j] += xi * col(x, j);
                }
            }
        }
        let solution = solve_linear_system(&mut xtx, &mut xty, k)?;
        let (coefficients, intercept) = if with_intercept {
            (solution[..m].to_vec(), solution[m])
        } else {
            (solution, 0.0)
        };
        // R² on the training data.
        let my = rows.iter().map(|(_, y)| *y).sum::<f64>() / rows.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (x, y) in rows {
            let pred: f64 = coefficients.iter().zip(x).map(|(c, v)| c * v).sum::<f64>() + intercept;
            ss_res += (y - pred).powi(2);
            ss_tot += (y - my).powi(2);
        }
        let r_squared = if ss_tot <= 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(MultiLinearFit {
            coefficients,
            intercept,
            r_squared,
        })
    }

    /// Predicts `y` for the predictor vector `x` (missing trailing
    /// predictors are treated as zero).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.coefficients
            .iter()
            .zip(x)
            .map(|(c, v)| c * v)
            .sum::<f64>()
            + self.intercept
    }
}

/// Solves `A·x = b` in place (A is `n×n`, row-major) by Gaussian elimination
/// with partial pivoting. Returns `None` if the matrix is singular.
fn solve_linear_system(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row * n + col] / a[col * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                a[row * n + j] -= factor * a[col * n + j];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for j in (row + 1)..n {
            acc -= a[row * n + j] * x[j];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

/// Mean absolute percentage error between predictions and observations,
/// skipping observations with zero actual value. This is the error metric
/// behind the paper's "error rate is below 6%" model-accuracy claims.
pub fn mape(actual: &[f64], predicted: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0usize;
    for (a, p) in actual.iter().zip(predicted) {
        if a.abs() > f64::EPSILON {
            acc += ((a - p) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.intercept - 2.0).abs() < 1e-10);
        assert!((fit.r - 1.0).abs() < 1e-10);
        assert!((fit.predict(20.0) - 62.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_rejects_degenerate_input() {
        assert!(LinearFit::fit(&[1.0], &[2.0]).is_none());
        assert!(LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn linear_fit_correlation_sign() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -2.0 * x + 40.0).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!(fit.r < -0.999);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn multi_fit_recovers_coefficients_no_intercept() {
        // y = 0.3 x0 + 0.05 x1 + 0.1 x2, through origin (like Eq. 1).
        let mut rows = Vec::new();
        for i in 0..30 {
            let x0 = (i % 10) as f64 * 10.0;
            let x1 = ((i * 7) % 10) as f64 * 10.0;
            let x2 = ((i * 3) % 10) as f64 * 10.0;
            let y = 0.3 * x0 + 0.05 * x1 + 0.1 * x2;
            rows.push((vec![x0, x1, x2], y));
        }
        let fit = MultiLinearFit::fit(&rows, false).unwrap();
        assert!((fit.coefficients[0] - 0.3).abs() < 1e-8);
        assert!((fit.coefficients[1] - 0.05).abs() < 1e-8);
        assert!((fit.coefficients[2] - 0.1).abs() < 1e-8);
        assert_eq!(fit.intercept, 0.0);
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn multi_fit_recovers_intercept() {
        let mut rows = Vec::new();
        for i in 0..20 {
            let x = i as f64;
            rows.push((vec![x], 2.0 * x + 5.0));
        }
        let fit = MultiLinearFit::fit(&rows, true).unwrap();
        assert!((fit.coefficients[0] - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 5.0).abs() < 1e-9);
        assert!((fit.predict(&[10.0]) - 25.0).abs() < 1e-8);
    }

    #[test]
    fn multi_fit_rejects_collinear_predictors() {
        // x1 = 2·x0 exactly → singular normal matrix.
        let rows: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| (vec![i as f64, 2.0 * i as f64], i as f64))
            .collect();
        assert!(MultiLinearFit::fit(&rows, false).is_none());
    }

    #[test]
    fn multi_fit_rejects_underdetermined_and_ragged() {
        let rows = vec![(vec![1.0, 2.0], 3.0)];
        assert!(MultiLinearFit::fit(&rows, false).is_none());
        let ragged = vec![(vec![1.0], 1.0), (vec![1.0, 2.0], 2.0)];
        assert!(MultiLinearFit::fit(&ragged, false).is_none());
        assert!(MultiLinearFit::fit(&[], false).is_none());
    }

    #[test]
    fn multi_fit_with_noise_stays_close() {
        // Deterministic pseudo-noise; coefficients should be recovered to ~1%.
        let mut rows = Vec::new();
        for i in 0..200 {
            let x0 = (i % 17) as f64 * 6.0;
            let x1 = ((i * 5) % 13) as f64 * 8.0;
            let noise = (((i * 2654435761u64) % 1000) as f64 / 1000.0 - 0.5) * 0.5;
            rows.push((vec![x0, x1], 0.34 * x0 + 0.11 * x1 + noise));
        }
        let fit = MultiLinearFit::fit(&rows, false).unwrap();
        assert!((fit.coefficients[0] - 0.34).abs() < 0.01);
        assert!((fit.coefficients[1] - 0.11).abs() < 0.01);
    }

    #[test]
    fn mape_behaviour() {
        assert_eq!(mape(&[], &[]), 0.0);
        assert_eq!(mape(&[0.0], &[5.0]), 0.0); // zero actuals skipped
        let e = mape(&[100.0, 200.0], &[90.0, 220.0]);
        assert!((e - 10.0).abs() < 1e-9); // (10% + 10%) / 2
    }

    #[test]
    fn solver_handles_pivoting() {
        // Leading zero forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        let x = solve_linear_system(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solver_rejects_singular() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear_system(&mut a, &mut b, 2).is_none());
    }
}
