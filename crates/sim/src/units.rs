//! Strongly typed data sizes and rates.
//!
//! The paper's parameter rules are all phrased in terms of the
//! bandwidth-delay product (BDP), TCP buffer sizes and average file sizes,
//! so mixing up bits and bytes or Mbps and MB/s silently produces nonsense
//! parameter choices. [`Bytes`] and [`Rate`] make the unit part of the type.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A byte count (file sizes, buffer sizes, BDP).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

/// A data rate in **bits per second** (the paper reports Mbps/Gbps).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Rate {
    bits_per_sec: f64,
}

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Constructs from kilobytes (10^3).
    #[inline]
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// Constructs from megabytes (10^6).
    #[inline]
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1_000_000)
    }

    /// Constructs from gigabytes (10^9).
    #[inline]
    pub const fn from_gb(gb: u64) -> Self {
        Bytes(gb * 1_000_000_000)
    }

    /// Constructs from fractional megabytes, rounding to whole bytes.
    #[inline]
    pub fn from_mb_f64(mb: f64) -> Self {
        Bytes((mb.max(0.0) * 1e6).round() as u64)
    }

    /// Parses a human-friendly size: a number with an optional `B`, `KB`,
    /// `MB`, `GB` or `TB` suffix (decimal units, case-insensitive,
    /// whitespace tolerated): `"3MB"`, `"2.5 GB"`, `"1024"`.
    ///
    /// ```
    /// use eadt_sim::Bytes;
    /// assert_eq!(Bytes::parse("3MB").unwrap(), Bytes::from_mb(3));
    /// assert_eq!(Bytes::parse("2.5 gb").unwrap(), Bytes(2_500_000_000));
    /// assert_eq!(Bytes::parse("512").unwrap(), Bytes(512));
    /// assert!(Bytes::parse("fast").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<Bytes, String> {
        let t = s.trim();
        let upper = t.to_ascii_uppercase();
        let (number, multiplier) = if let Some(stripped) = upper.strip_suffix("TB") {
            (stripped, 1e12)
        } else if let Some(stripped) = upper.strip_suffix("GB") {
            (stripped, 1e9)
        } else if let Some(stripped) = upper.strip_suffix("MB") {
            (stripped, 1e6)
        } else if let Some(stripped) = upper.strip_suffix("KB") {
            (stripped, 1e3)
        } else if let Some(stripped) = upper.strip_suffix("B") {
            (stripped, 1.0)
        } else {
            (upper.as_str(), 1.0)
        };
        let value: f64 = number
            .trim()
            .parse()
            .map_err(|_| format!("cannot parse size '{s}'"))?;
        if !value.is_finite() || value < 0.0 {
            return Err(format!("size '{s}' must be a non-negative number"));
        }
        Ok(Bytes((value * multiplier).round() as u64))
    }

    /// Raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as a float.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Size in megabytes.
    #[inline]
    pub fn as_mb(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Size in gigabytes.
    #[inline]
    pub fn as_gb(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// True if the count is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time needed to move this many bytes at `rate` (∞-safe: a zero
    /// rate yields `SimDuration::ZERO`-guarded max; callers treat it as
    /// "never finishes" by clamping to the slice).
    #[inline]
    pub fn time_at(self, rate: Rate) -> SimDuration {
        if rate.bits_per_sec <= 0.0 {
            return SimDuration::from_micros(u64::MAX);
        }
        SimDuration::from_secs_f64(self.0 as f64 * 8.0 / rate.bits_per_sec)
    }
}

impl Rate {
    /// Zero rate.
    pub const ZERO: Rate = Rate { bits_per_sec: 0.0 };

    /// Constructs from bits per second.
    #[inline]
    pub fn from_bps(bits_per_sec: f64) -> Self {
        Rate {
            bits_per_sec: bits_per_sec.max(0.0),
        }
    }

    /// Constructs from megabits per second.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Self {
        Rate::from_bps(mbps * 1e6)
    }

    /// Constructs from gigabits per second.
    #[inline]
    pub fn from_gbps(gbps: f64) -> Self {
        Rate::from_bps(gbps * 1e9)
    }

    /// Bits per second.
    #[inline]
    pub fn as_bps(self) -> f64 {
        self.bits_per_sec
    }

    /// Megabits per second (the unit of every throughput figure in the
    /// paper).
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.bits_per_sec / 1e6
    }

    /// Gigabits per second.
    #[inline]
    pub fn as_gbps(self) -> f64 {
        self.bits_per_sec / 1e9
    }

    /// Bytes moved in `dur` at this rate.
    #[inline]
    pub fn bytes_in(self, dur: SimDuration) -> Bytes {
        Bytes((self.bits_per_sec * dur.as_secs_f64() / 8.0).floor() as u64)
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        if self.bits_per_sec <= other.bits_per_sec {
            self
        } else {
            other
        }
    }

    /// The larger of two rates.
    #[inline]
    pub fn max(self, other: Rate) -> Rate {
        if self.bits_per_sec >= other.bits_per_sec {
            self
        } else {
            other
        }
    }

    /// True if (numerically) zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.bits_per_sec <= 0.0
    }

    /// Fraction `self / denom` in `[0, ∞)`; zero when `denom` is zero.
    #[inline]
    pub fn fraction_of(self, denom: Rate) -> f64 {
        if denom.bits_per_sec <= 0.0 {
            0.0
        } else {
            self.bits_per_sec / denom.bits_per_sec
        }
    }
}

/// Bandwidth-delay product: the volume of data "in flight" on a path.
///
/// This is the quantity every parameter rule in the paper (Algorithms 1–3)
/// is computed from: `BDP = BW × RTT`.
///
/// ```
/// use eadt_sim::units::bdp;
/// use eadt_sim::{Bytes, Rate, SimDuration};
///
/// // XSEDE: 10 Gbps × 40 ms = 50 MB in flight.
/// let v = bdp(Rate::from_gbps(10.0), SimDuration::from_millis(40));
/// assert_eq!(v, Bytes::from_mb(50));
/// ```
#[inline]
pub fn bdp(bandwidth: Rate, rtt: SimDuration) -> Bytes {
    Bytes((bandwidth.as_bps() * rtt.as_secs_f64() / 8.0).round() as u64)
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        self.saturating_sub(rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |acc, b| acc + b)
    }
}

impl Add for Rate {
    type Output = Rate;
    #[inline]
    fn add(self, rhs: Rate) -> Rate {
        Rate {
            bits_per_sec: self.bits_per_sec + rhs.bits_per_sec,
        }
    }
}

impl AddAssign for Rate {
    #[inline]
    fn add_assign(&mut self, rhs: Rate) {
        self.bits_per_sec += rhs.bits_per_sec;
    }
}

impl Sub for Rate {
    type Output = Rate;
    #[inline]
    fn sub(self, rhs: Rate) -> Rate {
        Rate::from_bps(self.bits_per_sec - rhs.bits_per_sec)
    }
}

impl Mul<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn mul(self, rhs: f64) -> Rate {
        Rate::from_bps(self.bits_per_sec * rhs)
    }
}

impl Div<f64> for Rate {
    type Output = Rate;
    #[inline]
    fn div(self, rhs: f64) -> Rate {
        if rhs <= 0.0 {
            Rate::ZERO
        } else {
            Rate::from_bps(self.bits_per_sec / rhs)
        }
    }
}

impl Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2} GB", self.as_gb())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2} MB", self.as_mb())
        } else if self.0 >= 1_000 {
            write!(f, "{:.2} KB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits_per_sec >= 1e9 {
            write!(f, "{:.2} Gbps", self.as_gbps())
        } else {
            write!(f, "{:.1} Mbps", self.as_mbps())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Bytes::from_kb(2).as_u64(), 2_000);
        assert_eq!(Bytes::from_mb(3).as_u64(), 3_000_000);
        assert_eq!(Bytes::from_gb(1).as_u64(), 1_000_000_000);
        assert!((Bytes::from_mb(5).as_mb() - 5.0).abs() < 1e-12);
        assert!((Rate::from_gbps(10.0).as_mbps() - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn fractional_mb() {
        assert_eq!(Bytes::from_mb_f64(1.5).as_u64(), 1_500_000);
        assert_eq!(Bytes::from_mb_f64(-1.0), Bytes::ZERO);
    }

    #[test]
    fn bdp_matches_paper_xsede() {
        // XSEDE: 10 Gbps × 40 ms = 50 MB.
        let v = bdp(Rate::from_gbps(10.0), SimDuration::from_millis(40));
        assert_eq!(v.as_u64(), 50_000_000);
    }

    #[test]
    fn bdp_matches_paper_futuregrid() {
        // FutureGrid: 1 Gbps × 28 ms = 3.5 MB.
        let v = bdp(Rate::from_gbps(1.0), SimDuration::from_millis(28));
        assert_eq!(v.as_u64(), 3_500_000);
    }

    #[test]
    fn transfer_time_round_trip() {
        let size = Bytes::from_mb(100); // 800 Mbit
        let rate = Rate::from_mbps(800.0);
        let t = size.time_at(rate);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        let moved = rate.bytes_in(t);
        assert!(moved.as_u64() <= size.as_u64());
        assert!(size.as_u64() - moved.as_u64() <= 1);
    }

    #[test]
    fn zero_rate_never_finishes() {
        let t = Bytes::from_mb(1).time_at(Rate::ZERO);
        assert_eq!(t.as_micros(), u64::MAX);
    }

    #[test]
    fn negative_rates_clamp_to_zero() {
        assert!(Rate::from_bps(-5.0).is_zero());
        assert!((Rate::from_mbps(3.0) - Rate::from_mbps(10.0)).is_zero());
        assert_eq!(Rate::from_mbps(100.0) / 0.0, Rate::ZERO);
    }

    #[test]
    fn rate_arithmetic() {
        let r = Rate::from_mbps(100.0) + Rate::from_mbps(50.0);
        assert!((r.as_mbps() - 150.0).abs() < 1e-9);
        assert!(((r * 2.0).as_mbps() - 300.0).abs() < 1e-9);
        assert!(((r / 3.0).as_mbps() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn sums() {
        let total: Bytes = [Bytes::from_mb(1), Bytes::from_mb(2)].into_iter().sum();
        assert_eq!(total, Bytes::from_mb(3));
        let rate: Rate = [Rate::from_mbps(1.0), Rate::from_mbps(2.0)]
            .into_iter()
            .sum();
        assert!((rate.as_mbps() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_of_handles_zero_denominator() {
        assert_eq!(Rate::from_mbps(10.0).fraction_of(Rate::ZERO), 0.0);
        let f = Rate::from_mbps(5.0).fraction_of(Rate::from_mbps(10.0));
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(Bytes::from_gb(2).to_string(), "2.00 GB");
        assert_eq!(Bytes::from_mb(2).to_string(), "2.00 MB");
        assert_eq!(Bytes(999).to_string(), "999 B");
        assert_eq!(Rate::from_gbps(10.0).to_string(), "10.00 Gbps");
        assert_eq!(Rate::from_mbps(800.0).to_string(), "800.0 Mbps");
    }

    #[test]
    fn parse_sizes() {
        assert_eq!(Bytes::parse("100"), Ok(Bytes(100)));
        assert_eq!(Bytes::parse("100B"), Ok(Bytes(100)));
        assert_eq!(Bytes::parse(" 4 kb "), Ok(Bytes(4_000)));
        assert_eq!(Bytes::parse("3.5MB"), Ok(Bytes(3_500_000)));
        assert_eq!(Bytes::parse("20GB"), Ok(Bytes::from_gb(20)));
        assert_eq!(Bytes::parse("0.001TB"), Ok(Bytes::from_gb(1)));
        assert!(Bytes::parse("").is_err());
        assert!(Bytes::parse("-5MB").is_err());
        assert!(Bytes::parse("12XB").is_err());
    }

    #[test]
    fn byte_saturating_ops() {
        assert_eq!(Bytes(5).saturating_sub(Bytes(7)), Bytes::ZERO);
        assert_eq!(Bytes(u64::MAX) + Bytes(1), Bytes(u64::MAX));
    }
}
