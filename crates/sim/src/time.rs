//! Fixed-point simulated time.
//!
//! Simulated time is stored as an integer number of **microseconds** so that
//! repeatedly advancing a clock by small slices never accumulates
//! floating-point error, and so that `SimTime` values are totally ordered
//! and hashable. One microsecond is fine enough to resolve sub-millisecond
//! LAN round-trip times while still allowing transfers of many simulated
//! days without overflow (`u64` microseconds ≈ 584,000 years).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulated clock, measured from the start of the
/// simulation (time zero).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    micros: u64,
}

/// A span of simulated time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    micros: u64,
}

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime { micros: 0 };

    /// Creates a time from whole microseconds since the origin.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime { micros }
    }

    /// Creates a time from (possibly fractional) seconds since the origin.
    ///
    /// Negative and non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime {
            micros: secs_to_micros(secs),
        }
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Seconds since the origin as a float (exact for < 2^53 µs).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(earlier.micros),
        }
    }

    /// Checked subtraction; `None` if `rhs` is later than `self`.
    #[inline]
    pub fn checked_sub(self, rhs: SimDuration) -> Option<SimTime> {
        self.micros
            .checked_sub(rhs.micros)
            .map(|m| SimTime { micros: m })
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * 1_000,
        }
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * MICROS_PER_SEC,
        }
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration {
            micros: secs_to_micros(secs),
        }
    }

    /// Whole microseconds in this duration.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// This duration in seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / MICROS_PER_SEC as f64
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.micros == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.micros <= other.micros {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.micros >= other.micros {
            self
        } else {
            other
        }
    }

    /// Multiplies the duration by a non-negative float, saturating.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration {
            micros: secs_to_micros(self.as_secs_f64() * factor),
        }
    }

    /// Number of whole `slice` periods contained in this duration
    /// (floor division in integer microseconds). A zero `slice` is
    /// clamped to one microsecond.
    #[inline]
    pub fn slices_within(self, slice: SimDuration) -> u64 {
        self.micros / slice.micros.max(1)
    }

    /// Number of whole `slice` periods that fit *strictly inside* this
    /// duration: the largest `k` with `k × slice < self`. Zero when this
    /// duration is zero. The engine's macro-stepper uses this to count
    /// slices that provably end before a state-change boundary.
    #[inline]
    pub fn slices_before(self, slice: SimDuration) -> u64 {
        if self.micros == 0 {
            0
        } else {
            (self.micros - 1) / slice.micros.max(1)
        }
    }
}

#[inline]
fn secs_to_micros(secs: f64) -> u64 {
    if secs.is_nan() || secs <= 0.0 {
        return 0;
    }
    if secs.is_infinite() {
        return u64::MAX;
    }
    let micros = secs * MICROS_PER_SEC as f64;
    if micros >= u64::MAX as f64 {
        u64::MAX
    } else {
        micros.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros = self.micros.saturating_add(rhs.micros);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros = self.micros.saturating_add(rhs.micros);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = self.saturating_sub(rhs);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_mul(rhs),
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros / rhs.max(1),
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_origin() {
        assert_eq!(SimTime::ZERO.as_micros(), 0);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn from_secs_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn huge_seconds_saturate() {
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_micros(),
            u64::MAX
        );
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::ZERO + SimDuration::from_millis(250);
        assert_eq!(t.as_micros(), 250_000);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(30);
        assert_eq!(late.since(early).as_micros(), 20);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn checked_sub_detects_underflow() {
        let t = SimTime::from_micros(5);
        assert_eq!(t.checked_sub(SimDuration::from_micros(6)), None);
        assert_eq!(
            t.checked_sub(SimDuration::from_micros(5)),
            Some(SimTime::ZERO)
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(2);
        let b = SimDuration::from_millis(500);
        assert_eq!((a + b).as_micros(), 2_500_000);
        assert_eq!((a - b).as_micros(), 1_500_000);
        assert_eq!((b - a), SimDuration::ZERO); // saturating
        assert_eq!((b * 4).as_micros(), 2_000_000);
        assert_eq!((a / 4).as_micros(), 500_000);
    }

    #[test]
    fn division_by_zero_is_clamped() {
        // Dividing by zero clamps the divisor to one rather than panicking;
        // the engine divides slices by counts that can legitimately be zero.
        assert_eq!((SimDuration::from_secs(1) / 0).as_micros(), 1_000_000);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_secs(1).mul_f64(0.1);
        assert_eq!(d.as_micros(), 100_000);
        assert_eq!(SimDuration::from_secs(1).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_micros(5),
            SimTime::from_micros(1),
            SimTime::from_micros(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::from_micros(1),
                SimTime::from_micros(3),
                SimTime::from_micros(5)
            ]
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250s");
        assert_eq!(SimDuration::from_millis(40).to_string(), "0.040s");
    }

    #[test]
    fn slice_division_helpers() {
        let s = SimDuration::from_millis(100);
        // slices_within: plain floor division.
        assert_eq!(SimDuration::from_millis(350).slices_within(s), 3);
        assert_eq!(SimDuration::from_millis(300).slices_within(s), 3);
        assert_eq!(SimDuration::ZERO.slices_within(s), 0);
        // slices_before: strict — k slices must end before the boundary.
        assert_eq!(SimDuration::from_millis(350).slices_before(s), 3);
        assert_eq!(SimDuration::from_millis(300).slices_before(s), 2);
        assert_eq!(SimDuration::from_millis(100).slices_before(s), 0);
        assert_eq!(SimDuration::ZERO.slices_before(s), 0);
        // Zero slice is clamped, not a panic.
        assert_eq!(
            SimDuration::from_secs(1).slices_within(SimDuration::ZERO),
            1_000_000
        );
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
