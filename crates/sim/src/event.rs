//! A minimal discrete-event queue backed by a payload slab.
//!
//! The transfer engine is primarily time-sliced, but control-plane actions —
//! probe-window boundaries, scheduled concurrency changes, SLA re-checks —
//! are naturally discrete events. [`EventQueue`] orders them by simulated
//! time with a stable FIFO tie-break so that two events scheduled for the
//! same instant fire in the order they were scheduled (determinism again).
//!
//! Internally the queue separates *ordering* from *storage*: the binary
//! heap holds small `Copy` keys `(at, seq, slot)` while payloads live in a
//! slab of reusable slots. Popped slots go on a free list and are handed
//! back out by the next `schedule`, so a steady-state simulation (schedule
//! one, pop one, millions of times) allocates nothing after warm-up, and
//! heap sift operations move 20-byte keys instead of arbitrary payloads.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of type `E` scheduled at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number; breaks ties FIFO.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

/// Heap key: ordering data plus the slab slot holding the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: u32,
}

// BinaryHeap is a max-heap; invert the ordering for earliest-first.
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An earliest-first event queue with FIFO tie-breaking and slab-backed
/// payload storage (slots are recycled across schedule/pop cycles).
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapKey>,
    /// Payload slab; `None` marks a slot on the free list.
    slots: Vec<Option<E>>,
    /// Indices of vacant `slots` entries, ready for reuse.
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events
    /// before any allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).unwrap_or(u32::MAX);
                assert!(slot < u32::MAX, "event slab exceeded u32 slots");
                self.slots.push(Some(event));
                slot
            }
        };
        self.heap.push(HeapKey { at, seq, slot });
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|k| k.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let key = self.heap.pop()?;
        let event = self.slots[key.slot as usize]
            .take()
            .unwrap_or_else(|| unreachable!("heap key points at a vacant slot"));
        self.free.push(key.slot);
        Some(ScheduledEvent {
            at: key.at,
            seq: key.seq,
            event,
        })
    }

    /// Removes and returns the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events; slab capacity is retained for reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            *slot = None;
            self.free.push(i as u32);
        }
    }

    /// Number of payload slots currently allocated (occupied + recyclable).
    /// A steady-state schedule/pop workload holds this constant.
    pub fn slab_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "early");
        q.schedule(t(100), "late");
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.pop_due(t(10)).unwrap().event, "early");
        assert_eq!(q.pop_due(t(50)), None);
        assert_eq!(q.pop_due(t(100)).unwrap().event, "late");
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(7), 1u32);
        q.schedule(t(3), 2u32);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1u32);
        q.schedule(t(20), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule(t(15), 3);
        q.schedule(t(5), 4); // in the "past" — still fine, earliest-first
        assert_eq!(q.pop().unwrap().event, 4);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn steady_state_recycles_slots() {
        let mut q = EventQueue::new();
        // Prime with a working set of 4 pending events.
        for i in 0..4u64 {
            q.schedule(t(i), i);
        }
        let primed = q.slab_slots();
        // A long schedule-one/pop-one steady state must not grow the slab.
        for i in 4..10_000u64 {
            let popped = q.pop().unwrap();
            assert_eq!(popped.event, i - 4);
            q.schedule(t(i), i);
            assert_eq!(q.slab_slots(), primed);
        }
        // Drain; payloads still come out in order.
        for i in 10_000 - 4..10_000u64 {
            assert_eq!(q.pop().unwrap().event, i);
        }
        assert!(q.is_empty());
        assert_eq!(q.slab_slots(), primed);
    }

    #[test]
    fn clear_retains_and_recycles_capacity() {
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.schedule(t(i), i);
        }
        let primed = q.slab_slots();
        q.clear();
        assert!(q.is_empty());
        for i in 0..8u64 {
            q.schedule(t(i), 100 + i);
        }
        assert_eq!(q.slab_slots(), primed);
        assert_eq!(q.pop().unwrap().event, 100);
    }

    #[test]
    fn payloads_need_not_be_eq() {
        // The slab design only orders keys, so payloads without Eq/Ord
        // (e.g. closures' captures, floats) are fine.
        let mut q = EventQueue::new();
        q.schedule(t(2), 2.5f64);
        q.schedule(t(1), 1.5f64);
        assert_eq!(q.pop().unwrap().event, 1.5);
        assert_eq!(q.pop().unwrap().event, 2.5);
    }
}
