//! A minimal discrete-event queue.
//!
//! The transfer engine is primarily time-sliced, but control-plane actions —
//! probe-window boundaries, scheduled concurrency changes, SLA re-checks —
//! are naturally discrete events. [`EventQueue`] orders them by simulated
//! time with a stable FIFO tie-break so that two events scheduled for the
//! same instant fire in the order they were scheduled (determinism again).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of type `E` scheduled at a simulated instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone sequence number; breaks ties FIFO.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

// BinaryHeap is a max-heap; invert the ordering for earliest-first.
impl<E: Eq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An earliest-first event queue with FIFO tie-breaking.
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E: Eq> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// Removes and returns the earliest event if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<ScheduledEvent<E>> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), "c");
        q.schedule(t(10), "a");
        q.schedule(t(20), "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(t(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "early");
        q.schedule(t(100), "late");
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.pop_due(t(10)).unwrap().event, "early");
        assert_eq!(q.pop_due(t(50)), None);
        assert_eq!(q.pop_due(t(100)).unwrap().event, "late");
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(t(7), 1u32);
        q.schedule(t(3), 2u32);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(t(3)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1u32);
        q.schedule(t(20), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        q.schedule(t(15), 3);
        q.schedule(t(5), 4); // in the "past" — still fine, earliest-first
        assert_eq!(q.pop().unwrap().event, 4);
        assert_eq!(q.pop().unwrap().event, 3);
        assert_eq!(q.pop().unwrap().event, 2);
    }
}
