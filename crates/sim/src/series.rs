//! Append-only time series with integration and windowed summaries.
//!
//! The transfer engine samples instantaneous power (Watts) and throughput
//! (Mbps) once per slice; [`TimeSeries`] turns those samples into the
//! quantities the paper reports: energy in Joules (trapezoidal integral of
//! power over time) and per-window averages (the 5-second probe windows of
//! HTEE and SLAEE).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One sample: a value observed at a simulated instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// When the value was observed.
    pub time: SimTime,
    /// The observed value (unit decided by the owner of the series).
    pub value: f64,
}

/// An append-only series of `(time, value)` samples with non-decreasing
/// timestamps.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries {
            samples: Vec::new(),
        }
    }

    /// Creates an empty series with room for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        TimeSeries {
            samples: Vec::with_capacity(cap),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the last appended sample — the
    /// engine only moves forward.
    pub fn push(&mut self, time: SimTime, value: f64) {
        if let Some(last) = self.samples.last() {
            assert!(
                time >= last.time,
                "time series must be appended in order: {time} < {}",
                last.time
            );
        }
        self.samples.push(Sample { time, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples in order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<Sample> {
        self.samples.last().copied()
    }

    /// The timestamp of the first sample.
    pub fn start(&self) -> Option<SimTime> {
        self.samples.first().map(|s| s.time)
    }

    /// The timestamp of the last sample.
    pub fn end(&self) -> Option<SimTime> {
        self.samples.last().map(|s| s.time)
    }

    /// Trapezoidal integral of the series over its full span.
    ///
    /// For a power series in Watts sampled in seconds, the result is energy
    /// in **Joules**. Returns 0 for fewer than two samples.
    ///
    /// ```
    /// use eadt_sim::{SimTime, TimeSeries};
    ///
    /// let mut power = TimeSeries::new();
    /// for t in 0..=10 {
    ///     power.push(SimTime::from_secs_f64(t as f64), 150.0); // 150 W
    /// }
    /// assert_eq!(power.integrate(), 1500.0); // J over 10 s
    /// ```
    pub fn integrate(&self) -> f64 {
        self.integrate_between(
            self.start().unwrap_or(SimTime::ZERO),
            self.end().unwrap_or(SimTime::ZERO),
        )
    }

    /// Trapezoidal integral restricted to `[from, to]`, interpolating at the
    /// boundaries.
    pub fn integrate_between(&self, from: SimTime, to: SimTime) -> f64 {
        if self.samples.len() < 2 || to <= from {
            return 0.0;
        }
        let mut acc = 0.0;
        for w in self.samples.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b.time <= from || a.time >= to {
                continue;
            }
            // Clip segment [a, b] to [from, to] with linear interpolation.
            let seg = (b.time - a.time).as_secs_f64();
            if seg <= 0.0 {
                continue;
            }
            let t0 = if a.time < from { from } else { a.time };
            let t1 = if b.time > to { to } else { b.time };
            let v_at = |t: SimTime| {
                let frac = (t - a.time).as_secs_f64() / seg;
                a.value + (b.value - a.value) * frac
            };
            let dt = (t1 - t0).as_secs_f64();
            acc += 0.5 * (v_at(t0) + v_at(t1)) * dt;
        }
        acc
    }

    /// Time-weighted mean over the full span (integral / duration).
    /// Returns the plain mean of values if the span is degenerate.
    pub fn time_weighted_mean(&self) -> f64 {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) if e > s => self.integrate() / (e - s).as_secs_f64(),
            _ => {
                if self.samples.is_empty() {
                    0.0
                } else {
                    self.samples.iter().map(|s| s.value).sum::<f64>() / self.samples.len() as f64
                }
            }
        }
    }

    /// Mean of the samples whose timestamps fall in `[from, from + window)`.
    /// Returns `None` when the window contains no samples.
    pub fn window_mean(&self, from: SimTime, window: SimDuration) -> Option<f64> {
        let to = from + window;
        let mut sum = 0.0;
        let mut n = 0usize;
        for s in &self.samples {
            if s.time >= from && s.time < to {
                sum += s.value;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Maximum sample value; `None` when empty.
    pub fn max_value(&self) -> Option<f64> {
        self.samples
            .iter()
            .map(|s| s.value)
            .fold(None, |m, v| match m {
                None => Some(v),
                Some(m) => Some(m.max(v)),
            })
    }

    /// Resamples to a fixed step with zero-order hold (last value persists),
    /// useful for plotting aligned series.
    pub fn resample(&self, step: SimDuration) -> Vec<Sample> {
        let (Some(start), Some(end)) = (self.start(), self.end()) else {
            return Vec::new();
        };
        if step.is_zero() {
            return self.samples.clone();
        }
        let mut out = Vec::new();
        let mut t = start;
        let mut idx = 0usize;
        let mut current = self.samples[0].value;
        while t <= end {
            while idx < self.samples.len() && self.samples[idx].time <= t {
                current = self.samples[idx].value;
                idx += 1;
            }
            out.push(Sample {
                time: t,
                value: current,
            });
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn empty_series_behaviour() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.integrate(), 0.0);
        assert_eq!(s.time_weighted_mean(), 0.0);
        assert_eq!(s.max_value(), None);
        assert!(s.resample(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn constant_power_integrates_to_p_times_t() {
        let mut s = TimeSeries::new();
        for i in 0..=10 {
            s.push(t(i as f64), 200.0); // 200 W for 10 s
        }
        assert!((s.integrate() - 2000.0).abs() < 1e-9);
        assert!((s.time_weighted_mean() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn linear_ramp_integrates_exactly() {
        // P(t) = 10 t over [0, 4] → ∫ = 80. Trapezoid is exact for linear.
        let mut s = TimeSeries::new();
        for i in 0..=4 {
            s.push(t(i as f64), 10.0 * i as f64);
        }
        assert!((s.integrate() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn integrate_between_clips_and_interpolates() {
        let mut s = TimeSeries::new();
        s.push(t(0.0), 0.0);
        s.push(t(10.0), 100.0); // P(t) = 10 t
                                // ∫_2^4 10t dt = 5(16-4) = 60
        assert!((s.integrate_between(t(2.0), t(4.0)) - 60.0).abs() < 1e-6);
        // Degenerate and out-of-range windows
        assert_eq!(s.integrate_between(t(4.0), t(4.0)), 0.0);
        assert_eq!(s.integrate_between(t(20.0), t(30.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(t(5.0), 1.0);
        s.push(t(4.0), 1.0);
    }

    #[test]
    fn duplicate_timestamps_are_allowed() {
        let mut s = TimeSeries::new();
        s.push(t(1.0), 1.0);
        s.push(t(1.0), 2.0); // step change at the same instant
        s.push(t(2.0), 2.0);
        assert!((s.integrate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn window_mean_selects_half_open_interval() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i as f64), i as f64);
        }
        let m = s.window_mean(t(2.0), SimDuration::from_secs(3)).unwrap();
        assert!((m - 3.0).abs() < 1e-12); // samples at 2,3,4
        assert_eq!(s.window_mean(t(100.0), SimDuration::from_secs(5)), None);
    }

    #[test]
    fn max_value_finds_peak() {
        let mut s = TimeSeries::new();
        s.push(t(0.0), 1.0);
        s.push(t(1.0), 9.0);
        s.push(t(2.0), 3.0);
        assert_eq!(s.max_value(), Some(9.0));
    }

    #[test]
    fn resample_zero_order_hold() {
        let mut s = TimeSeries::new();
        s.push(t(0.0), 1.0);
        s.push(t(2.5), 5.0);
        s.push(t(5.0), 2.0);
        let r = s.resample(SimDuration::from_secs(1));
        assert_eq!(r.len(), 6); // t = 0..=5
        assert_eq!(r[0].value, 1.0);
        assert_eq!(r[2].value, 1.0); // 2.0 < 2.5: still holding first value
        assert_eq!(r[3].value, 5.0); // 3.0 ≥ 2.5
        assert_eq!(r[5].value, 2.0);
    }

    #[test]
    fn single_sample_mean_is_its_value() {
        let mut s = TimeSeries::new();
        s.push(t(3.0), 7.5);
        assert_eq!(s.time_weighted_mean(), 7.5);
    }
}
