//! Simulation kernel for the EADT (Energy-Aware Data Transfer) workspace.
//!
//! This crate provides the deterministic foundation every other crate builds
//! on:
//!
//! * [`time`] — fixed-point simulated time ([`SimTime`], [`SimDuration`])
//!   with microsecond resolution, immune to floating-point drift across long
//!   transfers.
//! * [`units`] — strongly typed data-size and rate units ([`Bytes`],
//!   [`Rate`]) plus bandwidth-delay-product helpers.
//! * [`rng`] — a seedable, splittable deterministic random source so every
//!   experiment is exactly reproducible.
//! * [`event`] — a minimal discrete-event queue used by the transfer engine
//!   for control-channel bookkeeping, with slab-backed payload storage so
//!   steady-state scheduling allocates nothing.
//! * [`error`] — the workspace-wide typed error ([`EadtError`]) and its
//!   coarse classification ([`ErrorKind`]), shared by the CLI, the transfer
//!   runtime, and the fleet batch runner.
//! * [`series`] — append-only time series with trapezoidal integration
//!   (power → energy) and resampling.
//! * [`stats`] — summary statistics and ordinary least squares regression
//!   (simple and multiple), used to fit the paper's power-model
//!   coefficients during calibration.
//!
//! Nothing in this crate knows about networks, servers or transfers; it is a
//! generic, allocation-conscious kernel in the spirit of the HPC guides
//! (pre-sized `Vec`s, no hashing in hot paths, no wall-clock access).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod event;
#[cfg(test)]
mod proptests;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod units;

pub use error::{EadtError, ErrorKind};
pub use event::{EventQueue, ScheduledEvent};
pub use rng::{RngSnapshot, SimRng};
pub use series::TimeSeries;
pub use stats::{LinearFit, MultiLinearFit, Summary};
pub use time::{SimDuration, SimTime};
pub use units::{Bytes, Rate};
