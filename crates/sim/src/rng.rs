//! Deterministic, splittable random source.
//!
//! Every stochastic choice in the workspace (dataset generation, utilization
//! jitter, loss events) flows through [`SimRng`], which wraps a small
//! counter-based generator seeded explicitly. Two properties matter:
//!
//! 1. **Reproducibility** — the same seed always produces the same
//!    experiment, across platforms (no `HashMap` iteration order, no
//!    wall-clock seeding).
//! 2. **Splittability** — independent subsystems get derived streams
//!    (`fork`) so adding a random draw in one module does not perturb the
//!    sequence seen by another (a classic simulation-reproducibility trap).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

/// Serializable state of a [`SimRng`] stream, for checkpointing.
///
/// Captures both the originating seed (so [`SimRng::fork`] keeps deriving
/// the same children after a restore) and the generator's raw state words
/// (so the draw sequence resumes exactly where it stopped).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngSnapshot {
    /// Seed the stream was created from; drives `fork` derivation.
    pub seed: u64,
    /// xoshiro256++ state words at capture time.
    pub state: [u64; 4],
}

impl SimRng {
    /// Creates a stream from an explicit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Captures the stream's full state for a checkpoint.
    pub fn snapshot(&self) -> RngSnapshot {
        RngSnapshot {
            seed: self.seed,
            state: self.inner.state(),
        }
    }

    /// Rebuilds a stream from a [`snapshot`], resuming the exact draw
    /// sequence and fork derivation of the captured stream.
    ///
    /// [`snapshot`]: SimRng::snapshot
    pub fn restore(snap: &RngSnapshot) -> Self {
        SimRng {
            inner: SmallRng::from_state(snap.state),
            seed: snap.seed,
        }
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// The child's sequence depends only on `(parent seed, label)`, not on
    /// how many values the parent has already produced.
    ///
    /// ```
    /// use eadt_sim::SimRng;
    /// use rand::RngCore;
    ///
    /// let mut a = SimRng::new(7).fork("dataset");
    /// let mut parent = SimRng::new(7);
    /// parent.next_u64(); // consuming the parent does not matter
    /// let mut b = parent.fork("dataset");
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        // splitmix finalizer to decorrelate nearby labels
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        SimRng::new(h)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`; returns `lo` when the range is empty.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// Uniform `u64` in `[lo, hi)`; returns `lo` when the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Log-uniform `f64` in `[lo, hi)`, for heavy-tailed file-size mixes.
    ///
    /// Both bounds must be positive; degenerate ranges return `lo`.
    #[inline]
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo <= 0.0 || hi <= lo {
            return lo.max(0.0);
        }
        (self.range_f64(lo.ln(), hi.ln())).exp()
    }

    /// Gaussian sample via Box–Muller (mean 0, std 1).
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller; u1 is kept away from 0 so ln() stays finite.
        let u1 = self.unit().max(1e-12);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Gaussian sample with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.range_u64(0, (i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn fork_is_stable_regardless_of_parent_consumption() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        // Consume some values from parent2 before forking.
        for _ in 0..10 {
            parent2.next_u64();
        }
        let mut c1 = parent1.fork("dataset");
        let mut c2 = parent2.fork("dataset");
        for _ in 0..20 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn fork_labels_decorrelate() {
        let parent = SimRng::new(7);
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn snapshot_resumes_draws_and_forks() {
        let mut live = SimRng::new(42);
        for _ in 0..13 {
            live.next_u64();
        }
        let snap = live.snapshot();
        let mut resumed = SimRng::restore(&snap);
        // Same draw sequence from the capture point...
        for _ in 0..50 {
            assert_eq!(live.next_u64(), resumed.next_u64());
        }
        // ...and forks still derive from the original seed.
        assert_eq!(
            live.fork("child").next_u64(),
            resumed.fork("child").next_u64()
        );
        assert_eq!(snap.seed, 42);
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_f64_bounds_and_degenerate() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let x = r.range_f64(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(r.range_f64(5.0, 2.0), 5.0);
    }

    #[test]
    fn range_u64_bounds_and_degenerate() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
        assert_eq!(r.range_u64(9, 9), 9);
    }

    #[test]
    fn log_uniform_spans_orders_of_magnitude() {
        let mut r = SimRng::new(6);
        let mut below = 0usize;
        let n = 4000;
        for _ in 0..n {
            let x = r.log_uniform(1.0, 10_000.0);
            assert!((1.0..10_000.0).contains(&x));
            if x < 100.0 {
                below += 1;
            }
        }
        // log-uniform: half the mass below the geometric mean (100).
        let frac = below as f64 / n as f64;
        assert!((0.42..0.58).contains(&frac), "frac={frac}");
    }

    #[test]
    fn log_uniform_degenerate_inputs() {
        let mut r = SimRng::new(8);
        assert_eq!(r.log_uniform(-1.0, 5.0), 0.0);
        assert_eq!(r.log_uniform(3.0, 2.0), 3.0);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut r = SimRng::new(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std={}", var.sqrt());
    }

    #[test]
    fn chance_clamps_probability() {
        let mut r = SimRng::new(10);
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
