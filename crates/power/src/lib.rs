//! End-system power models (paper §2.2).
//!
//! Measuring transfer power with meters is impossible on machines you do
//! not own, so the paper predicts it from OS-visible utilization with two
//! regression models built in a one-time calibration phase:
//!
//! * the **fine-grained model** (Eq. 1) — a linear combination of CPU,
//!   memory, disk and NIC utilization, with the CPU coefficient depending
//!   on the number of active cores (Eq. 2:
//!   `C_cpu(n) = 0.011·n² − 0.082·n + 0.344`);
//! * the **CPU-only model** (Eq. 3) — for servers where only CPU stats are
//!   visible, optionally *extended* to a different machine by scaling with
//!   the ratio of CPU Thermal Design Power values.
//!
//! [`calibrate`] reproduces the model-building phase: sweep synthetic load
//! levels against a ground-truth power oracle, fit coefficients by least
//! squares, and score models with MAPE against held-out transfer profiles
//! (the paper's "error rate below 6%" experiment). [`meter`] integrates
//! predicted Watts into Joules over simulated time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod meter;
pub mod model;

pub use calibrate::{CalibrationOutcome, GroundTruth, ToolProfile};
pub use meter::EnergyMeter;
pub use model::{
    cpu_coefficient, CpuOnlyModel, FineGrainedModel, PowerBreakdown, PowerModel, PowerModelKind,
};
