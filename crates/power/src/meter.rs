//! Energy metering: Watts over simulated time → Joules.

use eadt_sim::{SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// Accumulates a power time series and integrates it into energy.
///
/// The engine records one sample per slice per server; total transfer
/// energy is the trapezoidal integral, exactly how the paper converts its
/// per-interval power predictions into the Joule figures of Figures 2–7.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    series: TimeSeries,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter {
            series: TimeSeries::new(),
        }
    }

    /// Records an instantaneous power reading.
    pub fn record(&mut self, time: SimTime, watts: f64) {
        self.series.push(time, watts.max(0.0));
    }

    /// Total energy in Joules over everything recorded.
    pub fn energy_joules(&self) -> f64 {
        self.series.integrate()
    }

    /// Energy in Joules accumulated between two instants.
    pub fn energy_between(&self, from: SimTime, to: SimTime) -> f64 {
        self.series.integrate_between(from, to)
    }

    /// Time-weighted mean power in Watts.
    pub fn mean_watts(&self) -> f64 {
        self.series.time_weighted_mean()
    }

    /// The underlying samples.
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Merges another meter's samples summed into a fresh series, assuming
    /// both meters were sampled at identical instants (the engine guarantees
    /// this for the per-server meters of one run).
    ///
    /// # Panics
    /// Panics if the two meters have different sample counts or timestamps.
    pub fn sum_aligned(meters: &[&EnergyMeter]) -> EnergyMeter {
        let mut out = EnergyMeter::new();
        let Some(first) = meters.first() else {
            return out;
        };
        let n = first.series.len();
        for m in meters {
            assert_eq!(m.series.len(), n, "meters must be sampled in lockstep");
        }
        for i in 0..n {
            let t = first.series.samples()[i].time;
            let mut total = 0.0;
            for m in meters {
                let s = m.series.samples()[i];
                assert_eq!(s.time, t, "meters must share timestamps");
                total += s.value;
            }
            out.record(t, total);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_sim::SimTime;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn empty_meter_has_zero_energy() {
        let m = EnergyMeter::new();
        assert_eq!(m.energy_joules(), 0.0);
        assert_eq!(m.mean_watts(), 0.0);
    }

    #[test]
    fn constant_power_energy() {
        let mut m = EnergyMeter::new();
        for i in 0..=100 {
            m.record(t(i as f64), 150.0);
        }
        assert!((m.energy_joules() - 15_000.0).abs() < 1e-6);
        assert!((m.mean_watts() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn negative_power_is_clamped() {
        let mut m = EnergyMeter::new();
        m.record(t(0.0), -50.0);
        m.record(t(1.0), -50.0);
        assert_eq!(m.energy_joules(), 0.0);
    }

    #[test]
    fn energy_between_window() {
        let mut m = EnergyMeter::new();
        for i in 0..=10 {
            m.record(t(i as f64), 100.0);
        }
        assert!((m.energy_between(t(2.0), t(5.0)) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn sum_aligned_adds_sender_and_receiver() {
        let mut src = EnergyMeter::new();
        let mut dst = EnergyMeter::new();
        for i in 0..=10 {
            src.record(t(i as f64), 60.0);
            dst.record(t(i as f64), 40.0);
        }
        let total = EnergyMeter::sum_aligned(&[&src, &dst]);
        assert!((total.energy_joules() - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "lockstep")]
    fn sum_aligned_rejects_mismatched_lengths() {
        let mut a = EnergyMeter::new();
        let b = EnergyMeter::new();
        a.record(t(0.0), 1.0);
        EnergyMeter::sum_aligned(&[&a, &b]);
    }

    #[test]
    fn sum_of_none_is_empty() {
        let total = EnergyMeter::sum_aligned(&[]);
        assert_eq!(total.energy_joules(), 0.0);
    }
}
