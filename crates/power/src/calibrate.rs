//! The one-time model-building phase (§2.2) and its accuracy experiment.
//!
//! The paper derives power-model coefficients by measuring a local server
//! with a power meter at varying component load levels and regressing. We
//! do not have a Watts Up Pro, so [`GroundTruth`] plays the role of the
//! *real machine*: a mildly non-linear, noisy power function that the
//! linear models can approximate but never match exactly. Calibration then
//! proceeds exactly as in the paper:
//!
//! 1. sweep load levels per component, record (utilization, measured W);
//! 2. least-squares fit → fine-grained coefficients (Eq. 1);
//! 3. simple regression of power on CPU utilization alone → the CPU-only
//!    model (Eq. 3), whose correlation the paper reports as 89.71%;
//! 4. score both models (and the TDP-extended CPU model on a "different
//!    vendor" machine) with MAPE over per-tool transfer profiles
//!    (scp, rsync, ftp, bbcp, gridftp) — reproducing the "below 6%" /
//!    "below 5–8%" error bands.

use crate::model::{cpu_coefficient, CpuOnlyModel, FineGrainedModel, PowerModel};
use eadt_endsys::Utilization;
use eadt_sim::stats::{mape, LinearFit, MultiLinearFit};
use eadt_sim::SimRng;
use serde::{Deserialize, Serialize};

/// The synthetic "real machine": what a power meter would read.
///
/// Linear in each component like Eq. 1, plus a quadratic CPU term, a
/// mild square-root flattening on disk, and Gaussian measurement noise —
/// enough structure that a linear model has an irreducible few-percent
/// error, as the paper observes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Scale on the Eq. 2 CPU curve.
    pub cpu_scale: f64,
    /// Quadratic CPU non-linearity strength.
    pub cpu_quadratic: f64,
    /// Memory Watts per %.
    pub c_memory: f64,
    /// Disk Watts per % (before flattening).
    pub c_disk: f64,
    /// NIC Watts per %.
    pub c_nic: f64,
    /// Measurement noise standard deviation, Watts.
    pub noise_watts: f64,
    /// Whole-machine scale (lets an "AMD" twin differ from the "Intel"
    /// calibration box by more than the TDP ratio predicts).
    pub machine_scale: f64,
}

impl GroundTruth {
    /// The Intel-like calibration server of the paper's §2.2 experiments.
    pub fn intel_server() -> Self {
        GroundTruth {
            cpu_scale: 1.0,
            cpu_quadratic: 0.015,
            c_memory: 0.03,
            c_disk: 0.06,
            c_nic: 0.05,
            noise_watts: 0.25,
            machine_scale: 1.0,
        }
    }

    /// An AMD-like remote server: same shape, different scale — and *not*
    /// exactly the Intel/AMD TDP ratio, so the TDP-extended model picks up
    /// the extra 2–3% error the paper reports.
    pub fn amd_server() -> Self {
        GroundTruth {
            machine_scale: 95.0 / 115.0 * 1.035,
            ..GroundTruth::intel_server()
        }
    }

    /// The noise-free expected power for a utilization snapshot.
    pub fn expected_watts(&self, util: &Utilization) -> f64 {
        let cpu_lin = self.cpu_scale * cpu_coefficient(util.active_cores) * util.cpu;
        let cpu_quad = self.cpu_quadratic * (util.cpu / 100.0).powi(2) * util.cpu;
        let disk = self.c_disk * util.disk * (1.0 - 0.15 * (util.disk / 100.0));
        let p = cpu_lin + cpu_quad + self.c_memory * util.memory + disk + self.c_nic * util.nic;
        p * self.machine_scale
    }

    /// One noisy "meter reading".
    pub fn measure(&self, util: &Utilization, rng: &mut SimRng) -> f64 {
        (self.expected_watts(util) + rng.normal(0.0, self.noise_watts)).max(0.0)
    }
}

/// A transfer tool's characteristic utilization mix, per unit of load.
///
/// §2.2 evaluates the models "while transferring datasets using various
/// application-layer transfer tools such as scp, rsync, ftp, bbcp and
/// gridftp"; each stresses the components differently (scp burns CPU on
/// crypto, bbcp/gridftp push the NIC and disk, …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToolProfile {
    /// Tool name.
    pub name: &'static str,
    /// CPU utilization per unit load (0–1 scale; load sweeps 0–100).
    pub cpu_weight: f64,
    /// Memory utilization per unit load.
    pub mem_weight: f64,
    /// Disk utilization per unit load.
    pub disk_weight: f64,
    /// NIC utilization per unit load.
    pub nic_weight: f64,
}

impl ToolProfile {
    /// The five tools of the paper's accuracy experiment.
    ///
    /// scp and rsync burn relatively more CPU per unit of I/O (userspace
    /// crypto/delta work), so their power-per-CPU-point ratio sits slightly
    /// off the pooled CPU-only fit — the reason the paper's CPU model is a
    /// couple of points worse on them than on ftp/bbcp/gridftp.
    pub fn paper_tools() -> [ToolProfile; 5] {
        [
            ToolProfile {
                name: "scp",
                cpu_weight: 0.95,
                mem_weight: 0.35,
                disk_weight: 0.60,
                nic_weight: 0.78,
            },
            ToolProfile {
                name: "rsync",
                cpu_weight: 0.90,
                mem_weight: 0.40,
                disk_weight: 0.62,
                nic_weight: 0.70,
            },
            ToolProfile {
                name: "ftp",
                cpu_weight: 0.60,
                mem_weight: 0.30,
                disk_weight: 0.55,
                nic_weight: 0.46,
            },
            ToolProfile {
                name: "bbcp",
                cpu_weight: 0.68,
                mem_weight: 0.40,
                disk_weight: 0.60,
                nic_weight: 0.54,
            },
            ToolProfile {
                name: "gridftp",
                cpu_weight: 0.72,
                mem_weight: 0.45,
                disk_weight: 0.65,
                nic_weight: 0.58,
            },
        ]
    }

    /// Utilization snapshot at `load` (0–100) on a machine with
    /// `active_cores` busy cores.
    pub fn utilization_at(&self, load: f64, active_cores: u32) -> Utilization {
        let l = load.clamp(0.0, 100.0);
        Utilization {
            cpu: (self.cpu_weight * l).clamp(0.0, 100.0),
            memory: (self.mem_weight * l).clamp(0.0, 100.0),
            disk: (self.disk_weight * l).clamp(0.0, 100.0),
            nic: (self.nic_weight * l).clamp(0.0, 100.0),
            active_cores,
        }
    }

    /// Like [`ToolProfile::utilization_at`], with independent per-component
    /// jitter. Real transfers do not move all four components in lockstep —
    /// disk flushes, ACK bursts and cache pressure each wander on their own
    /// — and that decorrelation is exactly why the paper's CPU-only
    /// predictor correlates at 89.71% rather than ~100%.
    pub fn utilization_at_jittered(
        &self,
        load: f64,
        active_cores: u32,
        rng: &mut SimRng,
    ) -> Utilization {
        let l = load.clamp(0.0, 100.0);
        // CPU tracks the offered load tightly; the I/O components wander
        // more (flush bursts, ACK clumping, cache pressure).
        let mut wander = |w: f64, sigma: f64| (w * l * rng.normal(1.0, sigma)).clamp(0.0, 100.0);
        let mut util = Utilization {
            cpu: wander(self.cpu_weight, 0.08),
            memory: wander(self.mem_weight, 0.25),
            disk: wander(self.disk_weight, 0.25),
            nic: wander(self.nic_weight, 0.25),
            active_cores,
        };
        // Occasional I/O bursts (page-cache flushes, ACK clumps): brief,
        // large excursions that CPU utilization does not track. These are
        // what pulls the CPU↔power correlation down to the paper's ~90%
        // while barely moving the mean absolute error.
        if rng.chance(0.08) {
            util.disk = (util.disk * 2.5 + 25.0).min(100.0);
            util.nic = (util.nic * 2.0 + 10.0).min(100.0);
        }
        util
    }

    /// A deterministic load trace for this tool: a ramp up, a sustained
    /// plateau with jitter, and a ramp down — shaped like a real transfer.
    pub fn load_trace(&self, steps: usize, rng: &mut SimRng) -> Vec<f64> {
        let mut out = Vec::with_capacity(steps);
        for i in 0..steps {
            let phase = i as f64 / steps.max(1) as f64;
            let envelope = if phase < 0.1 {
                phase / 0.1
            } else if phase > 0.9 {
                (1.0 - phase) / 0.1
            } else {
                1.0
            };
            let jitter = rng.normal(0.0, 4.0);
            out.push((85.0 * envelope + jitter).clamp(0.0, 100.0));
        }
        out
    }
}

/// Everything the model-building phase produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationOutcome {
    /// The fitted fine-grained model.
    pub fine_grained: FineGrainedModel,
    /// The fitted CPU-only model (local machine).
    pub cpu_only: CpuOnlyModel,
    /// R² of the fine-grained fit on the calibration sweep.
    pub fine_r_squared: f64,
    /// Pearson correlation between CPU utilization and measured power on
    /// the calibration sweep (the paper's 89.71% figure).
    pub cpu_power_correlation: f64,
}

/// Runs the one-time model-building phase against `truth`.
///
/// `tdp` is the local server's CPU TDP (the anchor for later extension) and
/// `cores` the number of cores kept busy during calibration.
pub fn build_models(truth: &GroundTruth, tdp: f64, cores: u32, seed: u64) -> CalibrationOutcome {
    let mut rng = SimRng::new(seed).fork("power-calibration");
    // Phase 1 — component sweep for the fine-grained model: vary each
    // component across its range in mixed combinations so the regression
    // can separate the four coefficients.
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::new();
    let levels = [0.0, 12.5, 25.0, 37.5, 50.0, 62.5, 75.0, 87.5, 100.0];
    for (i, &cpu) in levels.iter().enumerate() {
        for (j, &other) in levels.iter().enumerate() {
            // Two interleaved lattices decorrelate the components.
            let mem = levels[(i + j) % levels.len()];
            let disk = other;
            let nic = levels[(i * 2 + j) % levels.len()];
            let util = Utilization {
                cpu,
                memory: mem,
                disk,
                nic,
                active_cores: cores,
            };
            let watts = truth.measure(&util, &mut rng);
            rows.push((util.as_vector().to_vec(), watts));
        }
    }
    let fit = MultiLinearFit::fit(&rows, false).expect("calibration sweep is well-conditioned");
    let c_cpu_at_cal = fit.coefficients[0];
    let fine_grained = FineGrainedModel {
        cpu_scale: c_cpu_at_cal / cpu_coefficient(cores),
        c_memory: fit.coefficients[1].max(0.0),
        c_disk: fit.coefficients[2].max(0.0),
        c_nic: fit.coefficients[3].max(0.0),
    };
    // Phase 2 — the CPU-only model is fitted on *transfer* observations
    // (pooled over the tool profiles), the way the paper derives it: during
    // real transfers disk and NIC activity co-vary with CPU, so the single
    // CPU predictor absorbs their power. A through-origin fit matches the
    // intercept-free form of Eq. 3.
    let mut cpu_xs = Vec::new();
    let mut cpu_ys = Vec::new();
    for tool in ToolProfile::paper_tools() {
        // Transfers spend most of their life on the load plateau, so the
        // observations cluster there instead of sweeping 0–100; combined
        // with the per-component wander this is what pushes the CPU↔power
        // correlation into the ~90% band the paper reports.
        let trace = tool.load_trace(60, &mut rng);
        for load in trace {
            if load < 5.0 {
                continue;
            }
            let util = tool.utilization_at_jittered(load, cores, &mut rng);
            let watts = truth.measure(&util, &mut rng);
            cpu_xs.push(util.cpu);
            cpu_ys.push(watts);
        }
    }
    let sxy: f64 = cpu_xs.iter().zip(&cpu_ys).map(|(x, y)| x * y).sum();
    let sxx: f64 = cpu_xs.iter().map(|x| x * x).sum();
    let origin_slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let cpu_only = CpuOnlyModel::local(origin_slope / cpu_coefficient(cores), tdp);
    let cpu_fit = LinearFit::fit(&cpu_xs, &cpu_ys).expect("cpu sweep spans multiple levels");
    CalibrationOutcome {
        fine_grained,
        cpu_only,
        fine_r_squared: fit.r_squared,
        cpu_power_correlation: cpu_fit.r,
    }
}

/// Scores `model` against `truth` on a tool's transfer trace; returns the
/// mean absolute percentage error.
pub fn evaluate_model(
    model: &dyn PowerModel,
    tool: &ToolProfile,
    truth: &GroundTruth,
    cores: u32,
    seed: u64,
) -> f64 {
    let mut rng = SimRng::new(seed).fork("power-evaluation").fork(tool.name);
    let trace = tool.load_trace(240, &mut rng);
    let mut actual = Vec::with_capacity(trace.len());
    let mut predicted = Vec::with_capacity(trace.len());
    for load in trace {
        if load < 5.0 {
            continue; // idle tails are not part of the transfer
        }
        let util = tool.utilization_at_jittered(load, cores, &mut rng);
        actual.push(truth.measure(&util, &mut rng));
        predicted.push(model.power_watts(&util));
    }
    mape(&actual, &predicted)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORES: u32 = 4;
    const INTEL_TDP: f64 = 115.0;
    const AMD_TDP: f64 = 95.0;

    fn calibrated() -> CalibrationOutcome {
        build_models(&GroundTruth::intel_server(), INTEL_TDP, CORES, 42)
    }

    #[test]
    fn calibration_recovers_coefficients_approximately() {
        let out = calibrated();
        let truth = GroundTruth::intel_server();
        assert!(
            (out.fine_grained.c_memory - truth.c_memory).abs() < 0.015,
            "c_mem={}",
            out.fine_grained.c_memory
        );
        assert!(
            (out.fine_grained.c_nic - truth.c_nic).abs() < 0.015,
            "c_nic={}",
            out.fine_grained.c_nic
        );
        // Disk has the flattening non-linearity: fitted value lands below
        // the raw coefficient but in its neighbourhood.
        assert!(
            out.fine_grained.c_disk > 0.03 && out.fine_grained.c_disk < 0.07,
            "c_disk={}",
            out.fine_grained.c_disk
        );
        assert!(out.fine_r_squared > 0.97, "r2={}", out.fine_r_squared);
    }

    #[test]
    fn cpu_power_correlation_is_high_but_imperfect() {
        // The paper reports 89.71% on real transfers. Our pooled per-tool
        // traces scatter around a common slope, so the correlation is high
        // but not perfect.
        let out = calibrated();
        assert!(
            out.cpu_power_correlation > 0.85,
            "r={}",
            out.cpu_power_correlation
        );
        assert!(
            out.cpu_power_correlation < 0.999,
            "r={}",
            out.cpu_power_correlation
        );
    }

    #[test]
    fn fine_grained_error_is_below_6_percent() {
        let out = calibrated();
        let truth = GroundTruth::intel_server();
        for tool in ToolProfile::paper_tools() {
            let e = evaluate_model(&out.fine_grained, &tool, &truth, CORES, 7);
            assert!(e < 6.0, "{}: fine-grained error {e:.2}% ≥ 6%", tool.name);
        }
    }

    #[test]
    fn cpu_only_is_worse_than_fine_grained_on_average() {
        let out = calibrated();
        let truth = GroundTruth::intel_server();
        let mut fine_total = 0.0;
        let mut cpu_total = 0.0;
        for tool in ToolProfile::paper_tools() {
            fine_total += evaluate_model(&out.fine_grained, &tool, &truth, CORES, 7);
            cpu_total += evaluate_model(&out.cpu_only, &tool, &truth, CORES, 7);
        }
        assert!(
            cpu_total > fine_total,
            "cpu-only ({cpu_total:.2}) should trail fine-grained ({fine_total:.2})"
        );
    }

    #[test]
    fn tdp_extension_adds_a_few_percent_error() {
        let out = calibrated();
        let amd_truth = GroundTruth::amd_server();
        let extended = out.cpu_only.extend_to(AMD_TDP);
        let mut local_total = 0.0;
        let mut remote_total = 0.0;
        for tool in ToolProfile::paper_tools() {
            let local_err =
                evaluate_model(&out.cpu_only, &tool, &GroundTruth::intel_server(), CORES, 7);
            let remote_err = evaluate_model(&extended, &tool, &amd_truth, CORES, 7);
            // Extended model degrades but stays in the paper's band (< ~10%).
            assert!(
                remote_err < 12.0,
                "{}: extended error {remote_err:.2}%",
                tool.name
            );
            local_total += local_err;
            remote_total += remote_err;
        }
        // On average the extension cannot beat the locally-fitted model by a
        // wide margin — per-tool biases may cancel the vendor mismatch, but
        // not systematically (paper: extension costs ~2–3 points).
        assert!(remote_total > local_total - 5.0,
            "extension should not systematically improve (remote {remote_total:.2} vs local {local_total:.2})");
    }

    #[test]
    fn ground_truth_is_deterministic_per_seed() {
        let truth = GroundTruth::intel_server();
        let util = ToolProfile::paper_tools()[0].utilization_at(50.0, CORES);
        let mut r1 = SimRng::new(3);
        let mut r2 = SimRng::new(3);
        assert_eq!(truth.measure(&util, &mut r1), truth.measure(&util, &mut r2));
    }

    #[test]
    fn load_trace_has_ramp_and_plateau() {
        let mut rng = SimRng::new(5);
        let trace = ToolProfile::paper_tools()[4].load_trace(100, &mut rng);
        assert_eq!(trace.len(), 100);
        assert!(trace[0] < 30.0, "starts low: {}", trace[0]);
        let mid: f64 = trace[40..60].iter().sum::<f64>() / 20.0;
        assert!(mid > 60.0, "plateau is high: {mid}");
        for v in trace {
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn utilization_at_clamps() {
        let t = ToolProfile::paper_tools()[0];
        let u = t.utilization_at(500.0, CORES);
        assert!(u.cpu <= 100.0);
        let z = t.utilization_at(-5.0, CORES);
        assert_eq!(z.cpu, 0.0);
    }

    #[test]
    fn amd_truth_differs_from_tdp_ratio() {
        // The deliberate 3.5% vendor mismatch that the TDP extension
        // cannot capture.
        let scale = GroundTruth::amd_server().machine_scale;
        assert!((scale - AMD_TDP / INTEL_TDP).abs() > 0.01);
    }
}
