//! The fine-grained (Eq. 1–2) and CPU-only (Eq. 3) power models.

use eadt_endsys::Utilization;
use serde::{Deserialize, Serialize};

/// Eq. 2: the per-utilization-point CPU power coefficient as a function of
/// the number of active cores:
///
/// ```text
/// C_cpu,n = 0.011·n² − 0.082·n + 0.344
/// ```
///
/// The parabola bottoms out near n ≈ 3.7, which is why four-core transfer
/// nodes are most energy-proportional with all four cores busy (the §3
/// observation that "energy consumption per core decreases as the number of
/// active cores increases" up to the core count).
///
/// ```
/// use eadt_power::cpu_coefficient;
/// assert!((cpu_coefficient(1) - 0.273).abs() < 1e-12);
/// assert!(cpu_coefficient(4) < cpu_coefficient(2)); // four cores run cheaper
/// assert!(cpu_coefficient(8) > cpu_coefficient(4)); // … until oversupply
/// ```
pub fn cpu_coefficient(active_cores: u32) -> f64 {
    let n = f64::from(active_cores.max(1));
    0.011 * n * n - 0.082 * n + 0.344
}

/// Per-component split of one power prediction, Watts. Produced by
/// [`PowerModel::power_components`] for the energy-attribution profiler;
/// the component view is approximate (it apportions by the model's own
/// utilization terms) while the phase ledger carries the exact total.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerBreakdown {
    /// CPU share, Watts.
    pub cpu_w: f64,
    /// NIC share, Watts.
    pub nic_w: f64,
    /// Disk share, Watts.
    pub disk_w: f64,
    /// Everything else the model tracks (memory, unmodeled).
    pub other_w: f64,
}

impl PowerBreakdown {
    /// Sum of the four components.
    pub fn total(&self) -> f64 {
        self.cpu_w + self.nic_w + self.disk_w + self.other_w
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &PowerBreakdown) {
        self.cpu_w += other.cpu_w;
        self.nic_w += other.nic_w;
        self.disk_w += other.disk_w;
        self.other_w += other.other_w;
    }
}

/// Anything that predicts instantaneous server power from utilization.
pub trait PowerModel {
    /// Predicted power draw in Watts for the given utilization snapshot.
    fn power_watts(&self, util: &Utilization) -> f64;

    /// The same prediction split by hardware component. The default
    /// books everything under `other_w`; models that know their terms
    /// override this.
    fn power_components(&self, util: &Utilization) -> PowerBreakdown {
        PowerBreakdown {
            other_w: self.power_watts(util),
            ..PowerBreakdown::default()
        }
    }

    /// Short label for reports.
    fn name(&self) -> &str;
}

/// The fine-grained model (Eq. 1):
///
/// ```text
/// P_t = C_cpu,n·u_cpu + C_mem·u_mem + C_disk·u_disk + C_nic·u_nic
/// ```
///
/// All coefficients are Watts per utilization percentage point. The CPU
/// coefficient is `cpu_scale × C_cpu(n)` so a calibration fit can stretch
/// the published curve to a concrete machine while keeping its shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineGrainedModel {
    /// Multiplier on the Eq. 2 CPU curve (1.0 = the published curve).
    pub cpu_scale: f64,
    /// Memory coefficient (W per %).
    pub c_memory: f64,
    /// Disk coefficient (W per %).
    pub c_disk: f64,
    /// NIC coefficient (W per %).
    pub c_nic: f64,
}

impl FineGrainedModel {
    /// The coefficients used throughout the reproduction (calibrated so the
    /// three testbeds land in the paper's Joule range; see DESIGN.md).
    ///
    /// CPU carries most of the dynamic power — the regime in which the
    /// paper's CPU-only model can be accurate at all (its §2.2 correlation
    /// figure is 89.71%).
    pub fn paper_default() -> Self {
        FineGrainedModel {
            cpu_scale: 1.0,
            c_memory: 0.03,
            c_disk: 0.06,
            c_nic: 0.05,
        }
    }

    /// The effective CPU coefficient for `n` active cores.
    pub fn c_cpu(&self, active_cores: u32) -> f64 {
        self.cpu_scale * cpu_coefficient(active_cores)
    }
}

impl PowerModel for FineGrainedModel {
    fn power_watts(&self, util: &Utilization) -> f64 {
        self.c_cpu(util.active_cores) * util.cpu
            + self.c_memory * util.memory
            + self.c_disk * util.disk
            + self.c_nic * util.nic
    }

    fn power_components(&self, util: &Utilization) -> PowerBreakdown {
        PowerBreakdown {
            cpu_w: self.c_cpu(util.active_cores) * util.cpu,
            nic_w: self.c_nic * util.nic,
            disk_w: self.c_disk * util.disk,
            other_w: self.c_memory * util.memory,
        }
    }

    fn name(&self) -> &str {
        "fine-grained"
    }
}

/// The CPU-only model (Eq. 3):
///
/// ```text
/// P_t = (C_cpu,n · u_cpu) × TDP_SR / TDP_SL
/// ```
///
/// `effective_cpu_weight` absorbs the share of total power that tracks CPU
/// utilization on the *local* calibration machine (where the model is
/// built); the TDP ratio then extends it to a remote machine `SR`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuOnlyModel {
    /// Multiplier on the Eq. 2 curve fitted on the local machine. Because
    /// the CPU predictor must also absorb the disk/NIC power it cannot see,
    /// this is larger than the fine-grained `cpu_scale`.
    pub cpu_weight: f64,
    /// TDP of the local (calibration) server, Watts.
    pub local_tdp: f64,
    /// TDP of the server being predicted, Watts.
    pub remote_tdp: f64,
}

impl CpuOnlyModel {
    /// Model for the machine it was calibrated on (TDP ratio = 1).
    pub fn local(cpu_weight: f64, tdp: f64) -> Self {
        CpuOnlyModel {
            cpu_weight,
            local_tdp: tdp,
            remote_tdp: tdp,
        }
    }

    /// Extends this model to a remote server with a different TDP, the
    /// paper's "extendable power model".
    pub fn extend_to(&self, remote_tdp: f64) -> CpuOnlyModel {
        CpuOnlyModel {
            remote_tdp,
            ..*self
        }
    }

    /// The TDP scaling factor `TDP_SR / TDP_SL`.
    pub fn tdp_ratio(&self) -> f64 {
        if self.local_tdp <= 0.0 {
            1.0
        } else {
            self.remote_tdp / self.local_tdp
        }
    }
}

impl PowerModel for CpuOnlyModel {
    fn power_watts(&self, util: &Utilization) -> f64 {
        self.cpu_weight * cpu_coefficient(util.active_cores) * util.cpu * self.tdp_ratio()
    }

    fn power_components(&self, util: &Utilization) -> PowerBreakdown {
        // The CPU-only predictor sees nothing but CPU utilization.
        PowerBreakdown {
            cpu_w: self.power_watts(util),
            ..PowerBreakdown::default()
        }
    }

    fn name(&self) -> &str {
        "cpu-only"
    }
}

/// A serialisable choice of power model — what a monitoring agent would be
/// configured with. Fine-grained needs all four component counters;
/// CPU-only needs just CPU utilization (the restricted-access case Eq. 3
/// exists for).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerModelKind {
    /// The four-component model of Eq. 1.
    FineGrained(FineGrainedModel),
    /// The CPU-only model of Eq. 3 (with TDP extension).
    CpuOnly(CpuOnlyModel),
}

impl PowerModel for PowerModelKind {
    fn power_watts(&self, util: &Utilization) -> f64 {
        match self {
            PowerModelKind::FineGrained(m) => m.power_watts(util),
            PowerModelKind::CpuOnly(m) => m.power_watts(util),
        }
    }

    fn power_components(&self, util: &Utilization) -> PowerBreakdown {
        match self {
            PowerModelKind::FineGrained(m) => m.power_components(util),
            PowerModelKind::CpuOnly(m) => m.power_components(util),
        }
    }

    fn name(&self) -> &str {
        match self {
            PowerModelKind::FineGrained(m) => m.name(),
            PowerModelKind::CpuOnly(m) => m.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn util(cpu: f64, mem: f64, disk: f64, nic: f64, cores: u32) -> Utilization {
        Utilization {
            cpu,
            memory: mem,
            disk,
            nic,
            active_cores: cores,
        }
    }

    #[test]
    fn eq2_matches_published_values() {
        // Spot-check the published quadratic.
        assert!((cpu_coefficient(1) - 0.273).abs() < 1e-12);
        assert!((cpu_coefficient(2) - 0.224).abs() < 1e-12);
        assert!((cpu_coefficient(4) - 0.192).abs() < 1e-12);
        assert!((cpu_coefficient(8) - 0.392).abs() < 1e-12);
    }

    #[test]
    fn eq2_minimum_is_near_four_cores() {
        // d/dn = 0 at n = 0.082/0.022 ≈ 3.73.
        let c3 = cpu_coefficient(3);
        let c4 = cpu_coefficient(4);
        let c5 = cpu_coefficient(5);
        assert!(c4 < c3);
        assert!(c4 < c5);
    }

    #[test]
    fn zero_cores_is_guarded() {
        assert_eq!(cpu_coefficient(0), cpu_coefficient(1));
    }

    #[test]
    fn fine_grained_is_linear_in_each_component() {
        let m = FineGrainedModel::paper_default();
        let p0 = m.power_watts(&util(0.0, 0.0, 0.0, 0.0, 1));
        assert_eq!(p0, 0.0);
        let p = m.power_watts(&util(50.0, 40.0, 30.0, 20.0, 4));
        let expect = 0.192 * 50.0 + 0.03 * 40.0 + 0.06 * 30.0 + 0.05 * 20.0;
        assert!((p - expect).abs() < 1e-9);
    }

    #[test]
    fn fine_grained_full_tilt_is_realistic_server_power() {
        // A maxed-out 4-core transfer node should land in the tens of
        // Watts of *dynamic* power, not kW.
        let m = FineGrainedModel::paper_default();
        let p = m.power_watts(&util(100.0, 100.0, 100.0, 100.0, 4));
        assert!((20.0..80.0).contains(&p), "p={p}");
    }

    #[test]
    fn cpu_scale_stretches_curve() {
        let m = FineGrainedModel {
            cpu_scale: 2.0,
            ..FineGrainedModel::paper_default()
        };
        assert!((m.c_cpu(1) - 0.546).abs() < 1e-12);
    }

    #[test]
    fn cpu_only_ignores_other_components() {
        let m = CpuOnlyModel::local(1.5, 115.0);
        let a = m.power_watts(&util(60.0, 0.0, 0.0, 0.0, 4));
        let b = m.power_watts(&util(60.0, 90.0, 90.0, 90.0, 4));
        assert_eq!(a, b);
    }

    #[test]
    fn tdp_extension_scales_linearly() {
        // Intel 115 W → AMD 95 W: predictions shrink by the TDP ratio.
        let local = CpuOnlyModel::local(1.5, 115.0);
        let remote = local.extend_to(95.0);
        let u = util(70.0, 0.0, 0.0, 0.0, 4);
        let ratio = remote.power_watts(&u) / local.power_watts(&u);
        assert!((ratio - 95.0 / 115.0).abs() < 1e-12);
    }

    #[test]
    fn zero_local_tdp_does_not_blow_up() {
        let m = CpuOnlyModel {
            cpu_weight: 1.0,
            local_tdp: 0.0,
            remote_tdp: 95.0,
        };
        assert_eq!(m.tdp_ratio(), 1.0);
    }

    #[test]
    fn model_names() {
        assert_eq!(FineGrainedModel::paper_default().name(), "fine-grained");
        assert_eq!(CpuOnlyModel::local(1.0, 100.0).name(), "cpu-only");
    }

    #[test]
    fn component_split_sums_to_the_total_prediction() {
        let u = util(50.0, 40.0, 30.0, 20.0, 4);
        let fine = FineGrainedModel::paper_default();
        let parts = fine.power_components(&u);
        assert!((parts.total() - fine.power_watts(&u)).abs() < 1e-12);
        assert!((parts.cpu_w - 0.192 * 50.0).abs() < 1e-9);
        assert!((parts.nic_w - 0.05 * 20.0).abs() < 1e-12);
        assert!((parts.disk_w - 0.06 * 30.0).abs() < 1e-12);
        assert!((parts.other_w - 0.03 * 40.0).abs() < 1e-12);

        let cpu = CpuOnlyModel::local(1.4, 115.0);
        let parts = cpu.power_components(&u);
        assert_eq!(parts.cpu_w, cpu.power_watts(&u));
        assert_eq!(parts.nic_w + parts.disk_w + parts.other_w, 0.0);

        let kind = PowerModelKind::FineGrained(fine);
        assert_eq!(kind.power_components(&u), fine.power_components(&u));
    }

    #[test]
    fn kind_dispatches_to_inner_model() {
        let u = util(60.0, 40.0, 30.0, 20.0, 4);
        let fine = FineGrainedModel::paper_default();
        let kind = PowerModelKind::FineGrained(fine);
        assert_eq!(kind.power_watts(&u), fine.power_watts(&u));
        assert_eq!(kind.name(), "fine-grained");
        let cpu = CpuOnlyModel::local(1.4, 115.0);
        let kind = PowerModelKind::CpuOnly(cpu);
        assert_eq!(kind.power_watts(&u), cpu.power_watts(&u));
        assert_eq!(kind.name(), "cpu-only");
    }
}
