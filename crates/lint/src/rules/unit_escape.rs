//! Unit-escape lint: raw-`f64` arithmetic must not mix unit families.
//!
//! The `eadt-sim` unit newtypes (`Bytes`, `Rate`, `SimTime`,
//! `SimDuration`) and the power meters keep dimensions straight at the
//! type level — until someone extracts raw `f64`s and adds seconds to
//! megabits. The escape hatch methods are easy to spot (`as_secs_f64`,
//! `as_mbps`, `energy_joules`, …), so this rule tracks which *unit
//! family* a raw subexpression came from and flags `+`/`-` between
//! different families inside one function.
//!
//! Multiplication and division are exempt (products legitimately change
//! dimension: `rate * time = volume`), as are values passing through
//! casts or unknown calls — the rule only claims what it can prove from
//! the extractor call itself.

use super::Violation;
use crate::parser::Expr;

/// Crates whose non-test code the rule applies to. The CLI is excluded:
/// its `serde_json::Value::as_f64` would collide with the `Bytes`
/// extractor by name.
pub const CHECKED_CRATES: &[&str] = &["core", "transfer", "net", "power", "netenergy", "fleet"];

/// Extractor method → unit family.
const FAMILIES: &[(&str, &str)] = &[
    ("as_secs_f64", "time-seconds"),
    ("as_f64", "bytes"),
    ("as_mb", "bytes"),
    ("as_gb", "bytes"),
    ("as_bps", "rate"),
    ("as_mbps", "rate"),
    ("as_gbps", "rate"),
    ("energy_joules", "energy-joules"),
    ("energy_between", "energy-joules"),
    ("mean_watts", "power-watts"),
    ("idle_watts", "power-watts"),
];

/// Methods transparent to the unit family of their receiver.
const TRANSPARENT: &[&str] = &["min", "max", "abs", "clamp", "floor", "ceil", "round"];

/// Runs the unit-escape lint over one function body.
pub fn check_body(path: &str, body: &Expr) -> Vec<Violation> {
    let mut out = Vec::new();
    body.visit(&mut |e| {
        if let Expr::Binary { op, lhs, rhs, line } = e {
            if op == "+" || op == "-" {
                if let (Some(a), Some(b)) = (family_of(lhs), family_of(rhs)) {
                    if a != b {
                        out.push(Violation {
                            rule: "unit-escape",
                            path: path.to_string(),
                            line: *line,
                            message: format!(
                                "`{op}` mixes unit families `{a}` and `{b}` as raw f64: keep \
                                 values in their newtypes, or convert explicitly before \
                                 combining (DESIGN.md §15)"
                            ),
                        });
                    }
                }
            }
        }
    });
    out
}

/// The unit family a subexpression provably carries, if any.
///
/// Descends through unary ops, parens and [`TRANSPARENT`] methods;
/// stops (returns `None`) at `*`/`/`, casts, literals and calls it does
/// not know — those change or launder the dimension.
fn family_of(e: &Expr) -> Option<&'static str> {
    match e {
        Expr::MethodCall { method, recv, .. } => {
            if let Some((_, fam)) = FAMILIES.iter().find(|(m, _)| m == method) {
                return Some(fam);
            }
            if TRANSPARENT.contains(&method.as_str()) {
                return family_of(recv);
            }
            None
        }
        Expr::Unary { inner, .. } => family_of(inner),
        Expr::Binary { op, lhs, rhs, .. } if op == "+" || op == "-" => {
            // A same-family sum keeps the family; a mixed one is already
            // flagged at its own node.
            let (a, b) = (family_of(lhs)?, family_of(rhs)?);
            (a == b).then_some(a)
        }
        Expr::Seq { exprs, .. } if exprs.len() == 1 => family_of(&exprs[0]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    fn run(src: &str) -> Vec<Violation> {
        let pf = parse_file(&tokenize(src));
        let mut out = Vec::new();
        pf.visit_items(&mut |it, _| {
            if let Some(body) = &it.body {
                out.extend(check_body("x.rs", body));
            }
        });
        out
    }

    #[test]
    fn mixing_time_and_rate_is_flagged() {
        let src = "fn f(t: SimDuration, r: Rate) -> f64 { t.as_secs_f64() + r.as_mbps() }";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("time-seconds"));
        assert!(v[0].message.contains("rate"));
    }

    #[test]
    fn same_family_arithmetic_passes() {
        let src = "fn f(a: Bytes, b: Bytes) -> f64 { a.as_f64() + b.as_f64() - a.as_mb() }";
        // `as_f64` and `as_mb` are both bytes-family; mixing *scales*
        // within a family is a different bug class the rule does not
        // claim.
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn products_across_families_pass() {
        let src = "fn f(t: SimDuration, r: Rate) -> f64 { r.as_bps() * t.as_secs_f64() / 8.0 }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn transparent_methods_keep_the_family() {
        let src = "fn f(a: Rate, t: SimDuration) -> f64 { a.as_bps().max(0.0) - t.as_secs_f64() }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn laundered_values_are_not_claimed() {
        // Passing through an unknown call drops the family: no proof, no
        // finding.
        let src = "fn f(t: SimDuration, r: Rate) -> f64 { scale(t.as_secs_f64()) + r.as_bps() }";
        assert!(run(src).is_empty());
    }
}
