//! Robustness lints.
//!
//! The crates on the transfer hot path (`core`, `transfer`, `telemetry`)
//! must not abort: a panic mid-slice tears down an entire experiment
//! sweep and, in the ROADMAP's production framing, an entire service
//! shard. Library code there returns typed errors or picks a documented
//! fallback; `unwrap()` / `expect()` / `panic!` are reserved for test
//! code. Known stragglers burn down through `lint-allow.toml`, each with
//! a reason.

use super::{test_code_mask, Violation};
use crate::lexer::{Spanned, Tok};

/// Crates whose non-test library code the rule applies to.
pub const CHECKED_CRATES: &[&str] = &["core", "transfer", "telemetry"];

/// Runs the robustness lints over one file's token stream. Token spans
/// gated behind `#[cfg(test)]` / `#[test]` are skipped.
pub fn check(path: &str, toks: &[Spanned]) -> Vec<Violation> {
    let mask = test_code_mask(toks);
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let method_call = i > 0 && toks[i - 1].is_punct('.');
        let finding = match name.as_str() {
            "unwrap" if method_call && is_call(toks, i) => Some(
                "`.unwrap()` in library code: return a typed error or pick a documented fallback",
            ),
            "expect" if method_call && is_call(toks, i) => Some(
                "`.expect()` in library code: return a typed error or pick a documented fallback",
            ),
            "panic" if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) => {
                Some("`panic!` in library code: return a typed error instead of aborting")
            }
            _ => None,
        };
        if let Some(message) = finding {
            out.push(Violation {
                rule: "robustness",
                path: path.to_string(),
                line: t.line,
                message: message.into(),
            });
        }
    }
    out
}

/// True when the identifier at `i` opens a call (`name(`), which keeps
/// field accesses and paths like `policy.unwrap_config` unflagged (those
/// are different identifiers anyway) and skips bare mentions in attrs.
fn is_call(toks: &[Spanned], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct('('))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(src: &str) -> Vec<Violation> {
        check("crates/core/src/x.rs", &tokenize(src))
    }

    #[test]
    fn flags_unwrap_expect_panic_in_library_code() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a + b == 0 { panic!("impossible"); }
                a
            }
        "#;
        let v = run(src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert_eq!(v[2].line, 5);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            fn lib() -> u32 { 1 }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert_eq!(super::lib(), Some(1).unwrap()); }
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn fallbacks_and_lookalikes_pass() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap_or(0);
                let b = x.unwrap_or_else(|| 1);
                let s = "call .unwrap() they said"; // strings and comments are fine
                a + b
            }
        "#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn asserts_are_not_flagged() {
        // assert!/debug_assert! state contracts; the rule targets aborts
        // used as error handling.
        assert!(run("fn f(n: u32) { assert!(n > 0); debug_assert_eq!(n, n); }").is_empty());
    }
}
