//! Panic-reachability: the PR-3 no-panic rule, made transitive.
//!
//! The token-level robustness rule bans `unwrap`/`expect`/`panic!` in
//! the non-test code of the hot-path crates — but a panic two calls
//! away in `net` or `power` tears down an engine run just as surely.
//! This rule walks the conservative call graph from the workspace's
//! crash-sensitive roots down to every panic *sink* and reports each
//! reachable one with a sample call path.
//!
//! **Roots** (the surfaces whose liveness the repo guarantees):
//!
//! * `Engine::run_controlled` — the engine entry every algorithm runs
//!   through (DESIGN.md §12);
//! * `Session::run_one` / `execute_job` — the fleet workers (§14);
//! * `resume_verified` — journal-verified checkpoint recovery (§13).
//!
//! **Sinks**: `.unwrap()` / `.expect(…)` calls, `panic!` invocations,
//! and indexing whose index expression computes (contains arithmetic or
//! a call) — plain `v[i]`/`v[0]` stays exempt, `tail[replayed.len()]`
//! does not.
//!
//! **Allowlisting** is per-sink (rule `panic-reach`, matched on the sink
//! line like any other rule) or per-edge (rule `panic-reach-edge`: the
//! entry's `path`/`context` name a *call site*, and the walk never
//! crosses that edge — e.g. the fleet's `catch_unwind`-wrapped worker
//! call, where a panic is caught and booked as a `JobFailed` outcome).

use super::Violation;
use crate::callgraph::CallGraph;
use crate::parser::Expr;
use crate::symbols::SymbolTable;

/// The crash-sensitive roots: `(file, fn name)`.
pub const ROOTS: &[(&str, &str)] = &[
    ("crates/transfer/src/engine/mod.rs", "run_controlled"),
    ("crates/fleet/src/session.rs", "run_one"),
    ("crates/fleet/src/session.rs", "execute_job"),
    ("crates/ckpt/src/recover.rs", "resume_verified"),
];

/// Outcome of the reachability walk.
pub struct ReachReport {
    /// Reachable panic sinks that are not edge-severed.
    pub violations: Vec<Violation>,
    /// One pseudo-violation per allowlist edge actually severed, so the
    /// staleness check sees `panic-reach-edge` entries as live.
    pub severed_edges: Vec<Violation>,
}

/// Runs the reachability walk. `edge_allow` holds the
/// `panic-reach-edge` entries as `(path, context)`; `line_text` resolves
/// `(file, line)` to source text for edge matching.
pub fn check(
    table: &SymbolTable,
    graph: &CallGraph,
    edge_allow: &[(String, String)],
    mut line_text: impl FnMut(&str, u32) -> String,
) -> ReachReport {
    let mut report = ReachReport {
        violations: Vec::new(),
        severed_edges: Vec::new(),
    };
    let mut roots = Vec::new();
    for (file, name) in ROOTS {
        let found: Vec<usize> = table
            .fns
            .iter()
            .filter(|f| f.file == *file && f.name == *name && !f.test_only)
            .map(|f| f.id)
            .collect();
        if found.is_empty() {
            report.violations.push(Violation {
                rule: "panic-reach",
                path: file.to_string(),
                line: 0,
                message: format!(
                    "root `{name}` not found — the panic-reachability walk lost a guaranteed \
                     surface; update ROOTS in panic_reach.rs if it moved"
                ),
            });
        }
        roots.extend(found);
    }

    // Sever allowlisted edges, recording which entries fired.
    let mut fired = vec![false; edge_allow.len()];
    let reached = graph.reach(&roots, |e| {
        let caller = table.def(e.caller);
        let mut cut = false;
        for (k, (path, context)) in edge_allow.iter().enumerate() {
            if caller.file == *path
                && (context.is_empty() || line_text(&caller.file, e.line).contains(context))
            {
                fired[k] = true;
                cut = true;
            }
        }
        cut
    });
    for (k, (path, context)) in edge_allow.iter().enumerate() {
        if fired[k] {
            report.severed_edges.push(Violation {
                rule: "panic-reach-edge",
                path: path.clone(),
                line: 0,
                message: format!("call-graph edge severed (context: `{context}`)"),
            });
        }
    }

    // Nested helper fns are reachable both as their own def and inlined
    // in their parent's body (parser.rs), so the same sink can surface
    // twice — dedup by location.
    let mut seen = std::collections::BTreeSet::new();
    for &id in reached.keys() {
        let def = table.def(id);
        if def.test_only {
            continue;
        }
        let Some(body) = def.body else { continue };
        let path_str = graph.sample_path(table, &reached, id);
        for (line, what) in sinks(&table.bodies[body]) {
            if !seen.insert((def.file.clone(), line, what.clone())) {
                continue;
            }
            report.violations.push(Violation {
                rule: "panic-reach",
                path: def.file.clone(),
                line,
                message: format!(
                    "{what} reachable from a guaranteed surface (path: {path_str}): return a \
                     typed error or allowlist with a safety argument"
                ),
            });
        }
    }
    report
}

/// Collects panic sinks in a body as `(line, description)`.
pub fn sinks(body: &Expr) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    body.visit(&mut |e| match e {
        Expr::MethodCall { method, line, .. } if method == "unwrap" || method == "expect" => {
            out.push((*line, format!("`.{method}()`")));
        }
        Expr::Macro { name, line, .. } if name == "panic" => {
            out.push((*line, "`panic!`".to_string()));
        }
        Expr::Index { index, line, .. } if index_computes(index) => {
            out.push((
                *line,
                "indexing with a computed index (out-of-bounds panics)".to_string(),
            ));
        }
        _ => {}
    });
    out
}

/// True when an index expression computes: contains arithmetic or any
/// call. `v[i]`, `v[0]` and `v[*p]` stay exempt — bounds there are
/// locally evident — while `v[i + 1]` and `v[xs.len()]` are sinks.
fn index_computes(index: &Expr) -> bool {
    let mut computes = false;
    index.visit(&mut |e| match e {
        Expr::Binary { op, .. } if matches!(op.as_str(), "+" | "-" | "*" | "/" | "%") => {
            computes = true;
        }
        Expr::Call { .. } | Expr::MethodCall { .. } => computes = true,
        _ => {}
    });
    computes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    fn setup(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let mut t = SymbolTable::default();
        for (path, src) in files {
            t.add_file("x", path, false, &parse_file(&tokenize(src)));
        }
        let g = CallGraph::build(&t);
        (t, g)
    }

    const ENGINE: &str = "crates/transfer/src/engine/mod.rs";

    #[test]
    fn transitive_unwrap_is_reported_with_path() {
        let (t, g) = setup(&[
            (
                ENGINE,
                "struct Engine;\nimpl Engine { pub fn run_controlled(&self) { helper(); } }\nfn helper() { deep(); }\nfn deep(x: Option<u32>) { x.unwrap(); }",
            ),
            ("crates/fleet/src/session.rs", "fn run_one() {}\nfn execute_job() {}"),
            ("crates/ckpt/src/recover.rs", "pub fn resume_verified() {}"),
        ]);
        let r = check(&t, &g, &[], |_, _| String::new());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0]
            .message
            .contains("run_controlled -> helper -> deep"));
    }

    #[test]
    fn unreachable_unwrap_is_not_reported() {
        let (t, g) = setup(&[
            (
                ENGINE,
                "struct Engine;\nimpl Engine { pub fn run_controlled(&self) {} }\nfn stray(x: Option<u32>) { x.unwrap(); }",
            ),
            ("crates/fleet/src/session.rs", "fn run_one() {}\nfn execute_job() {}"),
            ("crates/ckpt/src/recover.rs", "pub fn resume_verified() {}"),
        ]);
        let r = check(&t, &g, &[], |_, _| String::new());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn severed_edge_stops_the_walk_and_is_recorded() {
        let (t, g) = setup(&[
            (
                ENGINE,
                "struct Engine;\nimpl Engine { pub fn run_controlled(&self) { guarded(); } }\nfn guarded(x: Option<u32>) { x.unwrap(); }",
            ),
            ("crates/fleet/src/session.rs", "fn run_one() {}\nfn execute_job() {}"),
            ("crates/ckpt/src/recover.rs", "pub fn resume_verified() {}"),
        ]);
        let allow = vec![(ENGINE.to_string(), "guarded(".to_string())];
        let r = check(&t, &g, &allow, |_, _| "guarded();".to_string());
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.severed_edges.len(), 1);
    }

    #[test]
    fn computed_index_is_a_sink_plain_index_is_not() {
        let (t, g) = setup(&[
            (
                ENGINE,
                "struct Engine;\nimpl Engine { pub fn run_controlled(&self, v: &[u32], i: usize) { let a = v[i]; let b = v[i + 1]; } }",
            ),
            ("crates/fleet/src/session.rs", "fn run_one() {}\nfn execute_job() {}"),
            ("crates/ckpt/src/recover.rs", "pub fn resume_verified() {}"),
        ]);
        let r = check(&t, &g, &[], |_, _| String::new());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains("computed index"));
    }

    #[test]
    fn missing_root_degrades_loudly() {
        let (t, g) = setup(&[("crates/other/src/lib.rs", "fn nothing() {}")]);
        let r = check(&t, &g, &[], |_, _| String::new());
        assert_eq!(r.violations.len(), ROOTS.len());
        assert!(r.violations[0].message.contains("root"));
    }
}
