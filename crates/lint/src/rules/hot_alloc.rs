//! Hot-alloc lint: the slice kernel's zero-allocation contract, made
//! structural.
//!
//! The SoA refactor (DESIGN.md §17) moved every per-slice buffer into
//! the engine-owned `SliceArena`, and the `perf_gate` counting-allocator
//! test proves the steady-state slice loop performs **zero** heap
//! allocations at runtime. That proof is statistical (a measured window
//! of one scenario); this rule is the syntactic backstop: inside the
//! configured hot functions — the slice kernel, its per-channel helpers,
//! the fair-share and placement kernels — the allocating constructs
//! `Vec::new`, `vec![…]`, `.collect()` and `Box::new` are flagged
//! outright.
//!
//! Cold allocations that legitimately live *inside* a hot function
//! (once-per-run state, the halt-checkpoint branch, the resume rebuild)
//! burn down explicitly through `lint-allow.toml` entries whose context
//! pins the exact line, so a new allocation cannot hide behind an old
//! exemption.

use super::Violation;
use crate::parser::Expr;

/// The hot-function list: `(repo-relative path, function name)`.
///
/// Everything the per-slice path executes: the kernel itself, the
/// per-chunk/per-channel helpers it calls every slice, the fair-share
/// solver and the placement kernels. Additions here should come with a
/// `perf_gate` scenario that actually drives the new function.
pub const HOT_FUNCTIONS: &[(&str, &str)] = &[
    ("crates/transfer/src/engine/mod.rs", "run_controlled_in"),
    ("crates/transfer/src/engine/mod.rs", "rebalance_targets"),
    ("crates/transfer/src/engine/mod.rs", "busiest_chunk"),
    ("crates/transfer/src/engine/mod.rs", "sync_chunk_channels"),
    ("crates/transfer/src/engine/mod.rs", "advance_channel"),
    ("crates/transfer/src/engine/mod.rs", "assign_servers_into"),
    ("crates/transfer/src/engine/mod.rs", "apply_disk_fairness"),
    ("crates/transfer/src/engine/mod.rs", "steady_move_bound"),
    ("crates/transfer/src/engine/mod.rs", "site_power"),
    ("crates/net/src/fair.rs", "fair_share_into"),
    ("crates/endsys/src/site.rs", "place_channels_into"),
    ("crates/endsys/src/site.rs", "place_channels_masked_into"),
];

/// True when `(path, fn_name)` is on the hot list.
pub fn is_hot(path: &str, fn_name: &str) -> bool {
    HOT_FUNCTIONS.contains(&(path, fn_name))
}

/// Flags every allocating construct in one (hot) function body.
pub fn check_body(path: &str, body: &Expr) -> Vec<Violation> {
    let mut out = Vec::new();
    body.visit(&mut |e| match e {
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if path_ends_with(segs, "Vec", "new") {
                    flag(path, *line, "`Vec::new`", &mut out);
                } else if path_ends_with(segs, "Box", "new") {
                    flag(path, *line, "`Box::new`", &mut out);
                }
            }
        }
        Expr::Macro { name, line, .. } if name == "vec" => {
            flag(path, *line, "`vec![…]`", &mut out);
        }
        Expr::MethodCall { method, line, .. } if method == "collect" => {
            flag(path, *line, "`.collect()`", &mut out);
        }
        _ => {}
    });
    out
}

/// True when the path's last two segments are `a::b` (or the path is
/// exactly `b` preceded by `a`, e.g. `std::vec::Vec::new`).
fn path_ends_with(segs: &[String], a: &str, b: &str) -> bool {
    let n = segs.len();
    n >= 2 && segs[n - 2] == a && segs[n - 1] == b
}

fn flag(path: &str, line: u32, construct: &str, out: &mut Vec<Violation>) {
    out.push(Violation {
        rule: "hot-alloc",
        path: path.to_string(),
        line,
        message: format!(
            "{construct} in a hot function: the slice kernel must not allocate — reuse a \
             `SliceArena` buffer or an `*_into` variant (DESIGN.md §17); cold paths \
             (halt/resume/once-per-run) burn down via lint-allow.toml"
        ),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    fn run(src: &str) -> Vec<Violation> {
        let pf = parse_file(&tokenize(src));
        let mut out = Vec::new();
        pf.visit_items(&mut |it, stack| {
            if stack
                .iter()
                .any(|p| matches!(p.kind, crate::parser::ItemKind::Fn))
            {
                return;
            }
            if let Some(body) = &it.body {
                out.extend(check_body("x.rs", body));
            }
        });
        out
    }

    #[test]
    fn flags_all_four_constructs() {
        let src = r#"
            fn kernel(n: usize) {
                let a: Vec<u32> = Vec::new();
                let b = vec![0u8; n];
                let c: Vec<u32> = (0..n).map(|i| i as u32).collect();
                let d = Box::new(a);
            }
        "#;
        let v = run(src);
        assert_eq!(v.len(), 4, "{v:?}");
        assert!(v[0].message.contains("`Vec::new`"));
        assert!(v[1].message.contains("`vec!"));
        assert!(v[2].message.contains("`.collect()`"));
        assert!(v[3].message.contains("`Box::new`"));
    }

    #[test]
    fn flags_fully_qualified_paths_and_closures() {
        let src = r#"
            fn kernel(n: usize) {
                let f = || std::vec::Vec::new();
                let g = std::boxed::Box::new(0u8);
            }
        "#;
        assert_eq!(run(src).len(), 2);
    }

    #[test]
    fn arena_reuse_passes() {
        let src = r#"
            fn kernel(arena: &mut SliceArena, demands: &[f64]) {
                arena.grants.clear();
                arena.grants.extend_from_slice(demands);
                fair_share_into(&arena.demands, cap, &mut arena.grants, &mut arena.fair);
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn other_news_pass() {
        // Non-allocating constructors stay legal: the rule targets the
        // four named allocating constructs, not `new` generally.
        let src = "fn kernel() { let t = TimeSeries::new(); let s = String::new(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn hot_list_lookup_matches_exactly() {
        assert!(is_hot("crates/net/src/fair.rs", "fair_share_into"));
        assert!(!is_hot("crates/net/src/fair.rs", "fair_share"));
        assert!(!is_hot("crates/net/src/other.rs", "fair_share_into"));
    }
}
