//! FP-order lints: machine-checking the float-determinism conventions.
//!
//! Every bit-identical guarantee in the repo (journal replay, macro-step
//! equivalence, fleet rollups) assumes floating-point operations happen
//! in a fixed order with fixed precision. Three conventions keep that
//! true, and this rule makes each structural instead of reviewed-for:
//!
//! * **total order comparators** — `partial_cmp` inside a
//!   `sort_by`/`max_by`/`min_by`/`binary_search_by` comparator either
//!   panics on NaN (via `unwrap`) or silently reorders (via
//!   `unwrap_or`); `f64::total_cmp` is the convention. Checked
//!   workspace-wide, tests included — a test that sorts with
//!   `partial_cmp` is exactly how a flaky comparison sneaks in.
//! * **no float accumulation over unordered iterators** — `sum`/`fold`/
//!   `reduce`/`product` of floats over `par_iter`-family or `read_dir`
//!   streams depends on reduction order; reduce sequentially or over an
//!   index-ordered collection instead.
//! * **no float narrowing in hot paths** — an `as f32` cast in
//!   engine/net/power code quietly halves precision and is never part
//!   of the simulation's numeric contract.

use super::Violation;
use crate::parser::Expr;

/// Crates whose non-test code the narrowing sub-rule applies to (the
/// numeric hot paths feeding bit-identical artifacts).
pub const HOT_CRATES: &[&str] = &["core", "transfer", "net", "power", "netenergy", "sim"];

/// Comparator-taking methods whose argument must use a total order.
const COMPARATOR_METHODS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "partition_point_by",
];

/// Accumulator methods order-sensitive for floats.
const ACCUMULATORS: &[&str] = &["sum", "product", "fold", "reduce"];

/// Iterator sources with no deterministic order guarantee.
const UNORDERED_SOURCES: &[&str] = &["par_iter", "into_par_iter", "par_bridge", "read_dir"];

/// Unit-extractor methods that mark a value as float-typed (shared with
/// the unit-escape rule's family table).
const FLOAT_EXTRACTORS: &[&str] = &[
    "as_secs_f64",
    "as_f64",
    "as_mb",
    "as_gb",
    "as_bps",
    "as_mbps",
    "as_gbps",
    "energy_joules",
    "energy_between",
    "mean_watts",
    "idle_watts",
];

/// Runs the fp-order lints over one function body.
///
/// `check_narrowing` is true for non-test code in [`HOT_CRATES`].
pub fn check_body(path: &str, body: &Expr, check_narrowing: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    body.visit(&mut |e| match e {
        Expr::MethodCall {
            method,
            args,
            recv,
            turbofish,
            ..
        } => {
            if COMPARATOR_METHODS.contains(&method.as_str()) {
                for a in args {
                    flag_partial_cmp(path, a, method, &mut out);
                }
            }
            if ACCUMULATORS.contains(&method.as_str())
                && chain_has_unordered_source(recv)
                && is_float_accumulation(turbofish, args)
            {
                out.push(Violation {
                    rule: "fp-order",
                    path: path.to_string(),
                    line: e.line(),
                    message: format!(
                        "float `{method}` over an unordered iterator: reduction order is \
                             non-deterministic; collect in job/index order first, then reduce \
                             sequentially (DESIGN.md §15)"
                    ),
                });
            }
        }
        Expr::Cast { ty, line, .. } if check_narrowing && ty == "f32" => {
            out.push(Violation {
                rule: "fp-order",
                path: path.to_string(),
                line: *line,
                message: "`as f32` narrowing in a numeric hot path: precision loss is not \
                              part of the simulation contract; stay in f64 (DESIGN.md §15)"
                    .into(),
            });
        }
        _ => {}
    });
    out
}

/// Flags `partial_cmp` calls anywhere inside a comparator argument.
fn flag_partial_cmp(path: &str, arg: &Expr, comparator: &str, out: &mut Vec<Violation>) {
    arg.visit(&mut |e| {
        if let Expr::MethodCall { method, line, .. } = e {
            if method == "partial_cmp" {
                out.push(Violation {
                    rule: "fp-order",
                    path: path.to_string(),
                    line: *line,
                    message: format!(
                        "`partial_cmp` inside `{comparator}`: NaN either panics or silently \
                         reorders; use `f64::total_cmp` (the workspace total-order convention, \
                         DESIGN.md §15)"
                    ),
                });
            }
        }
    });
}

/// True when the receiver chain reaches one of [`UNORDERED_SOURCES`].
fn chain_has_unordered_source(recv: &Expr) -> bool {
    let mut found = false;
    recv.visit(&mut |e| match e {
        Expr::MethodCall { method, .. } if UNORDERED_SOURCES.contains(&method.as_str()) => {
            found = true;
        }
        Expr::Path { segs, .. }
            if segs
                .last()
                .is_some_and(|s| UNORDERED_SOURCES.contains(&s.as_str())) =>
        {
            found = true;
        }
        _ => {}
    });
    found
}

/// True when the accumulation is float-typed: a `f32`/`f64` turbofish, a
/// float-literal initial value, or a unit extractor in the closure.
fn is_float_accumulation(turbofish: &str, args: &[Expr]) -> bool {
    if turbofish.contains("f64") || turbofish.contains("f32") {
        return true;
    }
    let mut float = false;
    for a in args {
        a.visit(&mut |e| match e {
            Expr::Lit { float: true, .. } => float = true,
            Expr::MethodCall { method, .. } if FLOAT_EXTRACTORS.contains(&method.as_str()) => {
                float = true;
            }
            _ => {}
        });
    }
    float
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    fn run(src: &str, narrowing: bool) -> Vec<Violation> {
        let pf = parse_file(&tokenize(src));
        let mut out = Vec::new();
        pf.visit_items(&mut |it, _| {
            if let Some(body) = &it.body {
                out.extend(check_body("x.rs", body, narrowing));
            }
        });
        out
    }

    #[test]
    fn partial_cmp_in_sort_by_is_flagged() {
        let src = r#"
            fn f(v: &mut Vec<f64>) {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            }
        "#;
        let v = run(src, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("total_cmp"));
    }

    #[test]
    fn total_cmp_sort_passes() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn partial_cmp_outside_comparators_passes() {
        // NaN-rejecting validation is the legitimate use of partial_cmp.
        let src = "fn ok(x: f64) -> bool { x.partial_cmp(&0.0) == Some(Ordering::Greater) }";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn float_parallel_sum_is_flagged() {
        let src = "fn f(v: &[f64]) -> f64 { v.par_iter().map(|x| x * 2.0).sum::<f64>() }";
        let v = run(src, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("non-deterministic"));
    }

    #[test]
    fn float_fold_over_par_iter_is_flagged() {
        let src = "fn f(v: &[Bytes]) -> f64 { v.into_par_iter().fold(0.0, |a, b| a + b.as_f64()) }";
        assert_eq!(run(src, false).len(), 1);
    }

    #[test]
    fn sequential_float_sum_passes() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn integer_parallel_sum_passes() {
        let src = "fn f(v: &[u64]) -> u64 { v.par_iter().sum::<u64>() }";
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn f32_narrowing_is_flagged_only_in_hot_paths() {
        let src = "fn f(x: f64) -> f32 { x as f32 }";
        assert_eq!(run(src, true).len(), 1);
        assert!(run(src, false).is_empty());
    }
}
