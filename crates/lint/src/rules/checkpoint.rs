//! Checkpoint schema-coverage lint.
//!
//! A checkpoint is only crash-safe if it captures *all* in-flight engine
//! state; a field added to `EngineCheckpoint` without a schema-table
//! entry (or a controller snapshot kind nobody documented) is exactly the
//! kind of silent drift that turns a resume into a divergent replay. This
//! rule cross-checks the snapshot surface against the DESIGN.md §13
//! checkpoint schema:
//!
//! * every field of `EngineCheckpoint` in
//!   `crates/transfer/src/engine/checkpoint.rs` must have a row in the
//!   §13 field table;
//! * every field of `ServiceCheckpoint` in `crates/ckpt/src/service.rs`
//!   (the continuous-service scheduler snapshot) must likewise have a
//!   §13 row;
//! * every table row must name a live field of one of the two snapshot
//!   structs (no stale docs);
//! * every controller snapshot kind (a `…_KIND: &str` constant anywhere
//!   in non-test workspace code) must be mentioned, backticked, in §13 —
//!   a controller whose state can be snapshotted but is absent from the
//!   compatibility policy is undocumented surface.

use super::Violation;
use crate::lexer::{tokenize, Spanned, Tok};

/// Location of the engine checkpoint definition, repo-relative.
pub const CHECKPOINT_RS: &str = "crates/transfer/src/engine/checkpoint.rs";
/// Location of the service scheduler snapshot definition, repo-relative.
pub const SERVICE_CKPT_RS: &str = "crates/ckpt/src/service.rs";

/// A `…_KIND: &str = "…"` constant found in workspace code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindConst {
    /// Constant identifier (`HTEE_KIND`).
    pub name: String,
    /// The kind string it carries (`"htee"`).
    pub value: String,
    /// Repo-relative path of the defining file.
    pub path: String,
    /// 1-based line of the constant.
    pub line: u32,
}

/// Collects the snapshot-kind constants declared in one file.
pub fn collect_kind_consts(rel_path: &str, toks: &[Spanned]) -> Vec<KindConst> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("const") {
            if let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) {
                if name.ends_with("_KIND") {
                    // The value is the first string literal before the
                    // terminating semicolon.
                    let mut j = i + 2;
                    while j < toks.len() && !toks[j].is_punct(';') {
                        if let Tok::Str(value) = &toks[j].tok {
                            out.push(KindConst {
                                name: name.clone(),
                                value: value.clone(),
                                path: rel_path.to_string(),
                                line: toks[i + 1].line,
                            });
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Runs the checkpoint lint: `ckpt_src` is
/// `crates/transfer/src/engine/checkpoint.rs`, `service_src` is
/// `crates/ckpt/src/service.rs` (the continuous-service scheduler
/// snapshot), `design_src` is DESIGN.md, `kinds` the snapshot-kind
/// constants collected across the workspace.
pub fn check(
    ckpt_src: &str,
    ckpt_path: &str,
    service_src: &str,
    service_path: &str,
    design_src: &str,
    design_path: &str,
    kinds: &[KindConst],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let engine_fields = parse_struct_fields(&tokenize(ckpt_src), "EngineCheckpoint");
    if engine_fields.is_empty() {
        out.push(Violation {
            rule: "checkpoint",
            path: ckpt_path.to_string(),
            line: 0,
            message: "could not locate `struct EngineCheckpoint` — checkpoint lint cannot run"
                .into(),
        });
        return out;
    }
    let service_fields = parse_struct_fields(&tokenize(service_src), "ServiceCheckpoint");
    if service_fields.is_empty() {
        out.push(Violation {
            rule: "checkpoint",
            path: service_path.to_string(),
            line: 0,
            message: "could not locate `struct ServiceCheckpoint` — checkpoint lint cannot run"
                .into(),
        });
        return out;
    }
    let section = section_13(design_src);
    let rows = parse_doc_fields(design_src);
    if rows.is_empty() {
        out.push(Violation {
            rule: "checkpoint",
            path: design_path.to_string(),
            line: 0,
            message: "could not locate the §13 checkpoint field table in DESIGN.md".into(),
        });
        return out;
    }

    for (struct_name, path, fields) in [
        ("EngineCheckpoint", ckpt_path, &engine_fields),
        ("ServiceCheckpoint", service_path, &service_fields),
    ] {
        for (field, line) in fields {
            if !rows.iter().any(|(name, _)| name == field) {
                out.push(Violation {
                    rule: "checkpoint",
                    path: path.to_string(),
                    line: *line,
                    message: format!(
                        "`{struct_name}::{field}` has no row in the DESIGN.md §13 checkpoint \
                         schema tables — undocumented state cannot be trusted across a resume"
                    ),
                });
            }
        }
    }
    for (name, line) in &rows {
        let live = engine_fields.iter().any(|(field, _)| field == name)
            || service_fields.iter().any(|(field, _)| field == name);
        if !live {
            out.push(Violation {
                rule: "checkpoint",
                path: design_path.to_string(),
                line: *line,
                message: format!(
                    "§13 checkpoint tables document `{name}`, which neither \
                     `EngineCheckpoint` nor `ServiceCheckpoint` carries"
                ),
            });
        }
    }
    for kind in kinds {
        if !section.contains(&format!("`{}`", kind.value)) {
            out.push(Violation {
                rule: "checkpoint",
                path: kind.path.clone(),
                line: kind.line,
                message: format!(
                    "snapshot kind \"{}\" ({}) is not documented in DESIGN.md §13 — every \
                     controller state covered by the snapshot schema must appear in the \
                     compatibility policy",
                    kind.value, kind.name
                ),
            });
        }
    }
    out
}

/// Parses the named struct's field names (and lines) from tokens.
pub fn parse_struct_fields(toks: &[Spanned], struct_name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.is_ident(struct_name)) {
            break;
        }
        i += 1;
    }
    while i < toks.len() && !toks[i].is_punct('{') {
        i += 1;
    }
    if i >= toks.len() {
        return out;
    }
    let mut depth = 0i32;
    let mut expect_field = true;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') | Tok::Punct('<') | Tok::Punct('(') => depth += 1,
            Tok::Punct('}') | Tok::Punct('>') | Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Punct(',') if depth == 1 => expect_field = true,
            Tok::Ident(f)
                if depth == 1
                    && expect_field
                    && f != "pub"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) =>
            {
                out.push((f.clone(), toks[i].line));
                expect_field = false;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses the §13 field-table rows out of DESIGN.md: the first backticked
/// span of each row is the field name.
pub fn parse_doc_fields(design: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (ln, line) in design.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("## ") {
            in_section = rest.trim_start().starts_with("13.") || rest.trim_start() == "13";
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
        if cells.len() < 2 || cells[0].contains("---") {
            continue;
        }
        let names = backticked(cells[0]);
        let Some(name) = names.first() else { continue };
        if name == "field" {
            continue; // header row
        }
        out.push((name.clone(), (ln + 1) as u32));
    }
    out
}

/// The raw text of DESIGN.md §13 (used for kind-string mentions).
fn section_13(design: &str) -> String {
    let mut out = String::new();
    let mut in_section = false;
    for line in design.lines() {
        if let Some(rest) = line.strip_prefix("## ") {
            in_section = rest.trim_start().starts_with("13.") || rest.trim_start() == "13";
            continue;
        }
        if in_section {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Extracts backtick-quoted spans from a markdown cell.
fn backticked(cell: &str) -> Vec<String> {
    cell.split('`')
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, s)| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CKPT_SRC: &str = r#"
        pub struct EngineCheckpoint {
            pub version: u32,
            pub now: SimTime,
            pub chunks: Vec<ChunkSnapshot>,
            pub controller: ControllerSnapshot,
        }
    "#;

    const SERVICE_SRC: &str = r#"
        pub struct ServiceCheckpoint {
            pub version: u32,
            pub round: u64,
            pub queue: Vec<u32>,
        }
    "#;

    const GOOD_DOC: &str = "\
## 13. Checkpointing

Controller kinds: `stateless`, `htee`.

| field | captures |
|---|---|
| `version` | schema version |
| `now` | sim clock |
| `chunks` | chunk queues |
| `controller` | controller state |

The service scheduler snapshot:

| field | captures |
|---|---|
| `version` | service schema version |
| `round` | next round |
| `queue` | waiting jobs |

## 14. Next
";

    fn kinds() -> Vec<KindConst> {
        collect_kind_consts(
            "crates/transfer/src/control.rs",
            &tokenize(
                r#"
                pub const STATELESS_KIND: &str = "stateless";
                pub const HTEE_KIND: &str = "htee";
                "#,
            ),
        )
    }

    #[test]
    fn kind_consts_are_collected() {
        let k = kinds();
        assert_eq!(k.len(), 2);
        assert_eq!(k[0].name, "STATELESS_KIND");
        assert_eq!(k[0].value, "stateless");
        assert_eq!(k[1].value, "htee");
    }

    fn check_doc(doc: &str, kinds: &[KindConst]) -> Vec<Violation> {
        check(
            CKPT_SRC,
            "ckpt.rs",
            SERVICE_SRC,
            "service.rs",
            doc,
            "DESIGN.md",
            kinds,
        )
    }

    #[test]
    fn in_sync_checkpoint_schema_passes() {
        let v = check_doc(GOOD_DOC, &kinds());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn undocumented_field_is_flagged() {
        let doc = GOOD_DOC.replace("| `chunks` | chunk queues |\n", "");
        let v = check_doc(&doc, &kinds());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("chunks"));
        assert_eq!(v[0].path, "ckpt.rs");
    }

    #[test]
    fn undocumented_service_field_is_flagged() {
        let doc = GOOD_DOC.replace("| `round` | next round |\n", "");
        let v = check_doc(&doc, &kinds());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("ServiceCheckpoint::round"), "{v:?}");
        assert_eq!(v[0].path, "service.rs");
    }

    #[test]
    fn stale_doc_row_is_flagged() {
        let doc = GOOD_DOC.replace(
            "| `now` | sim clock |",
            "| `now` | sim clock |\n| `ghost` | nothing |",
        );
        let v = check_doc(&doc, &kinds());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("ghost"));
        assert_eq!(v[0].path, "DESIGN.md");
    }

    #[test]
    fn fields_shared_between_the_structs_satisfy_both() {
        // `version` appears in both structs and both tables; dropping the
        // service table's copy is fine because the engine table still
        // documents a live `version` field.
        let doc = GOOD_DOC.replace("| `version` | service schema version |\n", "");
        let v = check_doc(&doc, &kinds());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn undocumented_snapshot_kind_is_flagged() {
        let doc = GOOD_DOC.replace("`htee`", "`something-else`");
        let v = check_doc(&doc, &kinds());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("htee"), "{v:?}");
        assert_eq!(v[0].path, "crates/transfer/src/control.rs");
    }

    #[test]
    fn missing_struct_or_table_degrades_to_file_level_finding() {
        let v = check(
            "fn nothing() {}",
            "ckpt.rs",
            SERVICE_SRC,
            "service.rs",
            GOOD_DOC,
            "DESIGN.md",
            &[],
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 0);
        let v = check(
            CKPT_SRC,
            "ckpt.rs",
            "fn nothing() {}",
            "service.rs",
            GOOD_DOC,
            "DESIGN.md",
            &[],
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("ServiceCheckpoint"), "{v:?}");
        assert_eq!(v[0].path, "service.rs");
        let v = check_doc("# empty\n", &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("§13"));
    }
}
