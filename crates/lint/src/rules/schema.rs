//! Telemetry schema-exhaustiveness lint.
//!
//! The JSONL journal schema is a public contract: external readers parse
//! it, and the DESIGN.md §9 table is its only specification. This rule
//! cross-checks the `Event` enum in `crates/telemetry/src/event.rs`
//! against that table so a new event variant (or a renamed field) cannot
//! ship undocumented:
//!
//! * every `ev` tag produced by `Event::tag()` must have a table row;
//! * every table row must correspond to a live tag (no stale docs);
//! * the backticked field names of each row must match the variant's
//!   field names exactly (a `?` suffix marks optional fields and is
//!   ignored for the comparison).

use super::Violation;
use crate::lexer::{tokenize, Spanned, Tok};
use std::collections::BTreeMap;

/// An `Event` variant as parsed from source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Variant identifier (`RunStart`).
    pub name: String,
    /// Field names in declaration order.
    pub fields: Vec<String>,
    /// 1-based line of the variant in `event.rs`.
    pub line: u32,
}

/// One row of the DESIGN.md schema table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocRow {
    /// Tags the row documents (a row may cover several related tags).
    pub tags: Vec<String>,
    /// Documented field names, `?` suffixes stripped.
    pub fields: Vec<String>,
    /// 1-based line of the row in DESIGN.md.
    pub line: u32,
}

/// Runs the schema lint: `event_src` is `crates/telemetry/src/event.rs`,
/// `design_src` is DESIGN.md; the paths label the violations.
pub fn check(
    event_src: &str,
    event_path: &str,
    design_src: &str,
    design_path: &str,
) -> Vec<Violation> {
    let toks = tokenize(event_src);
    let mut out = Vec::new();
    let variants = parse_event_variants(&toks);
    let tags = parse_tag_map(&toks);
    if variants.is_empty() || tags.is_empty() {
        out.push(Violation {
            rule: "schema",
            path: event_path.to_string(),
            line: 0,
            message: "could not locate `enum Event` and its `fn tag` — schema lint cannot run"
                .into(),
        });
        return out;
    }
    let rows = parse_doc_rows(design_src);
    if rows.is_empty() {
        out.push(Violation {
            rule: "schema",
            path: design_path.to_string(),
            line: 0,
            message: "could not locate the §9 event-schema table in DESIGN.md".into(),
        });
        return out;
    }

    let mut doc_by_tag: BTreeMap<&str, &DocRow> = BTreeMap::new();
    for row in &rows {
        for tag in &row.tags {
            doc_by_tag.insert(tag, row);
        }
    }
    let variant_by_name: BTreeMap<&str, &Variant> =
        variants.iter().map(|v| (v.name.as_str(), v)).collect();

    // Every code tag must be documented, with matching fields.
    for (variant, tag) in &tags {
        let Some(v) = variant_by_name.get(variant.as_str()) else {
            continue; // unreachable if event.rs compiles
        };
        match doc_by_tag.get(tag.as_str()) {
            None => out.push(Violation {
                rule: "schema",
                path: event_path.to_string(),
                line: v.line,
                message: format!(
                    "event `{tag}` (variant `{variant}`) has no row in the DESIGN.md §9 schema table"
                ),
            }),
            Some(row) => {
                let mut code: Vec<&str> = v.fields.iter().map(String::as_str).collect();
                let mut doc: Vec<&str> = row.fields.iter().map(String::as_str).collect();
                code.sort_unstable();
                doc.sort_unstable();
                if code != doc {
                    let missing: Vec<&&str> = code.iter().filter(|f| !doc.contains(f)).collect();
                    let stale: Vec<&&str> = doc.iter().filter(|f| !code.contains(f)).collect();
                    out.push(Violation {
                        rule: "schema",
                        path: design_path.to_string(),
                        line: row.line,
                        message: format!(
                            "schema row for `{tag}` is out of sync with variant `{variant}`: \
                             undocumented fields {missing:?}, stale doc fields {stale:?}"
                        ),
                    });
                }
            }
        }
    }

    // Every doc row must refer to a live tag.
    let live_tags: Vec<&str> = tags.iter().map(|(_, t)| t.as_str()).collect();
    for row in &rows {
        for tag in &row.tags {
            if !live_tags.contains(&tag.as_str()) {
                out.push(Violation {
                    rule: "schema",
                    path: design_path.to_string(),
                    line: row.line,
                    message: format!(
                        "schema table documents `{tag}`, which no `Event` variant produces"
                    ),
                });
            }
        }
    }
    out
}

/// Parses `enum Event`'s variants and their field names.
pub fn parse_event_variants(toks: &[Spanned]) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut i = 0usize;
    // Find `enum Event {`.
    while i < toks.len() {
        if toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident("Event")) {
            break;
        }
        i += 1;
    }
    while i < toks.len() && !toks[i].is_punct('{') {
        i += 1;
    }
    if i >= toks.len() {
        return out;
    }
    i += 1; // into the enum body
    while i < toks.len() && !toks[i].is_punct('}') {
        // Skip variant attributes such as `#[serde(default)]`.
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0i32;
            i += 1;
            while i < toks.len() {
                match &toks[i].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            continue;
        }
        let Tok::Ident(name) = &toks[i].tok else {
            i += 1;
            continue;
        };
        let mut v = Variant {
            name: name.clone(),
            fields: Vec::new(),
            line: toks[i].line,
        };
        i += 1;
        if i < toks.len() && toks[i].is_punct('{') {
            let mut depth = 0i32;
            let mut expect_field = true;
            while i < toks.len() {
                match &toks[i].tok {
                    Tok::Punct('{') | Tok::Punct('<') | Tok::Punct('(') => depth += 1,
                    Tok::Punct('}') | Tok::Punct('>') | Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    Tok::Punct(',') if depth == 1 => expect_field = true,
                    Tok::Ident(f)
                        if depth == 1
                            && expect_field
                            && toks.get(i + 1).is_some_and(|t| t.is_punct(':')) =>
                    {
                        v.fields.push(f.clone());
                        expect_field = false;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        out.push(v);
        // Skip the trailing comma, if any.
        if i < toks.len() && toks[i].is_punct(',') {
            i += 1;
        }
    }
    out
}

/// Parses the `fn tag` match arms into `(variant, tag)` pairs.
pub fn parse_tag_map(toks: &[Spanned]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.is_ident("tag")) {
            break;
        }
        i += 1;
    }
    if i >= toks.len() {
        return out;
    }
    // Within the function body: `Event :: Name { .. } => "tag"`.
    let mut depth = 0i32;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s)
                if s == "Event"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':')) =>
            {
                if let Some(Tok::Ident(variant)) = toks.get(i + 3).map(|t| &t.tok) {
                    // The tag literal is the next string token.
                    let mut j = i + 4;
                    while j < toks.len() {
                        if let Tok::Str(tag) = &toks[j].tok {
                            out.push((variant.clone(), tag.clone()));
                            break;
                        }
                        if toks[j].is_ident("Event") {
                            break; // next arm started without a string
                        }
                        j += 1;
                    }
                    i = j;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses the §9 schema table rows out of DESIGN.md.
pub fn parse_doc_rows(design: &str) -> Vec<DocRow> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (ln, line) in design.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("## ") {
            in_section = rest.trim_start().starts_with("9.") || rest.trim_start() == "9";
            continue;
        }
        if !in_section || !line.trim_start().starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim().trim_matches('|').split('|').collect();
        if cells.len() < 3 {
            continue;
        }
        let tags = backticked(cells[0]);
        if tags.is_empty() || cells[0].contains("---") || tags[0] == "tag" {
            continue; // separator or header row
        }
        let fields = backticked(cells[2])
            .into_iter()
            .map(|f| f.trim_end_matches('?').to_string())
            .collect();
        out.push(DocRow {
            tags,
            fields,
            line: (ln + 1) as u32,
        });
    }
    out
}

/// Extracts backtick-quoted spans from a markdown cell.
fn backticked(cell: &str) -> Vec<String> {
    cell.split('`')
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, s)| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EVENT_SRC: &str = r#"
        pub enum Event {
            RunStart { schema: u32, seed: u64 },
            StageStart { stage: u32 },
            FaultEpisode { side: Option<Side>, active: bool },
            SpanBegin { id: u64, parent: u64, kind: String, detail: String },
            SpanEnd { id: u64, kind: String, detail: String },
        }
        impl Event {
            pub fn tag(&self) -> &'static str {
                match self {
                    Event::RunStart { .. } => "run_start",
                    Event::StageStart { .. } => "stage_start",
                    Event::FaultEpisode { .. } => "fault_episode",
                    Event::SpanBegin { .. } => "span_begin",
                    Event::SpanEnd { .. } => "span_end",
                }
            }
        }
    "#;

    const GOOD_DOC: &str = "\
## 9. Telemetry

| tag | emitted by | fields |
|---|---|---|
| `run_start` | tracer | `schema`, `seed` |
| `stage_start` | engine | `stage` |
| `fault_episode` | runtime | `side?`, `active` |
| `span_begin` | engine, controllers | `id`, `parent`, `kind`, `detail` |
| `span_end` | engine, controllers | `id`, `kind`, `detail` |

## 10. Next
";

    #[test]
    fn in_sync_schema_passes() {
        let v = check(EVENT_SRC, "event.rs", GOOD_DOC, "DESIGN.md");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn deleting_a_doc_row_is_flagged() {
        let doc = GOOD_DOC.replace("| `stage_start` | engine | `stage` |\n", "");
        let v = check(EVENT_SRC, "event.rs", &doc, "DESIGN.md");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("stage_start"));
        assert_eq!(v[0].path, "event.rs");
    }

    #[test]
    fn stale_doc_rows_and_field_drift_are_flagged() {
        let doc = GOOD_DOC
            .replace("`schema`, `seed`", "`schema`, `seeds`")
            .replace("## 10. Next", "| `ghost` | nobody | `x` |\n\n## 10. Next");
        let v = check(EVENT_SRC, "event.rs", &doc, "DESIGN.md");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.message.contains("out of sync")));
        assert!(v.iter().any(|v| v.message.contains("ghost")));
    }

    #[test]
    fn optional_marker_and_generics_are_handled() {
        let toks = tokenize(EVENT_SRC);
        let vars = parse_event_variants(&toks);
        assert_eq!(vars.len(), 5);
        assert_eq!(vars[2].fields, vec!["side", "active"]);
        let rows = parse_doc_rows(GOOD_DOC);
        assert_eq!(rows[2].fields, vec!["side", "active"]);
    }

    #[test]
    fn span_field_drift_is_flagged() {
        // Dropping `parent` from the span_begin row must be caught: the
        // span schema is what external trace readers key nesting on.
        let doc = GOOD_DOC.replace(
            "| `span_begin` | engine, controllers | `id`, `parent`, `kind`, `detail` |",
            "| `span_begin` | engine, controllers | `id`, `kind`, `detail` |",
        );
        let v = check(EVENT_SRC, "event.rs", &doc, "DESIGN.md");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("span_begin"), "{v:?}");
        assert!(v[0].message.contains("parent"), "{v:?}");

        // An undocumented span kind variant is caught from the code side.
        let src = EVENT_SRC.replace(
            "Event::SpanEnd { .. } => \"span_end\",",
            "Event::SpanEnd { .. } => \"span_close\",",
        );
        let v = check(&src, "event.rs", GOOD_DOC, "DESIGN.md");
        assert!(v.iter().any(|v| v.message.contains("span_close")), "{v:?}");
    }
}
