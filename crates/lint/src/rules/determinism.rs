//! Determinism lints.
//!
//! The workspace's reproducibility guarantee (same seed → byte-identical
//! journals, bit-exact experiment results) rests on two bans, enforced
//! here for *all* workspace code, tests included — a test that iterates a
//! `HashMap` or reads the wall clock is exactly how flaky comparisons
//! sneak in:
//!
//! * **No ambient time** — `Instant::now` / `SystemTime`: the simulation
//!   has exactly one clock, `eadt_sim::SimTime`.
//! * **No ambient randomness** — `thread_rng` / `rand::random`: every
//!   stochastic choice flows through an explicitly seeded
//!   `eadt_sim::SimRng` (fork child streams by label).
//! * **No iteration-order-unstable collections** — `HashMap` / `HashSet`:
//!   use `BTreeMap` / `BTreeSet`, whose iteration order is part of their
//!   contract.
//!
//! The one sanctioned home for raw RNG plumbing is
//! `crates/sim/src/rng.rs`, granted through `lint-allow.toml` rather than
//! hardcoded here.

use super::Violation;
use crate::lexer::{Spanned, Tok};

/// Identifiers forbidden wherever they appear.
const FORBIDDEN_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order is unstable; use BTreeMap (determinism policy, DESIGN.md §10)",
    ),
    (
        "HashSet",
        "iteration order is unstable; use BTreeSet (determinism policy, DESIGN.md §10)",
    ),
    (
        "SystemTime",
        "wall-clock reads break reproducibility; use eadt_sim::SimTime",
    ),
    (
        "thread_rng",
        "ambient randomness breaks reproducibility; use a seeded eadt_sim::SimRng",
    ),
];

/// Runs the determinism lints over one file's token stream.
pub fn check(path: &str, toks: &[Spanned]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        for (bad, why) in FORBIDDEN_IDENTS {
            if name == bad {
                out.push(Violation {
                    rule: "determinism",
                    path: path.to_string(),
                    line: t.line,
                    message: format!("`{bad}`: {why}"),
                });
            }
        }
        // `Instant::now` — the type alone is fine (rare in signatures of
        // vendored-API shims), the clock read is not.
        if name == "Instant" && path_call(toks, i, "now") {
            out.push(Violation {
                rule: "determinism",
                path: path.to_string(),
                line: t.line,
                message:
                    "`Instant::now`: wall-clock reads break reproducibility; use eadt_sim::SimTime"
                        .into(),
            });
        }
        // Ad-hoc threading: `thread::spawn` / `thread::scope`. Worker
        // pools threaten merge-order determinism unless results are
        // reassembled by job index; that discipline lives in
        // `eadt_fleet::Session`, whose spawn sites are allowlisted.
        if name == "thread" && (path_call(toks, i, "spawn") || path_call(toks, i, "scope")) {
            out.push(Violation {
                rule: "determinism",
                path: path.to_string(),
                line: t.line,
                message: "`thread::spawn`/`thread::scope`: ad-hoc threading risks order-dependent results; run batches through eadt_fleet::Session".into(),
            });
        }
        // Argless `rand::random`.
        if name == "rand" && path_call(toks, i, "random") {
            out.push(Violation {
                rule: "determinism",
                path: path.to_string(),
                line: t.line,
                message: "`rand::random`: ambient randomness breaks reproducibility; use a seeded eadt_sim::SimRng".into(),
            });
        }
    }
    out
}

/// True when token `i` is followed by `:: segment`.
fn path_call(toks: &[Spanned], i: usize, segment: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(segment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn run(src: &str) -> Vec<Violation> {
        check("x.rs", &tokenize(src))
    }

    #[test]
    fn flags_hash_collections_and_ambient_time() {
        let src = "use std::collections::HashMap;\nlet t = std::time::Instant::now();";
        let v = run(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("BTreeMap"));
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn flags_ambient_randomness() {
        let v = run("let x: u64 = rand::random();\nlet mut r = rand::thread_rng();");
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn flags_ad_hoc_threading() {
        let v = run("std::thread::spawn(|| work());\nstd::thread::scope(|s| {});");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("eadt_fleet::Session"));
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn clean_code_passes() {
        let src = r#"
            // HashMap only in a comment, "Instant::now" only in a string
            use std::collections::BTreeMap;
            let s = "thread_rng";
            let rng = SimRng::new(42);
            let t = SimTime::ZERO;
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn instant_type_without_clock_read_passes() {
        assert!(run("fn shim(t: Instant) -> Instant { t }").is_empty());
    }
}
