//! Lint rules and their shared plumbing.
//!
//! Ten rule families, mirroring the repo's invariants. Five are
//! token-level:
//!
//! * [`determinism`] — no ambient time, no ambient randomness, no
//!   iteration-order-unstable collections anywhere in workspace code;
//! * [`robustness`] — no `unwrap()` / `expect()` / `panic!` in the
//!   non-test library code of the crates on the transfer hot path;
//! * [`schema`] — every telemetry `Event` variant stays documented in the
//!   DESIGN.md §9 JSONL schema table, field-for-field;
//! * [`horizon`] — every `Controller` that overrides `next_decision_in`
//!   is exercised by the macro-stepping equivalence suite;
//! * [`checkpoint`] — every `EngineCheckpoint` field and every controller
//!   snapshot kind stays covered by the DESIGN.md §13 checkpoint schema.
//!
//! Five run on the parsed item/expr tree and the workspace call graph
//! (DESIGN.md §15):
//!
//! * [`fp_order`] — `partial_cmp` comparators, float accumulation over
//!   unordered iterators, and `as f32` narrowing in numeric hot paths;
//! * [`hot_alloc`] — no `Vec::new`/`vec![]`/`.collect()`/`Box::new`
//!   inside the configured slice-kernel hot functions (DESIGN.md §17);
//! * [`panic_reach`] — the robustness ban made *transitive*: every
//!   `unwrap`/`expect`/`panic!`/computed-index sink reachable from the
//!   engine, fleet-worker and recovery roots, with per-edge allowlist
//!   scoping;
//! * [`unit_escape`] — raw-`f64` `+`/`-` mixing values extracted from
//!   different unit newtypes within one function;
//! * [`api_surface`] — per-crate public-API snapshots under `docs/api/`,
//!   failing on undocumented drift.

pub mod api_surface;
pub mod checkpoint;
pub mod determinism;
pub mod fp_order;
pub mod horizon;
pub mod hot_alloc;
pub mod panic_reach;
pub mod robustness;
pub mod schema;
pub mod unit_escape;

use crate::lexer::{Spanned, Tok};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule family id (`determinism`, `robustness`, `schema`, `horizon`,
    /// `checkpoint`).
    pub rule: &'static str,
    /// Repo-relative path the finding is in.
    pub path: String,
    /// 1-based line, or 0 when the finding is file-level.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "warning[{}]: {}:{}: {}",
            self.rule, self.path, self.line, self.message
        )
    }
}

/// Computes a per-token mask of code gated behind tests: the item that
/// follows a `#[test]` / `#[cfg(test)]` / `#[cfg(all(test, …))]`
/// attribute, through its balanced `{ … }` body (or its terminating `;`
/// for declarations such as `mod proptests;`).
///
/// `#[cfg(not(test))]` and other `not`-containing gates are treated as
/// non-test code.
pub fn test_code_mask(toks: &[Spanned]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, gated) = scan_attribute(toks, i + 1);
            if gated {
                // Mark everything from the attribute through the item body.
                let body_end = item_end(toks, attr_end);
                for m in mask.iter_mut().take(body_end).skip(i) {
                    *m = true;
                }
                i = body_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// Scans a `[ … ]` attribute starting at its opening bracket. Returns the
/// index just past the closing bracket and whether the attribute gates the
/// following item behind tests.
fn scan_attribute(toks: &[Spanned], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            Tok::Ident(s) if s == "test" => has_test = true,
            Tok::Ident(s) if s == "not" => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (j, has_test && !has_not)
}

/// Given the index just past a test-gating attribute, returns the index
/// just past the gated item: past the matching `}` of its first brace
/// block, or past a `;` that arrives before any brace (declarations).
/// Further attributes between the gate and the item are skipped.
fn item_end(toks: &[Spanned], mut i: usize) -> usize {
    // Skip stacked attributes (e.g. `#[test] #[ignore]`).
    while i < toks.len()
        && toks[i].is_punct('#')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let (end, _) = scan_attribute(toks, i + 1);
        i = end;
    }
    let mut j = i;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct(';') => return j + 1,
            Tok::Punct('{') => {
                let mut depth = 0i32;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return j + 1;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return j;
            }
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn masked_idents(src: &str) -> Vec<(String, bool)> {
        let toks = tokenize(src);
        let mask = test_code_mask(&toks);
        toks.iter()
            .zip(&mask)
            .filter_map(|(t, &m)| match &t.tok {
                Tok::Ident(s) => Some((s.clone(), m)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cfg_test_module_is_masked() {
        let src = r#"
            fn live() { work(); }
            #[cfg(test)]
            mod tests {
                fn helper() { gadget(); }
            }
            fn also_live() { more(); }
        "#;
        let ids = masked_idents(src);
        let get = |name: &str| ids.iter().find(|(s, _)| s == name).unwrap().1;
        assert!(!get("work"));
        assert!(get("gadget"));
        assert!(!get("more"));
    }

    #[test]
    fn test_fn_and_mod_declaration_are_masked() {
        let src = "#[cfg(test)]\nmod proptests;\n#[test]\nfn t() { probe(); }\nfn f() { live(); }";
        let ids = masked_idents(src);
        let get = |name: &str| ids.iter().find(|(s, _)| s == name).unwrap().1;
        assert!(get("proptests"));
        assert!(get("probe"));
        assert!(!get("live"));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn f() { live(); }";
        let ids = masked_idents(src);
        assert!(!ids.iter().find(|(s, _)| s == "live").unwrap().1);
    }

    #[test]
    fn cfg_all_test_feature_is_masked() {
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod heavy { fn x() { inner(); } }";
        let ids = masked_idents(src);
        assert!(ids.iter().find(|(s, _)| s == "inner").unwrap().1);
    }
}
