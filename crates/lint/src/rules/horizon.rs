//! Macro-stepping horizon-coverage lint.
//!
//! The transfer engine's event-horizon fast path (DESIGN.md §12) trusts
//! `Controller::next_decision_in()` to promise how many slices may be
//! skipped before the controller must run again. An over-promising
//! implementation silently corrupts the bit-for-bit equivalence between
//! macro-stepped and slice-by-slice execution — and nothing at compile
//! time connects a new controller to the suite that would catch it. This
//! rule closes that gap: every production `impl Controller for X` that
//! overrides `next_decision_in` must be exercised by name in
//! `tests/macro_equivalence.rs`.

use super::{test_code_mask, Violation};
use crate::lexer::{Spanned, Tok};

/// The equivalence suite every overriding controller must appear in,
/// relative to the repo root.
pub const SUITE_PATH: &str = "tests/macro_equivalence.rs";

/// Checks one source file: any non-test `impl … Controller for X { … }`
/// whose body defines `fn next_decision_in` requires `X` to be named in
/// `suite_src` (the text of [`SUITE_PATH`]).
pub fn check(path: &str, toks: &[Spanned], suite_src: &str) -> Vec<Violation> {
    let mask = test_code_mask(toks);
    let mut out = Vec::new();
    for (name, line, body) in controller_impls(toks, &mask) {
        if !overrides_next_decision_in(body) {
            continue;
        }
        if !suite_src.contains(&name) {
            out.push(Violation {
                rule: "horizon",
                path: path.to_string(),
                line,
                message: format!(
                    "`{name}` overrides `Controller::next_decision_in` but is not \
                     exercised in {SUITE_PATH} — its horizon promise is unverified"
                ),
            });
        }
    }
    out
}

/// Yields `(type_name, line, body_tokens)` for every `impl … Controller
/// for TypeName { … }` outside test-gated code. The trait definition
/// itself has no `for` clause and is skipped; inherent impls and impls of
/// other traits never mention `Controller` before `for`.
fn controller_impls<'t>(toks: &'t [Spanned], mask: &[bool]) -> Vec<(String, u32, &'t [Spanned])> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") || mask[i] {
            i += 1;
            continue;
        }
        let impl_line = toks[i].line;
        // Scan the header (up to the opening brace): the trait path must
        // contain `Controller` and a `for` clause must follow it.
        let mut j = i + 1;
        let mut saw_controller = false;
        let mut type_name: Option<String> = None;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            match &toks[j].tok {
                Tok::Ident(s) if s == "for" && saw_controller && type_name.is_none() => {
                    if let Some(Tok::Ident(name)) = toks.get(j + 1).map(|t| &t.tok) {
                        type_name = Some(name.clone());
                    }
                }
                Tok::Ident(s) if s == "Controller" => saw_controller = true,
                _ => {}
            }
            j += 1;
        }
        let (Some(name), true) = (type_name, j < toks.len() && toks[j].is_punct('{')) else {
            i = j + 1;
            continue;
        };
        // Balanced body span.
        let body_start = j + 1;
        let mut depth = 1i32;
        let mut k = body_start;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        out.push((name, impl_line, &toks[body_start..k.saturating_sub(1)]));
        i = k;
    }
    out
}

/// Whether an impl body defines `fn next_decision_in`.
fn overrides_next_decision_in(body: &[Spanned]) -> bool {
    body.windows(2)
        .any(|w| w[0].is_ident("fn") && w[1].is_ident("next_decision_in"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    const SRC: &str = r#"
        pub trait Controller {
            fn on_slice(&mut self) -> u32;
            fn next_decision_in(&self) -> u64 { 0 }
        }
        pub struct Quiet;
        impl Controller for Quiet {
            fn on_slice(&mut self) -> u32 { 0 }
        }
        pub struct Promising;
        impl Controller for Promising {
            fn on_slice(&mut self) -> u32 { 0 }
            fn next_decision_in(&self) -> u64 { u64::MAX }
        }
        pub struct Wrapped<C>(C);
        impl<C: Controller> Controller for Wrapped<C> {
            fn on_slice(&mut self) -> u32 { 0 }
            fn next_decision_in(&self) -> u64 { 1 }
        }
        impl std::fmt::Debug for Promising {
            fn fmt(&self, _f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
        }
    "#;

    #[test]
    fn covered_overrides_pass() {
        let toks = tokenize(SRC);
        let v = check("control.rs", &toks, "uses Promising and Wrapped here");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn uncovered_overrides_are_flagged() {
        let toks = tokenize(SRC);
        let v = check("control.rs", &toks, "only Promising appears");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Wrapped"));
        assert_eq!(v[0].rule, "horizon");
    }

    #[test]
    fn trait_default_and_non_overriding_impls_are_ignored() {
        let toks = tokenize(SRC);
        // Neither the trait's own default nor `Quiet` (no override) ever
        // needs coverage, whatever the suite says.
        let v = check("control.rs", &toks, "Promising Wrapped");
        assert!(v.iter().all(|v| !v.message.contains("Quiet")));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_gated_controllers_are_ignored() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                impl Controller for Probe {
                    fn next_decision_in(&self) -> u64 { 9 }
                }
            }
        "#;
        let toks = tokenize(src);
        let v = check("control.rs", &toks, "");
        assert!(v.is_empty(), "{v:?}");
    }
}
