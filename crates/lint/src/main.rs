//! CLI entry point: `cargo run -p eadt-lint -- [--deny-warnings] [--root DIR]
//! [--format text|json|sarif] [--update-api]`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
eadt-lint — workspace conformance analyzer

USAGE:
    cargo run -p eadt-lint -- [OPTIONS]

OPTIONS:
    --deny-warnings    Exit non-zero when any violation is found (CI mode)
    --root DIR         Workspace root to analyze (default: ancestor of this
                       crate containing Cargo.lock, else the working dir)
    --format FORMAT    Report format: text (default), json, or sarif
    --update-api       Regenerate docs/api/*.txt public-API snapshots and exit
    --list-allow       Print the active allowlist entries and exit
    --help             Show this help
";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut list_allow = false;
    let mut update_api = false;
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny = true,
            "--list-allow" => list_allow = true,
            "--update-api" => update_api = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "error: --format needs one of text|json|sarif, got {other:?}\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    if update_api {
        return match eadt_lint::update_api_snapshots(&root) {
            Ok(written) => {
                for p in &written {
                    println!("wrote {p}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    if list_allow {
        // A missing allowlist is an empty allowlist; an unreadable or
        // non-UTF-8 one is a hard error — silently printing nothing would
        // hide exactly the entries the flag exists to audit.
        let text = match std::fs::read_to_string(root.join(eadt_lint::ALLOW_TOML)) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                eprintln!("error: {}: cannot read: {e}", eadt_lint::ALLOW_TOML);
                return ExitCode::from(2);
            }
        };
        match eadt_lint::allow::Allowlist::parse(&text) {
            Ok(list) => {
                for e in &list.entries {
                    println!("[{}] {} ({}): {}", e.rule, e.path, e.context, e.reason);
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match eadt_lint::run(&root) {
        Ok(report) => {
            match format {
                Format::Text => {
                    for v in &report.violations {
                        println!("{v}");
                    }
                    println!(
                        "eadt-lint: {} files, {} violation(s), {} allowlisted",
                        report.files,
                        report.violations.len(),
                        report.allowed.len()
                    );
                }
                Format::Json => println!("{}", eadt_lint::output::json(&report)),
                Format::Sarif => println!("{}", eadt_lint::output::sarif(&report)),
            }
            if deny && !report.violations.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// The repo root: nearest ancestor of this crate's manifest dir holding a
/// `Cargo.lock` (so `cargo run -p eadt-lint` works from anywhere in the
/// workspace), falling back to the current directory.
fn default_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
