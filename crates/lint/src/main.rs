//! CLI entry point: `cargo run -p eadt-lint -- [--deny-warnings] [--root DIR]`.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
eadt-lint — workspace conformance analyzer

USAGE:
    cargo run -p eadt-lint -- [OPTIONS]

OPTIONS:
    --deny-warnings    Exit non-zero when any violation is found (CI mode)
    --root DIR         Workspace root to analyze (default: ancestor of this
                       crate containing Cargo.lock, else the working dir)
    --list-allow       Print the active allowlist entries and exit
    --help             Show this help
";

fn main() -> ExitCode {
    let mut deny = false;
    let mut list_allow = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny = true,
            "--list-allow" => list_allow = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    if list_allow {
        // A missing allowlist is an empty allowlist; an unreadable or
        // non-UTF-8 one is a hard error — silently printing nothing would
        // hide exactly the entries the flag exists to audit.
        let text = match std::fs::read_to_string(root.join(eadt_lint::ALLOW_TOML)) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => {
                eprintln!("error: {}: cannot read: {e}", eadt_lint::ALLOW_TOML);
                return ExitCode::from(2);
            }
        };
        match eadt_lint::allow::Allowlist::parse(&text) {
            Ok(list) => {
                for e in &list.entries {
                    println!("[{}] {} ({}): {}", e.rule, e.path, e.context, e.reason);
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match eadt_lint::run(&root) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            println!(
                "eadt-lint: {} files, {} violation(s), {} allowlisted",
                report.files,
                report.violations.len(),
                report.allowed.len()
            );
            if deny && !report.violations.is_empty() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// The repo root: nearest ancestor of this crate's manifest dir holding a
/// `Cargo.lock` (so `cargo run -p eadt-lint` works from anywhere in the
/// workspace), falling back to the current directory.
fn default_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
