//! A minimal Rust tokenizer for lint rules.
//!
//! The rules only need identifiers, punctuation and (occasionally) string
//! literal *positions* — never their contents — so the lexer collapses
//! comments, string/char/byte literals and numbers into opaque tokens.
//! That is what makes the rules sound against `// HashMap` in prose or
//! `"unwrap()"` inside a message string: neither survives tokenization as
//! an identifier.
//!
//! Handled explicitly:
//!
//! * line (`//`) and nested block (`/* /* */ */`) comments, including doc
//!   comments;
//! * string, raw string (`r"…"`, `r#"…"#`, any guard depth), byte string
//!   and char literals, with escape sequences;
//! * lifetimes vs. char literals (`'a` is a lifetime, `'a'` a char);
//! * identifiers (including raw `r#ident`) and numeric literals.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `!`, `(`, `{`, …).
    Punct(char),
    /// A string literal; the payload is the *decoded* text (escapes kept
    /// raw — rules never need them).
    Str(String),
    /// A char or byte literal (contents dropped).
    CharLit,
    /// A numeric literal; the payload is the literal text (the parser's
    /// fp-order rule needs to tell `1.5` and `1.5f64` from `3`).
    Num(String),
    /// A lifetime such as `'a` (name dropped).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

impl Spanned {
    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == name)
    }

    /// True when the token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Tokenizes Rust source. Unterminated literals simply end the stream —
/// lint rules prefer degrading gracefully over erroring on exotic input.
pub fn tokenize(src: &str) -> Vec<Spanned> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start = line;
                let (text, ni, nl) = scan_string(&b, i + 1, line);
                out.push(Spanned {
                    tok: Tok::Str(text),
                    line: start,
                });
                i = ni;
                line = nl;
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start = line;
                let (text, ni, nl) = scan_raw_or_byte(&b, i, line);
                out.push(Spanned {
                    tok: Tok::Str(text),
                    line: start,
                });
                i = ni;
                line = nl;
            }
            '\'' => {
                // Lifetime if followed by ident-start NOT closed by a quote
                // right after one char (i.e. `'a` vs `'a'`).
                let is_lifetime = b.get(i + 1).is_some_and(|c| c.is_alphabetic() || *c == '_')
                    && b.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    i += 2;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    out.push(Spanned {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    let start = line;
                    i += 1;
                    while i < b.len() && b[i] != '\'' {
                        if b[i] == '\\' {
                            i += 1;
                        }
                        if i < b.len() && b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.push(Spanned {
                        tok: Tok::CharLit,
                        line: start,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // `1..=9` range: stop before a second consecutive dot.
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Num(b[start..i].iter().collect()),
                    line,
                });
            }
            c => {
                out.push(Spanned {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Scans the body of a `"…"` string starting just past the opening quote.
/// Returns `(text, next index, line after)`.
fn scan_string(b: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    let mut text = String::new();
    while i < b.len() {
        match b[i] {
            '\\' => {
                // A `\<newline>` continuation still ends a physical line.
                if b.get(i + 1) == Some(&'\n') {
                    line += 1;
                }
                i += 2;
            }
            '"' => {
                i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    line += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, i, line)
}

/// True when position `i` starts `r"`, `r#`, `b"`, `br"`, `br#` — a raw or
/// byte string rather than an identifier beginning with `r`/`b`.
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && b.get(j) == Some(&'"')
}

/// Scans a raw/byte string starting at its `r`/`b` prefix.
fn scan_raw_or_byte(b: &[char], mut i: usize, mut line: u32) -> (String, usize, u32) {
    if b[i] == 'b' {
        i += 1;
    }
    let mut guards = 0usize;
    let raw = b.get(i) == Some(&'r');
    if raw {
        i += 1;
        while b.get(i) == Some(&'#') {
            guards += 1;
            i += 1;
        }
    }
    i += 1; // opening quote
    let mut text = String::new();
    while i < b.len() {
        if !raw && b[i] == '\\' {
            if b.get(i + 1) == Some(&'\n') {
                line += 1;
            }
            i += 2;
            continue;
        }
        if b[i] == '"' {
            // Raw strings close only on `"` followed by `guards` hashes.
            let closes = !raw || guards == 0 || (1..=guards).all(|k| b.get(i + k) == Some(&'#'));
            if closes {
                i += 1 + guards;
                break;
            }
        }
        if b[i] == '\n' {
            line += 1;
        }
        text.push(b[i]);
        i += 1;
    }
    (text, i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let x = "HashMap in a string";
            let y = r#"raw HashMap"#;
            let z = 'H';
        "##;
        assert!(!idents(src).iter().any(|s| s == "HashMap"));
    }

    #[test]
    fn identifiers_and_lines_are_tracked() {
        let toks = tokenize("fn main() {\n    foo.unwrap()\n}\n");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = tokenize(src);
        assert!(toks.iter().any(|t| t.is_ident("str")));
        assert!(toks.iter().any(|t| t.tok == Tok::CharLit));
        assert_eq!(
            toks.iter().filter(|t| t.tok == Tok::Lifetime).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn string_line_continuations_keep_line_numbers_honest() {
        let toks = tokenize("let s = \"first \\\n    second\";\nfoo.unwrap()\n");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 3, "{toks:?}");
    }

    #[test]
    fn string_payload_is_kept_for_schema_parsing() {
        let toks = tokenize(r#"Event::RunStart { .. } => "run_start","#);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s == "run_start")));
    }

    #[test]
    fn numeric_range_does_not_swallow_dots() {
        let toks = tokenize("for i in 0..=9 { }");
        assert!(toks.iter().filter(|t| t.is_punct('.')).count() >= 2);
    }
}
