//! A conservative workspace call graph over the symbol table.
//!
//! Edges are built by scanning each fn body for call expressions and
//! resolving them by name (see [`crate::symbols`] for the resolution
//! policy). The graph over-approximates: a method call adds an edge to
//! every same-named method in the workspace, and a bare call that names
//! no free fn falls back to same-named methods — so calls routed through
//! closures or fn-typed parameters stay visible. External calls (std,
//! vendored crates) resolve to nothing and end the walk, which is
//! exactly the boundary the panic-reachability rule needs: the sinks it
//! hunts are workspace-local source expressions.

use crate::parser::Expr;
use crate::symbols::SymbolTable;
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Calling fn (id into the symbol table).
    pub caller: usize,
    /// Called fn (id into the symbol table).
    pub callee: usize,
    /// 1-based line of the call site, in the caller's file.
    pub line: u32,
    /// The callee name as written at the call site (`run`,
    /// `Type::run`, …) — the text per-edge allowlist entries match on.
    pub call_text: String,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every resolved edge.
    pub edges: Vec<Edge>,
    /// caller id → indices into [`CallGraph::edges`].
    pub out: BTreeMap<usize, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph from every fn body in the table.
    pub fn build(table: &SymbolTable) -> Self {
        let mut g = CallGraph::default();
        for def in &table.fns {
            let Some(body) = def.body else { continue };
            let self_ty = def.self_ty.clone();
            collect_calls(&table.bodies[body], &mut |call| {
                let (targets, text) = resolve(table, &call, self_ty.as_deref());
                for callee in targets {
                    let idx = g.edges.len();
                    g.edges.push(Edge {
                        caller: def.id,
                        callee,
                        line: call.line,
                        call_text: text.clone(),
                    });
                    g.out.entry(def.id).or_default().push(idx);
                }
            });
        }
        g
    }

    /// Walks the graph breadth-first from `roots`, returning for each
    /// reached fn id the edge index that first discovered it (`None`
    /// for the roots themselves). `cut` drops edges before traversal —
    /// the per-edge allowlist hook.
    pub fn reach(
        &self,
        roots: &[usize],
        mut cut: impl FnMut(&Edge) -> bool,
    ) -> BTreeMap<usize, Option<usize>> {
        let mut seen: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if seen.insert(r, None).is_none() {
                queue.push(r);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let Some(out) = self.out.get(&cur) else {
                continue;
            };
            for &ei in out {
                let e = &self.edges[ei];
                if cut(e) {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(v) = seen.entry(e.callee) {
                    v.insert(Some(ei));
                    queue.push(e.callee);
                }
            }
        }
        seen
    }

    /// Renders a sample call path from a root down to `id`, using the
    /// discovery edges from [`CallGraph::reach`].
    pub fn sample_path(
        &self,
        table: &SymbolTable,
        reached: &BTreeMap<usize, Option<usize>>,
        id: usize,
    ) -> String {
        let mut names = vec![table.def(id).name.clone()];
        let mut cur = id;
        while let Some(Some(ei)) = reached.get(&cur) {
            let e = &self.edges[*ei];
            names.push(table.def(e.caller).name.clone());
            cur = e.caller;
        }
        names.reverse();
        names.join(" -> ")
    }
}

/// A call site found in a body.
#[derive(Debug)]
pub struct CallSite {
    /// Call-site kind and name data.
    pub kind: CallKind,
    /// 1-based line.
    pub line: u32,
}

/// How the call was written.
#[derive(Debug)]
pub enum CallKind {
    /// `name(…)` — a single-segment path call.
    Bare(String),
    /// `a::…::name(…)` — qualified; first element is the qualifier
    /// *preceding* the final segment.
    Qualified(String, String),
    /// `recv.name(…)`.
    Method(String),
}

fn collect_calls(body: &Expr, f: &mut dyn FnMut(CallSite)) {
    body.visit(&mut |e| match e {
        Expr::Call { callee, line, .. } => {
            if let Expr::Path { segs, .. } = &**callee {
                match segs.len() {
                    0 => {}
                    1 => f(CallSite {
                        kind: CallKind::Bare(segs[0].clone()),
                        line: *line,
                    }),
                    n => f(CallSite {
                        kind: CallKind::Qualified(segs[n - 2].clone(), segs[n - 1].clone()),
                        line: *line,
                    }),
                }
            }
        }
        Expr::MethodCall { method, line, .. } => f(CallSite {
            kind: CallKind::Method(method.clone()),
            line: *line,
        }),
        _ => {}
    });
}

/// Std vocabulary whose names collide with workspace methods constantly
/// (`.get(…)` on a `Vec` would otherwise edge into every workspace
/// `fn get`). Method calls written with these names resolve to nothing —
/// a deliberate, documented precision/soundness tradeoff: any workspace
/// method that *should* be walked under one of these names is reached
/// through its qualified or bare call sites instead.
const STD_VOCABULARY_METHODS: &[&str] = &[
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "iter",
    "into_iter",
    "collect",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "len",
    "is_empty",
    "clone",
    "to_string",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "filter",
    "fold",
    "sum",
    "min",
    "max",
    "abs",
    "sort",
    "sort_by",
    "extend",
    "join",
    "contains",
    "starts_with",
    "ends_with",
    "then",
    "take",
    "last",
    "first",
    "next",
    "enumerate",
    "zip",
    "rev",
    "chain",
    "flat_map",
];

fn resolve(table: &SymbolTable, call: &CallSite, self_ty: Option<&str>) -> (Vec<usize>, String) {
    match &call.kind {
        CallKind::Bare(name) => (table.resolve_bare(name, self_ty), format!("{name}(")),
        CallKind::Qualified(q, name) => {
            let q = if q == "Self" {
                self_ty.unwrap_or(q.as_str())
            } else {
                q.as_str()
            };
            (table.resolve_qualified(q, name), format!("{q}::{name}("))
        }
        CallKind::Method(name) => {
            if STD_VOCABULARY_METHODS.contains(&name.as_str()) {
                (Vec::new(), format!(".{name}("))
            } else {
                (table.resolve_method(name), format!(".{name}("))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    fn graph(files: &[(&str, &str)]) -> (SymbolTable, CallGraph) {
        let mut t = SymbolTable::default();
        for (path, src) in files {
            t.add_file("demo", path, false, &parse_file(&tokenize(src)));
        }
        let g = CallGraph::build(&t);
        (t, g)
    }

    #[test]
    fn bare_qualified_and_method_calls_resolve() {
        let (t, g) = graph(&[(
            "a.rs",
            "fn top() { helper(); S::assoc(); obj.method_x(); }\nfn helper() {}\nstruct S;\nimpl S { fn assoc() {} fn method_x(&self) {} }",
        )]);
        let top = t.fns.iter().find(|f| f.name == "top").unwrap().id;
        let reached = g.reach(&[top], |_| false);
        let names: Vec<&str> = reached.keys().map(|id| t.def(*id).name.as_str()).collect();
        assert!(names.contains(&"helper"), "{names:?}");
        assert!(names.contains(&"assoc"), "{names:?}");
        assert!(names.contains(&"method_x"), "{names:?}");
    }

    #[test]
    fn edge_cut_stops_traversal() {
        let (t, g) = graph(&[(
            "a.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        let top = t.fns.iter().find(|f| f.name == "top").unwrap().id;
        let reached = g.reach(&[top], |e| e.call_text == "leaf(");
        let names: Vec<&str> = reached.keys().map(|id| t.def(*id).name.as_str()).collect();
        assert!(names.contains(&"mid"));
        assert!(!names.contains(&"leaf"), "{names:?}");
    }

    #[test]
    fn sample_path_renders_root_to_sink() {
        let (t, g) = graph(&[(
            "a.rs",
            "fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}",
        )]);
        let top = t.fns.iter().find(|f| f.name == "top").unwrap().id;
        let leaf = t.fns.iter().find(|f| f.name == "leaf").unwrap().id;
        let reached = g.reach(&[top], |_| false);
        assert_eq!(g.sample_path(&t, &reached, leaf), "top -> mid -> leaf");
    }
}
