//! `eadt-lint` — the workspace conformance analyzer.
//!
//! A dependency-free, token-level static-analysis pass that walks every
//! workspace crate (excluding `vendor/`) and enforces the repo's
//! machine-checkable invariants (DESIGN.md §10):
//!
//! * **determinism** — no `HashMap`/`HashSet`, no `Instant::now` /
//!   `SystemTime`, no `thread_rng` / `rand::random` anywhere;
//! * **robustness** — no `unwrap()` / `expect()` / `panic!` in the
//!   non-test library code of `core`, `transfer` and `telemetry`;
//! * **schema** — every telemetry `Event` variant documented,
//!   field-for-field, in the DESIGN.md §9 JSONL schema table;
//! * **horizon** — every `Controller` overriding `next_decision_in()`
//!   exercised by the macro-stepping equivalence suite
//!   (`tests/macro_equivalence.rs`), so a new controller cannot silently
//!   break the bit-for-bit macro-stepping invariant (DESIGN.md §12);
//! * **checkpoint** — every `EngineCheckpoint` field and controller
//!   snapshot kind covered by the DESIGN.md §13 checkpoint schema, so
//!   state added to the snapshot surface cannot drift undocumented.
//!
//! Known violations burn down explicitly through `lint-allow.toml`.
//! Run it as `cargo run -p eadt-lint -- --deny-warnings` (the CI
//! `lint-conformance` job does exactly that).

#![deny(missing_docs)]

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod walk;

use allow::Allowlist;
use rules::Violation;
use std::path::Path;

/// Location of the telemetry event definitions, relative to the repo root.
pub const EVENT_RS: &str = "crates/telemetry/src/event.rs";
/// Location of the engine checkpoint definitions, relative to the repo root.
pub const CHECKPOINT_RS: &str = rules::checkpoint::CHECKPOINT_RS;
/// Location of the schema documentation, relative to the repo root.
pub const DESIGN_MD: &str = "DESIGN.md";
/// Location of the allowlist, relative to the repo root.
pub const ALLOW_TOML: &str = "lint-allow.toml";

/// Outcome of a full analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations that survived the allowlist, in path/line order.
    pub violations: Vec<Violation>,
    /// Violations suppressed by `lint-allow.toml`.
    pub allowed: Vec<Violation>,
    /// Number of files analyzed.
    pub files: usize,
}

/// Runs every rule over the workspace rooted at `root`.
///
/// Fails with a message (not a panic) when the workspace cannot be read
/// or the allowlist cannot be parsed.
pub fn run(root: &Path) -> Result<Report, String> {
    let allowlist = match std::fs::read_to_string(root.join(ALLOW_TOML)) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("{ALLOW_TOML}: {e}")),
    };
    let sources = walk::collect_sources(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut raw: Vec<Violation> = Vec::new();

    let suite_src = std::fs::read_to_string(root.join(rules::horizon::SUITE_PATH)).ok();
    if suite_src.is_none() {
        raw.push(Violation {
            rule: "horizon",
            path: rules::horizon::SUITE_PATH.to_string(),
            line: 0,
            message: "macro-stepping equivalence suite not found — horizon lint cannot run".into(),
        });
    }

    for file in &sources {
        let toks = lexer::tokenize(&file.text);
        raw.extend(rules::determinism::check(&file.rel_path, &toks));
        if rules::robustness::CHECKED_CRATES.contains(&file.crate_name()) && !file.is_test_code() {
            raw.extend(rules::robustness::check(&file.rel_path, &toks));
        }
        if let Some(suite) = &suite_src {
            if !file.is_test_code() {
                raw.extend(rules::horizon::check(&file.rel_path, &toks, suite));
            }
        }
    }

    let design =
        std::fs::read_to_string(root.join(DESIGN_MD)).map_err(|e| format!("{DESIGN_MD}: {e}"))?;
    match sources.iter().find(|f| f.rel_path == EVENT_RS) {
        Some(event_file) => {
            raw.extend(rules::schema::check(
                &event_file.text,
                EVENT_RS,
                &design,
                DESIGN_MD,
            ));
        }
        None => raw.push(Violation {
            rule: "schema",
            path: EVENT_RS.to_string(),
            line: 0,
            message: "telemetry event definitions not found — schema lint cannot run".into(),
        }),
    }

    match sources.iter().find(|f| f.rel_path == CHECKPOINT_RS) {
        Some(ckpt_file) => {
            let mut kinds = Vec::new();
            for file in &sources {
                if file.is_test_code() {
                    continue;
                }
                let toks = lexer::tokenize(&file.text);
                kinds.extend(rules::checkpoint::collect_kind_consts(
                    &file.rel_path,
                    &toks,
                ));
            }
            raw.extend(rules::checkpoint::check(
                &ckpt_file.text,
                CHECKPOINT_RS,
                &design,
                DESIGN_MD,
                &kinds,
            ));
        }
        None => raw.push(Violation {
            rule: "checkpoint",
            path: CHECKPOINT_RS.to_string(),
            line: 0,
            message: "engine checkpoint definitions not found — checkpoint lint cannot run".into(),
        }),
    }

    // Apply the allowlist: an entry covers a violation when rule and path
    // match and the source line contains the entry's context.
    let mut report = Report {
        files: sources.len(),
        ..Report::default()
    };
    for v in raw {
        let line_text = if v.path == DESIGN_MD {
            line_of(&design, v.line)
        } else {
            sources
                .iter()
                .find(|f| f.rel_path == v.path)
                .map(|f| line_of(&f.text, v.line))
                .unwrap_or_default()
        };
        if allowlist.covers(v.rule, &v.path, &line_text) {
            report.allowed.push(v);
        } else {
            report.violations.push(v);
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// The 1-based `line` of `text`, or empty when out of range.
fn line_of(text: &str, line: u32) -> String {
    if line == 0 {
        return String::new();
    }
    text.lines()
        .nth(line as usize - 1)
        .unwrap_or_default()
        .to_string()
}
