//! `eadt-lint` — the workspace conformance analyzer.
//!
//! A dependency-free static-analysis pipeline that walks every workspace
//! crate (excluding `vendor/`) and enforces the repo's machine-checkable
//! invariants (DESIGN.md §10, §15). The pass runs in two layers over the
//! same token streams:
//!
//! **Token-level rules** (PR 3 lineage):
//!
//! * **determinism** — no `HashMap`/`HashSet`, no `Instant::now` /
//!   `SystemTime`, no `thread_rng` / `rand::random` anywhere;
//! * **robustness** — no `unwrap()` / `expect()` / `panic!` in the
//!   non-test library code of `core`, `transfer` and `telemetry`;
//! * **schema** — every telemetry `Event` variant documented,
//!   field-for-field, in the DESIGN.md §9 JSONL schema table;
//! * **horizon** — every `Controller` overriding `next_decision_in()`
//!   exercised by the macro-stepping equivalence suite;
//! * **checkpoint** — every `EngineCheckpoint` field and controller
//!   snapshot kind covered by the DESIGN.md §13 checkpoint schema.
//!
//! **Tree-level rules**, on a recursive-descent parse ([`parser`]), a
//! workspace symbol table ([`symbols`]) and a conservative call graph
//! ([`callgraph`]) — see DESIGN.md §15:
//!
//! * **fp-order** — `partial_cmp` comparators, float accumulation over
//!   unordered iterators, `as f32` narrowing in numeric hot paths;
//! * **hot-alloc** — no `Vec::new` / `vec![]` / `.collect()` /
//!   `Box::new` inside the configured slice-kernel hot functions
//!   (the zero-allocation contract of DESIGN.md §17);
//! * **panic-reach** — panic sinks transitively reachable from
//!   `Engine::run_controlled`, the fleet workers and checkpoint
//!   recovery, with per-edge allowlist scoping (`panic-reach-edge`);
//! * **unit-escape** — raw-`f64` `+`/`-` across different unit-newtype
//!   extractor families within one function;
//! * **api-surface** — canonical per-crate public-API snapshots under
//!   `docs/api/`, failing on undocumented drift (regenerate with
//!   `--update-api`).
//!
//! Known violations burn down explicitly through `lint-allow.toml`.
//! Run it as `cargo run -p eadt-lint -- --deny-warnings` (the CI
//! `lint-conformance` and `lint-deep` jobs do exactly that).

#![deny(missing_docs)]

pub mod allow;
pub mod callgraph;
pub mod lexer;
pub mod output;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod walk;

use allow::Allowlist;
use rules::Violation;
use std::collections::BTreeMap;
use std::path::Path;

/// Location of the telemetry event definitions, relative to the repo root.
pub const EVENT_RS: &str = "crates/telemetry/src/event.rs";
/// Location of the engine checkpoint definitions, relative to the repo root.
pub const CHECKPOINT_RS: &str = rules::checkpoint::CHECKPOINT_RS;
/// Location of the service scheduler snapshot, relative to the repo root.
pub const SERVICE_CKPT_RS: &str = rules::checkpoint::SERVICE_CKPT_RS;
/// Location of the schema documentation, relative to the repo root.
pub const DESIGN_MD: &str = "DESIGN.md";
/// Location of the allowlist, relative to the repo root.
pub const ALLOW_TOML: &str = "lint-allow.toml";

/// Outcome of a full analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Violations that survived the allowlist, in path/line order.
    pub violations: Vec<Violation>,
    /// Violations suppressed by `lint-allow.toml` (including one entry
    /// per severed `panic-reach-edge`).
    pub allowed: Vec<Violation>,
    /// Number of files analyzed.
    pub files: usize,
}

/// One analyzed source file with both analysis layers materialized.
struct Analyzed {
    file: walk::SourceFile,
    toks: Vec<lexer::Spanned>,
    parsed: parser::ParsedFile,
}

/// Reads sources and materializes tokens + parse trees, once per file.
fn analyze_sources(root: &Path) -> Result<Vec<Analyzed>, String> {
    let sources = walk::collect_sources(root).map_err(|e| format!("walking {root:?}: {e}"))?;
    Ok(sources
        .into_iter()
        .map(|file| {
            let toks = lexer::tokenize(&file.text);
            let parsed = parser::parse_file(&toks);
            Analyzed { file, toks, parsed }
        })
        .collect())
}

/// Recomputes every crate's API snapshot and writes `docs/api/*.txt`.
/// Returns the written paths (repo-relative), for reporting.
pub fn update_api_snapshots(root: &Path) -> Result<Vec<String>, String> {
    let analyzed = analyze_sources(root)?;
    let snapshots = rules::api_surface::build_snapshots(
        analyzed
            .iter()
            .filter(|a| !a.file.is_test_code())
            .map(|a| (a.file.rel_path.as_str(), &a.parsed)),
    );
    let dir = root.join(rules::api_surface::API_DIR);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for (krate, text) in &snapshots {
        let path = dir.join(format!("{krate}.txt"));
        std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
        written.push(format!("{}/{krate}.txt", rules::api_surface::API_DIR));
    }
    Ok(written)
}

/// Runs every rule over the workspace rooted at `root`.
///
/// Fails with a message (not a panic) when the workspace cannot be read
/// or the allowlist cannot be parsed.
pub fn run(root: &Path) -> Result<Report, String> {
    let allowlist = match std::fs::read_to_string(root.join(ALLOW_TOML)) {
        Ok(text) => Allowlist::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(format!("{ALLOW_TOML}: {e}")),
    };
    let analyzed = analyze_sources(root)?;
    let mut raw: Vec<Violation> = Vec::new();

    let suite_src = std::fs::read_to_string(root.join(rules::horizon::SUITE_PATH)).ok();
    if suite_src.is_none() {
        raw.push(Violation {
            rule: "horizon",
            path: rules::horizon::SUITE_PATH.to_string(),
            line: 0,
            message: "macro-stepping equivalence suite not found — horizon lint cannot run".into(),
        });
    }

    // --- Token-level rules, plus per-body tree rules -------------------
    let mut table = symbols::SymbolTable::default();
    for a in &analyzed {
        let file = &a.file;
        raw.extend(rules::determinism::check(&file.rel_path, &a.toks));
        if rules::robustness::CHECKED_CRATES.contains(&file.crate_name()) && !file.is_test_code() {
            raw.extend(rules::robustness::check(&file.rel_path, &a.toks));
        }
        if let Some(suite) = &suite_src {
            if !file.is_test_code() {
                raw.extend(rules::horizon::check(&file.rel_path, &a.toks, suite));
            }
        }

        let narrowing =
            rules::fp_order::HOT_CRATES.contains(&file.crate_name()) && !file.is_test_code();
        let unit_checked =
            rules::unit_escape::CHECKED_CRATES.contains(&file.crate_name()) && !file.is_test_code();
        a.parsed.visit_items(&mut |it, stack| {
            // Nested helper fns are inlined into their enclosing body
            // (parser.rs), so visiting them again would double-report.
            if stack.iter().any(|p| matches!(p.kind, parser::ItemKind::Fn)) {
                return;
            }
            if let Some(body) = &it.body {
                raw.extend(rules::fp_order::check_body(
                    &file.rel_path,
                    body,
                    narrowing && !it.cfg_test,
                ));
                if unit_checked && !it.cfg_test {
                    raw.extend(rules::unit_escape::check_body(&file.rel_path, body));
                }
                if rules::hot_alloc::is_hot(&file.rel_path, &it.name) && !it.cfg_test {
                    raw.extend(rules::hot_alloc::check_body(&file.rel_path, body));
                }
            }
        });

        table.add_file(
            file.crate_name(),
            &file.rel_path,
            file.is_test_code(),
            &a.parsed,
        );
    }

    // --- Panic reachability over the call graph ------------------------
    let graph = callgraph::CallGraph::build(&table);
    let edge_allow: Vec<(String, String)> = allowlist
        .entries
        .iter()
        .filter(|e| e.rule == "panic-reach-edge")
        .map(|e| (e.path.clone(), e.context.clone()))
        .collect();
    let texts: BTreeMap<&str, &str> = analyzed
        .iter()
        .map(|a| (a.file.rel_path.as_str(), a.file.text.as_str()))
        .collect();
    let reach = rules::panic_reach::check(&table, &graph, &edge_allow, |file, line| {
        texts
            .get(file)
            .map(|t| line_of(t, line))
            .unwrap_or_default()
    });
    raw.extend(reach.violations);
    let mut allowed_extra = reach.severed_edges;

    // --- API surface ----------------------------------------------------
    let snapshots = rules::api_surface::build_snapshots(
        analyzed
            .iter()
            .filter(|a| !a.file.is_test_code())
            .map(|a| (a.file.rel_path.as_str(), &a.parsed)),
    );
    let mut on_disk = BTreeMap::new();
    let api_dir = root.join(rules::api_surface::API_DIR);
    if let Ok(entries) = std::fs::read_dir(&api_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(krate) = name.strip_suffix(".txt") {
                if let Ok(text) = std::fs::read_to_string(entry.path()) {
                    on_disk.insert(krate.to_string(), text);
                }
            }
        }
    }
    raw.extend(rules::api_surface::check(&snapshots, &on_disk));

    // --- Schema / checkpoint (doc-coupled) ------------------------------
    let design =
        std::fs::read_to_string(root.join(DESIGN_MD)).map_err(|e| format!("{DESIGN_MD}: {e}"))?;
    match analyzed.iter().find(|a| a.file.rel_path == EVENT_RS) {
        Some(event_file) => {
            raw.extend(rules::schema::check(
                &event_file.file.text,
                EVENT_RS,
                &design,
                DESIGN_MD,
            ));
        }
        None => raw.push(Violation {
            rule: "schema",
            path: EVENT_RS.to_string(),
            line: 0,
            message: "telemetry event definitions not found — schema lint cannot run".into(),
        }),
    }

    let ckpt_file = analyzed.iter().find(|a| a.file.rel_path == CHECKPOINT_RS);
    let service_file = analyzed.iter().find(|a| a.file.rel_path == SERVICE_CKPT_RS);
    match (ckpt_file, service_file) {
        (Some(ckpt_file), Some(service_file)) => {
            let mut kinds = Vec::new();
            for a in &analyzed {
                if a.file.is_test_code() {
                    continue;
                }
                kinds.extend(rules::checkpoint::collect_kind_consts(
                    &a.file.rel_path,
                    &a.toks,
                ));
            }
            raw.extend(rules::checkpoint::check(
                &ckpt_file.file.text,
                CHECKPOINT_RS,
                &service_file.file.text,
                SERVICE_CKPT_RS,
                &design,
                DESIGN_MD,
                &kinds,
            ));
        }
        (missing_engine, _) => {
            let path = if missing_engine.is_none() {
                CHECKPOINT_RS
            } else {
                SERVICE_CKPT_RS
            };
            raw.push(Violation {
                rule: "checkpoint",
                path: path.to_string(),
                line: 0,
                message: "checkpoint definitions not found — checkpoint lint cannot run".into(),
            });
        }
    }

    // Apply the allowlist: an entry covers a violation when rule and path
    // match and the source line contains the entry's context.
    let mut report = Report {
        files: analyzed.len(),
        ..Report::default()
    };
    for v in raw {
        let line_text = if v.path == DESIGN_MD {
            line_of(&design, v.line)
        } else {
            texts
                .get(v.path.as_str())
                .map(|t| line_of(t, v.line))
                .unwrap_or_default()
        };
        if allowlist.covers(v.rule, &v.path, &line_text) {
            report.allowed.push(v);
        } else {
            report.violations.push(v);
        }
    }
    report.allowed.append(&mut allowed_extra);
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// The 1-based `line` of `text`, or empty when out of range.
fn line_of(text: &str, line: u32) -> String {
    if line == 0 {
        return String::new();
    }
    text.lines()
        .nth(line as usize - 1)
        .unwrap_or_default()
        .to_string()
}
