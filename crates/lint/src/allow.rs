//! The checked-in violation allowlist (`lint-allow.toml`).
//!
//! Each entry grants one rule in one file, optionally narrowed to lines
//! containing a context substring, and must carry a reason — allowlisting
//! is how known violations burn down *explicitly* instead of rotting in
//! comments. The parser is deliberately a tiny hand-rolled subset of TOML
//! (array-of-tables with string values) so `eadt-lint` stays
//! dependency-free.

/// One allowlist entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences (`robustness`, `determinism`, `schema`).
    pub rule: String,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// When non-empty, only lines containing this substring are allowed.
    pub context: String,
    /// Why the violation is accepted (required, surfaced in `--list-allow`).
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `lint-allow.toml` text. Only `[[allow]]` tables with
    /// `key = "value"` string pairs are understood; anything else is a
    /// parse error so typos cannot silently widen the allowlist.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut in_entry = false;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                entries.push(AllowEntry::default());
                in_entry = true;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint-allow.toml:{}: expected `key = \"value\"`",
                    ln + 1
                ));
            };
            if !in_entry {
                return Err(format!(
                    "lint-allow.toml:{}: key outside an [[allow]] table",
                    ln + 1
                ));
            }
            let key = key.trim();
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| {
                    format!("lint-allow.toml:{}: value must be a quoted string", ln + 1)
                })?;
            let entry = entries
                .last_mut()
                .ok_or("unreachable: in_entry implies entry")?;
            match key {
                "rule" => entry.rule = value.to_string(),
                "path" => entry.path = value.to_string(),
                "context" => entry.context = value.to_string(),
                "reason" => entry.reason = value.to_string(),
                other => return Err(format!("lint-allow.toml:{}: unknown key `{other}`", ln + 1)),
            }
        }
        for (i, e) in entries.iter().enumerate() {
            if e.rule.is_empty() || e.path.is_empty() || e.reason.is_empty() {
                return Err(format!(
                    "lint-allow.toml entry {}: `rule`, `path` and `reason` are all required",
                    i + 1
                ));
            }
        }
        Ok(Allowlist { entries })
    }

    /// True when a violation of `rule` at `path` on a line whose source
    /// text is `line_text` is covered by some entry.
    pub fn covers(&self, rule: &str, path: &str, line_text: &str) -> bool {
        self.entries.iter().any(|e| {
            e.rule == rule
                && e.path == path
                && (e.context.is_empty() || line_text.contains(&e.context))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let text = r#"
# comment
[[allow]]
rule = "robustness"
path = "crates/core/src/baselines.rs"
context = "at least one run"
reason = "constructor clamps max_channel"
"#;
        let a = Allowlist::parse(text).unwrap();
        assert_eq!(a.entries.len(), 1);
        assert!(a.covers(
            "robustness",
            "crates/core/src/baselines.rs",
            r#".expect("max_channel ≥ 1 yields at least one run")"#
        ));
        assert!(!a.covers("robustness", "crates/core/src/baselines.rs", ".unwrap()"));
        assert!(!a.covers(
            "determinism",
            "crates/core/src/baselines.rs",
            "at least one run"
        ));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let text = "[[allow]]\nrule = \"robustness\"\npath = \"x.rs\"\n";
        assert!(Allowlist::parse(text).is_err());
    }

    #[test]
    fn unknown_keys_are_errors() {
        let text = "[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"w\"\nfoo = \"bar\"\n";
        assert!(Allowlist::parse(text).is_err());
    }
}
