//! Workspace symbol table: every function definition, addressable enough
//! for conservative call resolution.
//!
//! The table is intentionally name-based rather than type-based — the
//! lint pipeline has no type inference, so a method call `x.run(…)`
//! resolves to *every* `fn run` defined in an impl or trait anywhere in
//! the workspace. That over-approximation is exactly what the
//! panic-reachability rule wants: an edge we cannot rule out is an edge
//! we must assume.

use crate::parser::{Item, ItemKind, ParsedFile, Vis};
use std::collections::BTreeMap;

/// One function definition somewhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Stable id: index into [`SymbolTable::fns`].
    pub id: usize,
    /// Function name.
    pub name: String,
    /// Crate the definition lives in (`core`, `transfer`, … or the
    /// `eadt` root package).
    pub krate: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` item.
    pub line: u32,
    /// The enclosing impl's self type, for associated fns (`Engine` for
    /// `impl Engine { fn run … }`); `None` for free fns and trait
    /// declarations.
    pub self_ty: Option<String>,
    /// The enclosing trait (trait declarations *and* trait impls).
    pub trait_name: Option<String>,
    /// Index of the item's body in [`SymbolTable::bodies`], when it has
    /// one.
    pub body: Option<usize>,
    /// True when the fn is test-gated (or defined in a test-only file).
    pub test_only: bool,
    /// Visibility as written.
    pub vis: Vis,
}

/// All function definitions in the workspace, with name-based lookup.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function definition.
    pub fns: Vec<FnDef>,
    /// Parsed bodies, referenced by [`FnDef::body`].
    pub bodies: Vec<crate::parser::Expr>,
    /// name → fn ids, for free functions.
    pub free_by_name: BTreeMap<String, Vec<usize>>,
    /// name → fn ids, for impl-associated and trait functions.
    pub method_by_name: BTreeMap<String, Vec<usize>>,
    /// (self type, name) → fn ids, for qualified `Type::method` calls.
    pub by_ty_and_name: BTreeMap<(String, String), Vec<usize>>,
}

impl SymbolTable {
    /// Adds every fn in a parsed file to the table.
    pub fn add_file(&mut self, krate: &str, rel_path: &str, file_is_test: bool, pf: &ParsedFile) {
        collect(self, krate, rel_path, file_is_test, &pf.items, None, None);
    }

    /// Looks up a function definition by id.
    pub fn def(&self, id: usize) -> &FnDef {
        &self.fns[id]
    }

    /// Resolves a bare call `name(…)` seen inside `self_ty`'s impl (if
    /// any): free fns first; if none exist, fall back to methods of the
    /// same name — that covers calls through closures and fn-typed
    /// parameters, which the panic rule must not lose.
    pub fn resolve_bare(&self, name: &str, self_ty: Option<&str>) -> Vec<usize> {
        if let Some(ty) = self_ty {
            if let Some(ids) = self.by_ty_and_name.get(&(ty.to_string(), name.to_string())) {
                let mut out = ids.clone();
                if let Some(free) = self.free_by_name.get(name) {
                    out.extend_from_slice(free);
                }
                return out;
            }
        }
        if let Some(ids) = self.free_by_name.get(name) {
            return ids.clone();
        }
        self.method_by_name.get(name).cloned().unwrap_or_default()
    }

    /// Resolves a method call `recv.name(…)`: every impl/trait fn of
    /// that name in the workspace.
    pub fn resolve_method(&self, name: &str) -> Vec<usize> {
        self.method_by_name.get(name).cloned().unwrap_or_default()
    }

    /// Resolves a qualified call `Qualifier::name(…)`. A qualifier that
    /// matches a known self type narrows to that type's fns; `Self`
    /// must already be substituted by the caller. Unknown qualifiers
    /// (std, serde_json, …) resolve to nothing — external code is
    /// outside the graph.
    pub fn resolve_qualified(&self, qualifier: &str, name: &str) -> Vec<usize> {
        self.by_ty_and_name
            .get(&(qualifier.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }
}

fn collect(
    table: &mut SymbolTable,
    krate: &str,
    rel_path: &str,
    file_is_test: bool,
    items: &[Item],
    self_ty: Option<&str>,
    trait_name: Option<&str>,
) {
    for it in items {
        match &it.kind {
            ItemKind::Fn => {
                let id = table.fns.len();
                let body = it.body.as_ref().map(|b| {
                    table.bodies.push(b.clone());
                    table.bodies.len() - 1
                });
                let def = FnDef {
                    id,
                    name: it.name.clone(),
                    krate: krate.to_string(),
                    file: rel_path.to_string(),
                    line: it.line,
                    self_ty: self_ty.map(str::to_string),
                    trait_name: trait_name.map(str::to_string),
                    body,
                    test_only: file_is_test || it.cfg_test,
                    vis: it.vis,
                };
                match self_ty.or(trait_name) {
                    Some(ty) => {
                        table
                            .method_by_name
                            .entry(def.name.clone())
                            .or_default()
                            .push(id);
                        table
                            .by_ty_and_name
                            .entry((ty.to_string(), def.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => {
                        table
                            .free_by_name
                            .entry(def.name.clone())
                            .or_default()
                            .push(id);
                    }
                }
                table.fns.push(def);
            }
            ItemKind::Impl {
                self_ty: ty,
                trait_name: tr,
            } => {
                collect(
                    table,
                    krate,
                    rel_path,
                    file_is_test,
                    &it.children,
                    Some(ty),
                    tr.as_deref(),
                );
            }
            ItemKind::Trait => {
                collect(
                    table,
                    krate,
                    rel_path,
                    file_is_test,
                    &it.children,
                    None,
                    Some(&it.name),
                );
            }
            ItemKind::Mod { .. } => {
                collect(
                    table,
                    krate,
                    rel_path,
                    file_is_test,
                    &it.children,
                    None,
                    None,
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    fn table(src: &str) -> SymbolTable {
        let mut t = SymbolTable::default();
        t.add_file(
            "demo",
            "crates/demo/src/lib.rs",
            false,
            &parse_file(&tokenize(src)),
        );
        t
    }

    #[test]
    fn free_and_method_fns_are_indexed_separately() {
        let t = table(
            "fn free() {}\nstruct S;\nimpl S { pub fn go(&self) {} }\ntrait T { fn go(&self); }",
        );
        assert_eq!(t.resolve_bare("free", None).len(), 1);
        assert_eq!(t.resolve_method("go").len(), 2);
        assert_eq!(t.resolve_qualified("S", "go").len(), 1);
        assert!(t.resolve_qualified("Unknown", "go").is_empty());
    }

    #[test]
    fn bare_calls_fall_back_to_methods() {
        let t = table("struct S;\nimpl S { fn run(&self) {} }");
        // `run(x)` through a closure/fn-pointer still finds the method.
        assert_eq!(t.resolve_bare("run", None).len(), 1);
    }

    #[test]
    fn test_gating_is_recorded() {
        let t = table("#[cfg(test)]\nmod tests { fn helper() {} }\nfn live() {}");
        let helper = t.fns.iter().find(|f| f.name == "helper").unwrap();
        let live = t.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(helper.test_only);
        assert!(!live.test_only);
    }
}
