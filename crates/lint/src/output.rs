//! Machine-readable report rendering: `--format json` and
//! `--format sarif`.
//!
//! Both serializers are hand-rolled (the lint crate stays
//! dependency-free) and emit keys in a fixed order, so the output is as
//! byte-stable as the report itself. The SARIF output is a minimal
//! SARIF 2.1.0 document — one run, one result per violation — which is
//! what CI needs to annotate PR lines.

use crate::rules::Violation;
use crate::Report;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn violation_json(v: &Violation) -> String {
    format!(
        r#"{{"rule":"{}","path":"{}","line":{},"message":"{}"}}"#,
        esc(v.rule),
        esc(&v.path),
        v.line,
        esc(&v.message)
    )
}

/// Renders the report as a single JSON object:
/// `{"files":N,"violations":[…],"allowed":[…]}`.
pub fn json(report: &Report) -> String {
    let vs: Vec<String> = report.violations.iter().map(violation_json).collect();
    let als: Vec<String> = report.allowed.iter().map(violation_json).collect();
    format!(
        r#"{{"files":{},"violations":[{}],"allowed":[{}]}}"#,
        report.files,
        vs.join(","),
        als.join(",")
    )
}

/// Renders the report as a minimal SARIF 2.1.0 document.
pub fn sarif(report: &Report) -> String {
    let mut rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    let rule_objs: Vec<String> = rules
        .iter()
        .map(|r| format!(r#"{{"id":"{}"}}"#, esc(r)))
        .collect();
    let results: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                concat!(
                    r#"{{"ruleId":"{}","level":"warning","message":{{"text":"{}"}},"#,
                    r#""locations":[{{"physicalLocation":{{"artifactLocation":{{"uri":"{}"}},"#,
                    r#""region":{{"startLine":{}}}}}}}]}}"#
                ),
                esc(v.rule),
                esc(&v.message),
                esc(&v.path),
                v.line.max(1)
            )
        })
        .collect();
    format!(
        concat!(
            r#"{{"version":"2.1.0","#,
            r#""$schema":"https://json.schemastore.org/sarif-2.1.0.json","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"eadt-lint","rules":[{}]}}}},"#,
            r#""results":[{}]}}]}}"#
        ),
        rule_objs.join(","),
        results.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> Report {
        Report {
            violations: vec![Violation {
                rule: "fp-order",
                path: "crates/net/src/fair.rs".into(),
                line: 87,
                message: "`partial_cmp` inside `sort_by`: use \"total_cmp\"".into(),
            }],
            allowed: vec![Violation {
                rule: "robustness",
                path: "crates/core/src/baselines.rs".into(),
                line: 10,
                message: "allowed".into(),
            }],
            files: 2,
        }
    }

    #[test]
    fn json_is_wellformed_and_escaped() {
        let j = json(&demo_report());
        assert!(j.starts_with(r#"{"files":2,"#), "{j}");
        assert!(j.contains(r#"\"total_cmp\""#), "{j}");
        assert!(j.contains(r#""allowed":[{"rule":"robustness""#), "{j}");
        // Balanced braces/brackets → structurally plausible JSON.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sarif_has_schema_rules_and_locations() {
        let s = sarif(&demo_report());
        assert!(s.contains(r#""version":"2.1.0""#));
        assert!(s.contains(r#""name":"eadt-lint""#));
        assert!(s.contains(r#"{"id":"fp-order"}"#));
        assert!(s.contains(r#""uri":"crates/net/src/fair.rs""#));
        assert!(s.contains(r#""startLine":87"#));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn file_level_findings_clamp_to_line_one() {
        let mut r = demo_report();
        r.violations[0].line = 0;
        assert!(sarif(&r).contains(r#""startLine":1"#));
    }
}
