//! A lightweight recursive-descent parser over [`crate::lexer`].
//!
//! Produces the per-file item/fn/expr tree the deep rules (fp-order,
//! panic-reachability, unit-escape, api-surface) operate on. It is a
//! *lint* parser, not a compiler front end: parsing is **total** — any
//! construct it does not model degrades to a [`Expr::Seq`] of its parsed
//! sub-expressions rather than an error, so exotic syntax can hide a
//! finding but can never abort the pass (the same grace the lexer
//! extends to unterminated literals).
//!
//! Three layers:
//!
//! 1. a bracket-matched **token tree** ([`Tt`]) built from the flat
//!    token stream;
//! 2. an **item parser** producing [`Item`]s — functions, types, impls,
//!    traits, modules — each with its visibility, canonical one-line
//!    signature (the api-surface snapshot text) and `#[cfg(test)]`
//!    gating;
//! 3. an **expression parser** turning `fn` bodies into [`Expr`] trees
//!    with real method-call chains, call arguments, indexing, casts and
//!    `+`/`-`/`*`/`/` structure — exactly the shapes the fp-order,
//!    unit-escape and panic-reachability rules pattern-match on.

use crate::lexer::{Spanned, Tok};

// ---------------------------------------------------------------------------
// Token trees
// ---------------------------------------------------------------------------

/// A token or a balanced bracket group.
#[derive(Debug, Clone)]
pub enum Tt {
    /// A single non-bracket token.
    Tok(Spanned),
    /// A `( … )`, `[ … ]` or `{ … }` group.
    Group {
        /// Opening bracket: `(`, `[` or `{`.
        open: char,
        /// The tokens inside, recursively grouped.
        items: Vec<Tt>,
        /// Line of the opening bracket.
        line: u32,
    },
}

impl Tt {
    /// The source line this tree starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tt::Tok(t) => t.line,
            Tt::Group { line, .. } => *line,
        }
    }

    /// The identifier text, when this is an identifier token.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tt::Tok(Spanned {
                tok: Tok::Ident(s), ..
            }) => Some(s),
            _ => None,
        }
    }

    /// True when this is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tt::Tok(t) if t.is_punct(c))
    }

    /// True when this is a group opened by `c`.
    pub fn is_group(&self, c: char) -> bool {
        matches!(self, Tt::Group { open, .. } if *open == c)
    }
}

/// Builds the token-tree layer from a flat token stream. Unbalanced
/// closers are kept as plain tokens; unbalanced openers close at
/// end-of-stream — the parser never fails.
pub fn build_tts(toks: &[Spanned]) -> Vec<Tt> {
    let mut i = 0usize;
    build_group(toks, &mut i, None)
}

fn build_group(toks: &[Spanned], i: &mut usize, until: Option<char>) -> Vec<Tt> {
    let mut out = Vec::new();
    while *i < toks.len() {
        let t = &toks[*i];
        match &t.tok {
            Tok::Punct(c @ ('(' | '[' | '{')) => {
                let open = *c;
                let line = t.line;
                *i += 1;
                let items = build_group(toks, i, Some(closer(open)));
                out.push(Tt::Group { open, items, line });
            }
            Tok::Punct(c @ (')' | ']' | '}')) => {
                if until == Some(*c) {
                    *i += 1;
                    return out;
                }
                // Stray closer: keep it and move on.
                out.push(Tt::Tok(t.clone()));
                *i += 1;
            }
            _ => {
                out.push(Tt::Tok(t.clone()));
                *i += 1;
            }
        }
    }
    out
}

fn closer(open: char) -> char {
    match open {
        '(' => ')',
        '[' => ']',
        _ => '}',
    }
}

// ---------------------------------------------------------------------------
// Items
// ---------------------------------------------------------------------------

/// Item visibility, as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Scoped,
    /// No visibility qualifier.
    Private,
}

/// What kind of item this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, impl-associated or trait-declared).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// An `impl` block; `trait_name` is set for trait impls.
    Impl {
        /// The `Self` type's head identifier (`Engine` for
        /// `impl<'a> Engine<'a>`).
        self_ty: String,
        /// The implemented trait's head identifier, for trait impls.
        trait_name: Option<String>,
    },
    /// `mod name;` or `mod name { … }`.
    Mod {
        /// True for `mod name { … }` (children parsed in place).
        inline: bool,
    },
    /// `use …;`.
    Use,
    /// `const …;`.
    Const,
    /// `static …;`.
    Static,
    /// `type … = …;`.
    TypeAlias,
    /// `macro_rules! name { … }`.
    MacroDef,
    /// A struct field (child of a `Struct` item).
    Field,
    /// An enum variant (child of an `Enum` item).
    Variant,
    /// Anything else (`extern crate`, foreign mods, …).
    Other,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// The item's name (`run_controlled`, `Engine`, …); empty for
    /// `impl` blocks and `use` declarations.
    pub name: String,
    /// Visibility as written.
    pub vis: Vis,
    /// 1-based line of the item's first token.
    pub line: u32,
    /// Canonical one-line signature (everything up to the body),
    /// rendered with normalized spacing — the api-surface snapshot text.
    pub signature: String,
    /// Nested items: a module's contents, an impl/trait's functions, a
    /// struct's fields, an enum's variants.
    pub children: Vec<Item>,
    /// The parsed body, for functions with one.
    pub body: Option<Expr>,
    /// True when the item (or an enclosing item) is gated behind
    /// `#[test]` / `#[cfg(test)]`.
    pub cfg_test: bool,
}

/// A parsed source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl ParsedFile {
    /// Visits every item in the tree, depth-first.
    pub fn visit_items<'a>(&'a self, f: &mut dyn FnMut(&'a Item, &[&'a Item])) {
        fn walk<'a>(
            items: &'a [Item],
            stack: &mut Vec<&'a Item>,
            f: &mut dyn FnMut(&'a Item, &[&'a Item]),
        ) {
            for it in items {
                f(it, stack);
                stack.push(it);
                walk(&it.children, stack, f);
                stack.pop();
            }
        }
        walk(&self.items, &mut Vec::new(), f);
    }
}

/// Parses a file's token stream into an item tree.
pub fn parse_file(toks: &[Spanned]) -> ParsedFile {
    let tts = build_tts(toks);
    ParsedFile {
        items: parse_items(&tts, false),
    }
}

/// Keywords that can prefix a `fn` (in any order).
const FN_QUALIFIERS: &[&str] = &["const", "unsafe", "async", "extern", "default"];

fn parse_items(tts: &[Tt], in_test: bool) -> Vec<Item> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tts.len() {
        // Attributes: `#[…]` / `#![…]`. Detect test gating the same way
        // the token-mask layer does: `test` present, `not` absent.
        let mut cfg_test = in_test;
        let attr_start = i;
        while i < tts.len() && tts[i].is_punct('#') {
            let mut j = i + 1;
            if j < tts.len() && tts[j].is_punct('!') {
                j += 1;
            }
            if j < tts.len() && tts[j].is_group('[') {
                if let Tt::Group { items, .. } = &tts[j] {
                    let (has_test, has_not) = attr_test_markers(items);
                    if has_test && !has_not {
                        cfg_test = true;
                    }
                }
                i = j + 1;
            } else {
                break;
            }
        }
        // Visibility.
        let mut vis = Vis::Private;
        let vis_start = i;
        if tts.get(i).and_then(Tt::ident) == Some("pub") {
            i += 1;
            if tts.get(i).is_some_and(|t| t.is_group('(')) {
                vis = Vis::Scoped;
                i += 1;
            } else {
                vis = Vis::Pub;
            }
        }
        // Qualifier keywords before `fn`.
        let mut j = i;
        while tts
            .get(j)
            .and_then(Tt::ident)
            .is_some_and(|s| FN_QUALIFIERS.contains(&s))
        {
            j += 1;
            // `extern "C"` carries a string literal.
            if matches!(
                tts.get(j),
                Some(Tt::Tok(Spanned {
                    tok: Tok::Str(_),
                    ..
                }))
            ) {
                j += 1;
            }
        }
        let kw = tts.get(j).and_then(Tt::ident);
        // Rendered signatures start at the visibility qualifier, not
        // after it.
        i = vis_start;
        let item = match kw {
            Some("fn") => Some(parse_fn(tts, &mut i, j, vis, cfg_test)),
            Some("struct") => Some(parse_type_item(
                tts,
                &mut i,
                j,
                vis,
                cfg_test,
                ItemKind::Struct,
            )),
            Some("enum") => Some(parse_type_item(
                tts,
                &mut i,
                j,
                vis,
                cfg_test,
                ItemKind::Enum,
            )),
            Some("union") => Some(parse_type_item(
                tts,
                &mut i,
                j,
                vis,
                cfg_test,
                ItemKind::Union,
            )),
            Some("trait") => Some(parse_trait(tts, &mut i, j, vis, cfg_test)),
            Some("impl") => Some(parse_impl(tts, &mut i, j, vis, cfg_test)),
            Some("mod") => Some(parse_mod(tts, &mut i, j, vis, cfg_test)),
            Some("use") => Some(parse_simple(tts, &mut i, j, vis, cfg_test, ItemKind::Use)),
            Some("const") if tts.get(j + 1).and_then(Tt::ident) != Some("fn") => {
                Some(parse_simple(tts, &mut i, j, vis, cfg_test, ItemKind::Const))
            }
            Some("static") => Some(parse_simple(
                tts,
                &mut i,
                j,
                vis,
                cfg_test,
                ItemKind::Static,
            )),
            Some("type") => Some(parse_simple(
                tts,
                &mut i,
                j,
                vis,
                cfg_test,
                ItemKind::TypeAlias,
            )),
            Some("macro_rules") => Some(parse_macro_def(tts, &mut i, j, cfg_test)),
            Some("extern") => Some(parse_simple(tts, &mut i, j, vis, cfg_test, ItemKind::Other)),
            _ => None,
        };
        match item {
            Some(mut it) => {
                // Report the item at its first attribute's line when the
                // attributes came first.
                if attr_start < vis_start {
                    it.line = it.line.min(tts[attr_start].line());
                }
                out.push(it);
            }
            None => {
                // `name ! { … }` at item position (`proptest!` and
                // friends): the braces usually hold ordinary items, so
                // parse them as children — otherwise every fn declared
                // through such a macro would silently vanish from the
                // symbol table and the call graph.
                let bang = matches!(
                    tts.get(j + 1),
                    Some(Tt::Tok(Spanned {
                        tok: Tok::Punct('!'),
                        ..
                    }))
                );
                let brace = match (kw, bang, tts.get(j + 2)) {
                    (
                        Some(_),
                        true,
                        Some(Tt::Group {
                            open: '{', items, ..
                        }),
                    ) => Some(items),
                    _ => None,
                };
                match brace {
                    Some(items) => {
                        out.push(Item {
                            kind: ItemKind::Other,
                            name: kw.unwrap_or_default().to_string(),
                            vis,
                            line: tts[j].line(),
                            signature: String::new(),
                            children: parse_items(items, cfg_test),
                            body: None,
                            cfg_test,
                        });
                        i = j + 3;
                    }
                    None => {
                        // Not an item head we model — skip one tree.
                        i = i.max(j) + 1;
                    }
                }
            }
        }
    }
    out
}

fn attr_test_markers(items: &[Tt]) -> (bool, bool) {
    let mut has_test = false;
    let mut has_not = false;
    for t in items {
        match t {
            Tt::Tok(s) => {
                if s.is_ident("test") {
                    has_test = true;
                }
                if s.is_ident("not") {
                    has_not = true;
                }
            }
            Tt::Group { items, .. } => {
                let (t2, n2) = attr_test_markers(items);
                has_test |= t2;
                has_not |= n2;
            }
        }
    }
    (has_test, has_not)
}

/// Renders a token-tree slice as a canonical one-line string.
pub fn render(tts: &[Tt]) -> String {
    let mut pieces = Vec::new();
    flatten_pieces(tts, &mut pieces);
    join_pieces(&pieces)
}

/// Flattens trees into string pieces, merging multi-character operators
/// (`::`, `->`, `=>`) so spacing rules can treat them atomically.
fn flatten_pieces(tts: &[Tt], out: &mut Vec<String>) {
    let mut k = 0usize;
    while k < tts.len() {
        match &tts[k] {
            Tt::Tok(s) => {
                let next = tts.get(k + 1).and_then(|t| match t {
                    Tt::Tok(n) => match n.tok {
                        Tok::Punct(c) => Some(c),
                        _ => None,
                    },
                    _ => None,
                });
                let merged = match (&s.tok, next) {
                    (Tok::Punct(':'), Some(':')) => Some("::"),
                    (Tok::Punct('-'), Some('>')) => Some("->"),
                    (Tok::Punct('='), Some('>')) => Some("=>"),
                    _ => None,
                };
                if let Some(m) = merged {
                    out.push(m.to_string());
                    k += 2;
                    continue;
                }
                out.push(match &s.tok {
                    Tok::Ident(x) => x.clone(),
                    Tok::Punct(c) => c.to_string(),
                    Tok::Str(_) => "\"…\"".to_string(),
                    Tok::CharLit => "'…'".to_string(),
                    Tok::Num(n) => n.clone(),
                    Tok::Lifetime => "'_".to_string(),
                });
            }
            Tt::Group { open, items, .. } => {
                out.push(open.to_string());
                flatten_pieces(items, out);
                out.push(closer(*open).to_string());
            }
        }
        k += 1;
    }
}

/// Joins pieces with canonical spacing: tight binding around path
/// separators, brackets, generics and reference sigils; single spaces
/// elsewhere.
fn join_pieces(pieces: &[String]) -> String {
    let mut out = String::new();
    let mut prev: Option<&str> = None;
    for piece in pieces {
        let tight_before = matches!(
            piece.as_str(),
            "," | ";" | ":" | "::" | "?" | "!" | ")" | "]" | ">" | "(" | "[" | "<"
        );
        let tight_after_prev = matches!(prev, Some("(" | "[" | "<" | "::" | "&" | "#"));
        if prev.is_some() && !tight_before && !tight_after_prev {
            out.push(' ');
        }
        out.push_str(piece);
        prev = Some(piece.as_str());
    }
    out
}

/// Finds the index of the body `{…}` group or terminating `;`, scanning
/// from `start`. Returns `(signature_end, body_index)` where `body_index`
/// is `Some` for a brace body.
fn find_body(tts: &[Tt], start: usize) -> (usize, Option<usize>) {
    let mut k = start;
    while k < tts.len() {
        if tts[k].is_punct(';') {
            return (k, None);
        }
        if tts[k].is_group('{') {
            return (k, Some(k));
        }
        k += 1;
    }
    (k, None)
}

fn parse_fn(tts: &[Tt], i: &mut usize, kw: usize, vis: Vis, cfg_test: bool) -> Item {
    let line = tts[*i].line();
    let name = tts
        .get(kw + 1)
        .and_then(Tt::ident)
        .unwrap_or_default()
        .to_string();
    let (sig_end, body_idx) = find_body(tts, kw);
    let signature = render(&tts[*i..sig_end]);
    let mut children = Vec::new();
    let body = body_idx.and_then(|b| match &tts[b] {
        Tt::Group { items, .. } => {
            // Helper fns (and impl/trait/mod blocks holding fns)
            // declared at the top level of the body become child items,
            // so they exist in the symbol table under their own names.
            // Their bodies are *also* inlined into this fn's body by
            // parse_stmt — reachability stays conservative — so
            // per-body rules must visit only outermost bodies.
            children = parse_items(items, cfg_test)
                .into_iter()
                .filter(|it| {
                    (matches!(it.kind, ItemKind::Fn) && !it.name.is_empty() && it.body.is_some())
                        || !it.children.is_empty()
                })
                .collect();
            Some(parse_block(items))
        }
        Tt::Tok(_) => None,
    });
    *i = sig_end + 1;
    Item {
        kind: ItemKind::Fn,
        name,
        vis,
        line,
        signature,
        children,
        body,
        cfg_test,
    }
}

fn parse_type_item(
    tts: &[Tt],
    i: &mut usize,
    kw: usize,
    vis: Vis,
    cfg_test: bool,
    kind: ItemKind,
) -> Item {
    let line = tts[*i].line();
    let name = tts
        .get(kw + 1)
        .and_then(Tt::ident)
        .unwrap_or_default()
        .to_string();
    let (sig_end, body_idx) = find_body(tts, kw);
    let signature = render(&tts[*i..sig_end]);
    let mut children = Vec::new();
    if let Some(Tt::Group { items, .. }) = body_idx.map(|b| &tts[b]) {
        match kind {
            ItemKind::Struct | ItemKind::Union => children = parse_fields(items, cfg_test),
            ItemKind::Enum => children = parse_variants(items, cfg_test),
            _ => {}
        }
    }
    // Tuple structs: `struct X(pub A, B);` — expose pub tuple fields via
    // the signature itself (the paren group precedes the `;`).
    *i = sig_end + 1;
    Item {
        kind,
        name,
        vis,
        line,
        signature,
        children,
        body: None,
        cfg_test,
    }
}

/// Parses named struct fields into `Field` children.
fn parse_fields(tts: &[Tt], cfg_test: bool) -> Vec<Item> {
    let mut out = Vec::new();
    for part in split_top(tts, ',') {
        // Strip per-field attributes.
        let mut s = 0usize;
        while s < part.len() && part[s].is_punct('#') {
            s += 1;
            if s < part.len() && part[s].is_group('[') {
                s += 1;
            }
        }
        let part = &part[s..];
        if part.is_empty() {
            continue;
        }
        let mut vis = Vis::Private;
        let mut k = 0usize;
        if part.first().and_then(Tt::ident) == Some("pub") {
            k += 1;
            if part.get(k).is_some_and(|t| t.is_group('(')) {
                vis = Vis::Scoped;
                k += 1;
            } else {
                vis = Vis::Pub;
            }
        }
        let Some(name) = part.get(k).and_then(Tt::ident) else {
            continue;
        };
        out.push(Item {
            kind: ItemKind::Field,
            name: name.to_string(),
            vis,
            line: part[0].line(),
            signature: render(part),
            children: Vec::new(),
            body: None,
            cfg_test,
        });
    }
    out
}

/// Parses enum variants into `Variant` children (always `Pub`: variant
/// visibility follows the enum's).
fn parse_variants(tts: &[Tt], cfg_test: bool) -> Vec<Item> {
    let mut out = Vec::new();
    for part in split_top(tts, ',') {
        let mut s = 0usize;
        while s < part.len() && part[s].is_punct('#') {
            s += 1;
            if s < part.len() && part[s].is_group('[') {
                s += 1;
            }
        }
        let part = &part[s..];
        let Some(name) = part.first().and_then(Tt::ident) else {
            continue;
        };
        out.push(Item {
            kind: ItemKind::Variant,
            name: name.to_string(),
            vis: Vis::Pub,
            line: part[0].line(),
            signature: render(part),
            children: Vec::new(),
            body: None,
            cfg_test,
        });
    }
    out
}

fn parse_trait(tts: &[Tt], i: &mut usize, kw: usize, vis: Vis, cfg_test: bool) -> Item {
    let line = tts[*i].line();
    let name = tts
        .get(kw + 1)
        .and_then(Tt::ident)
        .unwrap_or_default()
        .to_string();
    let (sig_end, body_idx) = find_body(tts, kw);
    let signature = render(&tts[*i..sig_end]);
    let children = match body_idx.map(|b| &tts[b]) {
        Some(Tt::Group { items, .. }) => parse_items(items, cfg_test),
        _ => Vec::new(),
    };
    *i = sig_end + 1;
    Item {
        kind: ItemKind::Trait,
        name,
        vis,
        line,
        signature,
        children,
        body: None,
        cfg_test,
    }
}

fn parse_impl(tts: &[Tt], i: &mut usize, kw: usize, vis: Vis, cfg_test: bool) -> Item {
    let line = tts[*i].line();
    let (sig_end, body_idx) = find_body(tts, kw);
    let header = &tts[kw..sig_end];
    let (self_ty, trait_name) = impl_heads(header);
    let signature = render(&tts[*i..sig_end]);
    let children = match body_idx.map(|b| &tts[b]) {
        Some(Tt::Group { items, .. }) => parse_items(items, cfg_test),
        _ => Vec::new(),
    };
    *i = sig_end + 1;
    Item {
        kind: ItemKind::Impl {
            self_ty,
            trait_name,
        },
        name: String::new(),
        vis,
        line,
        signature,
        children,
        body: None,
        cfg_test,
    }
}

/// Extracts `(self type head, trait head)` from an `impl` header:
/// `impl<T> Trait for Type<T>` → `("Type", Some("Trait"))`;
/// `impl Engine` → `("Engine", None)`.
fn impl_heads(header: &[Tt]) -> (String, Option<String>) {
    // Skip `impl` and an optional generics `<…>` run.
    let mut k = 1usize;
    if header.get(k).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while k < header.len() {
            if header[k].is_punct('<') {
                depth += 1;
            }
            if header[k].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    let for_pos = header.iter().position(|t| t.ident() == Some("for"));
    let head_at = |from: usize, to: usize| -> String {
        header[from..to]
            .iter()
            .filter_map(Tt::ident)
            .next_back()
            .map(|s| s.to_string())
            .unwrap_or_default()
    };
    match for_pos {
        Some(p) => {
            // Trait head: last path ident before any `<` between k and p.
            let lt = header[k..p]
                .iter()
                .position(|t| t.is_punct('<'))
                .map(|x| k + x)
                .unwrap_or(p);
            let trait_name = head_at(k, lt);
            let lt2 = header[p + 1..]
                .iter()
                .position(|t| t.is_punct('<'))
                .map(|x| p + 1 + x)
                .unwrap_or(header.len());
            let ty = head_at(p + 1, lt2);
            (ty, Some(trait_name).filter(|s| !s.is_empty()))
        }
        None => {
            let lt = header[k..]
                .iter()
                .position(|t| t.is_punct('<'))
                .map(|x| k + x)
                .unwrap_or(header.len());
            (head_at(k, lt), None)
        }
    }
}

fn parse_mod(tts: &[Tt], i: &mut usize, kw: usize, vis: Vis, cfg_test: bool) -> Item {
    let line = tts[*i].line();
    let name = tts
        .get(kw + 1)
        .and_then(Tt::ident)
        .unwrap_or_default()
        .to_string();
    let (sig_end, body_idx) = find_body(tts, kw);
    let signature = render(&tts[*i..sig_end]);
    let gated = cfg_test || name == "tests" || name == "proptests";
    let (children, inline) = match body_idx.map(|b| &tts[b]) {
        Some(Tt::Group { items, .. }) => (parse_items(items, gated), true),
        _ => (Vec::new(), false),
    };
    *i = sig_end + 1;
    Item {
        kind: ItemKind::Mod { inline },
        name,
        vis,
        line,
        signature,
        children,
        body: None,
        cfg_test,
    }
}

fn parse_simple(
    tts: &[Tt],
    i: &mut usize,
    kw: usize,
    vis: Vis,
    cfg_test: bool,
    kind: ItemKind,
) -> Item {
    let line = tts[*i].line();
    let name = tts
        .get(kw + 1)
        .and_then(Tt::ident)
        .unwrap_or_default()
        .to_string();
    let (sig_end, _) = find_body(tts, kw);
    let signature = render(&tts[*i..sig_end]);
    *i = sig_end + 1;
    Item {
        kind,
        name,
        vis,
        line,
        signature,
        children: Vec::new(),
        body: None,
        cfg_test,
    }
}

fn parse_macro_def(tts: &[Tt], i: &mut usize, kw: usize, cfg_test: bool) -> Item {
    let line = tts[*i].line();
    // `macro_rules ! name { … }`
    let name = tts
        .get(kw + 2)
        .and_then(Tt::ident)
        .unwrap_or_default()
        .to_string();
    let (sig_end, body_idx) = find_body(tts, kw);
    let signature = render(&tts[*i..sig_end]);
    *i = body_idx.unwrap_or(sig_end) + 1;
    Item {
        kind: ItemKind::MacroDef,
        name,
        vis: Vis::Private,
        line,
        signature,
        children: Vec::new(),
        body: None,
        cfg_test,
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// A parsed expression. Lines are the first token's.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A (possibly multi-segment) path: `x`, `a::b::c`, `Self::go`.
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Source line.
        line: u32,
    },
    /// A literal. `float` is true for numeric literals containing `.`
    /// or a float suffix.
    Lit {
        /// True for float-looking numeric literals.
        float: bool,
        /// Source line.
        line: u32,
    },
    /// A prefix operator (`-`, `!`, `*`, `&`).
    Unary {
        /// The operator character.
        op: char,
        /// Operand.
        inner: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// A binary operator.
    Binary {
        /// Operator text (`+`, `-`, `*`, `/`, `==`, `&&`, `..`, `=`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line (of the operator).
        line: u32,
    },
    /// `expr as Type`.
    Cast {
        /// The value being cast.
        inner: Box<Expr>,
        /// Rendered target type.
        ty: String,
        /// Source line.
        line: u32,
    },
    /// `callee(args…)`.
    Call {
        /// The called expression (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `recv.method::<T>(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Rendered turbofish generics, empty when absent.
        turbofish: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `base.field` (including tuple fields).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name (tuple index rendered as digits).
        name: String,
        /// Source line.
        line: u32,
    },
    /// `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `|…| body` / `move |…| body`.
    Closure {
        /// The closure body.
        body: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `name!(…)` / `path::name!(…)`.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Comma-split interior, parsed as expressions.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A structural grouping: blocks, `if`/`match`/`for` constructs,
    /// struct literals, tuples — children parsed, shape erased.
    Seq {
        /// Contained expressions.
        exprs: Vec<Expr>,
        /// Source line.
        line: u32,
    },
}

impl Expr {
    /// The source line this expression starts on.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Seq { line, .. } => *line,
        }
    }

    /// Visits this expression and all sub-expressions, pre-order.
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } => {}
            Expr::Unary { inner, .. } => inner.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Cast { inner, .. } => inner.visit(f),
            Expr::Call { callee, args, .. } => {
                callee.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.visit(f);
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Field { base, .. } => base.visit(f),
            Expr::Index { base, index, .. } => {
                base.visit(f);
                index.visit(f);
            }
            Expr::Closure { body, .. } => body.visit(f),
            Expr::Macro { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Seq { exprs, .. } => {
                for e in exprs {
                    e.visit(f);
                }
            }
        }
    }
}

/// Splits a token-tree slice at top-level occurrences of `sep`.
/// Empty segments are dropped.
pub fn split_top(tts: &[Tt], sep: char) -> Vec<&[Tt]> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for (k, t) in tts.iter().enumerate() {
        if t.is_punct(sep) {
            if k > start {
                out.push(&tts[start..k]);
            }
            start = k + 1;
        }
    }
    if start < tts.len() {
        out.push(&tts[start..]);
    }
    out
}

/// Parses a block's interior (statement list) into a `Seq`.
pub fn parse_block(tts: &[Tt]) -> Expr {
    let line = tts.first().map_or(0, Tt::line);
    let mut exprs = Vec::new();
    for stmt in split_top(tts, ';') {
        exprs.push(parse_stmt(stmt));
    }
    Expr::Seq { exprs, line }
}

/// Statement keywords whose "head" parts are patterns/types, not
/// expressions.
fn parse_stmt(tts: &[Tt]) -> Expr {
    let line = tts.first().map_or(0, Tt::line);
    // `let PAT = expr` / `let PAT: Ty = expr` / let-else: parse the
    // initializer; a trailing `else { … }` block is folded in.
    if tts.first().and_then(Tt::ident) == Some("let") {
        if let Some(eq) = find_top_assign(tts) {
            // The pattern may contain const generics etc. — skipped.
            return single_or_seq(vec![parse_expr(&tts[eq + 1..])], line);
        }
        return Expr::Seq {
            exprs: Vec::new(),
            line,
        };
    }
    // Nested items inside fn bodies (helper fns, use, consts): parse
    // helper fn bodies so their calls/sinks are visible.
    if matches!(
        tts.first().and_then(Tt::ident),
        Some("fn" | "use" | "struct" | "impl" | "const" | "static" | "type")
    ) {
        let items = parse_items(tts, false);
        let exprs = items.into_iter().filter_map(|it| it.body).collect();
        return single_or_seq(exprs, line);
    }
    parse_expr(tts)
}

/// Finds the index of a top-level `=` that is an assignment (not `==`,
/// `=>`, `<=`, `>=`, `!=`, `+=` …).
fn find_top_assign(tts: &[Tt]) -> Option<usize> {
    let mut k = 0usize;
    let mut angle = 0i32;
    // Index of the last `>` that closed a generic bracket: the `=` of
    // `let x: Vec<u32> = …` follows one and is an assignment, unlike the
    // `=` of a `>=` comparison (whose `>` never opened a bracket).
    let mut closed_angle_at = usize::MAX;
    while k < tts.len() {
        let t = &tts[k];
        if t.is_punct('<') {
            angle += 1;
        }
        if t.is_punct('>') && angle > 0 {
            angle -= 1;
            closed_angle_at = k;
        }
        if t.is_punct('=') && angle == 0 {
            let next_eq = tts.get(k + 1).is_some_and(|t| t.is_punct('='));
            let next_gt = tts.get(k + 1).is_some_and(|t| t.is_punct('>'));
            let prev_op = k > 0
                && !(closed_angle_at == k - 1 && tts[k - 1].is_punct('>'))
                && matches!(&tts[k - 1], Tt::Tok(s) if matches!(s.tok, Tok::Punct('=' | '<' | '>' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')));
            if !next_eq && !next_gt && !prev_op {
                return Some(k);
            }
            if next_eq {
                k += 1;
            }
        }
        k += 1;
    }
    None
}

fn single_or_seq(mut exprs: Vec<Expr>, line: u32) -> Expr {
    if exprs.len() == 1 {
        exprs.pop().unwrap_or(Expr::Seq {
            exprs: Vec::new(),
            line,
        })
    } else {
        Expr::Seq { exprs, line }
    }
}

/// Binary operator precedence (higher binds tighter). `as` casts are
/// handled in the postfix loop.
fn precedence(op: &str) -> Option<u8> {
    Some(match op {
        "*" | "/" | "%" => 10,
        "+" | "-" => 9,
        "<<" | ">>" => 8,
        "&" => 7,
        "^" => 6,
        "|" => 5,
        "==" | "!=" | "<" | ">" | "<=" | ">=" => 4,
        "&&" => 3,
        "||" => 2,
        ".." | "..=" => 1,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^=" | "<<=" | ">>=" => 0,
        _ => return None,
    })
}

/// Parses one expression fragment (no top-level `;`).
pub fn parse_expr(tts: &[Tt]) -> Expr {
    let mut pos = 0usize;
    let e = parse_binary(tts, &mut pos, 0);
    if pos >= tts.len() {
        return e;
    }
    // Trailing unparsed trees (match arms, else-chains, …): parse each
    // remaining tree structurally so nothing is lost.
    let line = e.line();
    let mut exprs = vec![e];
    while pos < tts.len() {
        exprs.push(parse_primary_tree(&tts[pos..], &mut pos_adapter(&mut pos)));
    }
    Expr::Seq { exprs, line }
}

// Helper so parse_primary_tree can advance the outer cursor while
// receiving a window slice.
fn pos_adapter(pos: &mut usize) -> impl FnMut(usize) + '_ {
    move |n| *pos += n
}

fn parse_primary_tree(window: &[Tt], advance: &mut impl FnMut(usize)) -> Expr {
    let mut local = 0usize;
    let e = parse_unary_postfix(window, &mut local);
    advance(local.max(1));
    e
}

/// Multi-character operator starting at `k`; returns (op, token count).
fn peek_op(tts: &[Tt], k: usize) -> Option<(String, usize)> {
    let c0 = match &tts.get(k)? {
        Tt::Tok(s) => match s.tok {
            Tok::Punct(c) => c,
            _ => return None,
        },
        _ => return None,
    };
    let c1 = tts.get(k + 1).and_then(|t| match t {
        Tt::Tok(s) => match s.tok {
            Tok::Punct(c) => Some(c),
            _ => None,
        },
        _ => None,
    });
    let c2 = tts.get(k + 2).and_then(|t| match t {
        Tt::Tok(s) => match s.tok {
            Tok::Punct(c) => Some(c),
            _ => None,
        },
        _ => None,
    });
    let two = |a: char, b: char| c0 == a && c1 == Some(b);
    if two('.', '.') {
        return if c2 == Some('=') {
            Some(("..=".into(), 3))
        } else {
            Some(("..".into(), 2))
        };
    }
    for (a, b, s) in [
        ('=', '=', "=="),
        ('!', '=', "!="),
        ('<', '=', "<="),
        ('>', '=', ">="),
        ('&', '&', "&&"),
        ('|', '|', "||"),
        ('<', '<', "<<"),
        ('>', '>', ">>"),
        ('+', '=', "+="),
        ('-', '=', "-="),
        ('*', '=', "*="),
        ('/', '=', "/="),
        ('%', '=', "%="),
    ] {
        if two(a, b) {
            // `<<=` / `>>=`
            if (s == "<<" || s == ">>") && c2 == Some('=') {
                return Some((format!("{s}="), 3));
            }
            return Some((s.into(), 2));
        }
    }
    if matches!(
        c0,
        '+' | '-' | '*' | '/' | '%' | '<' | '>' | '&' | '|' | '^' | '='
    ) {
        // `=>` is an arm arrow, not an operator.
        if c0 == '=' && c1 == Some('>') {
            return None;
        }
        return Some((c0.to_string(), 1));
    }
    None
}

fn parse_binary(tts: &[Tt], pos: &mut usize, min_prec: u8) -> Expr {
    let mut lhs = parse_unary_postfix(tts, pos);
    while let Some((op, n)) = peek_op(tts, *pos) {
        let Some(prec) = precedence(&op) else { break };
        if prec < min_prec {
            break;
        }
        let line = tts[*pos].line();
        *pos += n;
        if *pos >= tts.len() {
            // Trailing operator (`0..` range) — keep lhs.
            break;
        }
        let rhs = parse_binary(tts, pos, prec + 1);
        lhs = Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            line,
        };
    }
    lhs
}

fn parse_unary_postfix(tts: &[Tt], pos: &mut usize) -> Expr {
    let Some(first) = tts.get(*pos) else {
        return Expr::Seq {
            exprs: Vec::new(),
            line: 0,
        };
    };
    let line = first.line();
    // Prefix operators.
    if let Tt::Tok(s) = first {
        if let Tok::Punct(c @ ('-' | '!' | '*' | '&')) = s.tok {
            *pos += 1;
            // `&mut x`
            if tts.get(*pos).and_then(Tt::ident) == Some("mut") {
                *pos += 1;
            }
            let inner = parse_unary_postfix(tts, pos);
            return Expr::Unary {
                op: c,
                inner: Box::new(inner),
                line,
            };
        }
    }
    let mut e = parse_primary(tts, pos);
    // Postfix loop.
    loop {
        match tts.get(*pos) {
            // `.method(…)`, `.field`, `.await`, `.0`
            Some(t) if t.is_punct('.') => {
                // Stop at `..` range (handled as binary).
                if tts.get(*pos + 1).is_some_and(|t| t.is_punct('.')) {
                    break;
                }
                let dline = t.line();
                *pos += 1;
                match tts.get(*pos) {
                    Some(Tt::Tok(s)) => match &s.tok {
                        Tok::Ident(name) => {
                            let name = name.clone();
                            *pos += 1;
                            // Turbofish `::<…>`.
                            let mut turbofish = String::new();
                            if tts.get(*pos).is_some_and(|t| t.is_punct(':'))
                                && tts.get(*pos + 1).is_some_and(|t| t.is_punct(':'))
                                && tts.get(*pos + 2).is_some_and(|t| t.is_punct('<'))
                            {
                                let start = *pos + 2;
                                let mut k = start;
                                let mut depth = 0i32;
                                while k < tts.len() {
                                    if tts[k].is_punct('<') {
                                        depth += 1;
                                    }
                                    if tts[k].is_punct('>') {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    k += 1;
                                }
                                turbofish = render(&tts[start..=k.min(tts.len() - 1)]);
                                *pos = (k + 1).min(tts.len());
                            }
                            if tts.get(*pos).is_some_and(|t| t.is_group('(')) {
                                let args = match &tts[*pos] {
                                    Tt::Group { items, .. } => {
                                        split_top(items, ',').into_iter().map(parse_expr).collect()
                                    }
                                    _ => Vec::new(),
                                };
                                *pos += 1;
                                e = Expr::MethodCall {
                                    recv: Box::new(e),
                                    method: name,
                                    turbofish,
                                    args,
                                    line: dline,
                                };
                            } else {
                                e = Expr::Field {
                                    base: Box::new(e),
                                    name,
                                    line: dline,
                                };
                            }
                        }
                        Tok::Num(n) => {
                            let name = n.clone();
                            *pos += 1;
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line: dline,
                            };
                        }
                        _ => break,
                    },
                    _ => break,
                }
            }
            // Call.
            Some(t) if t.is_group('(') => {
                let args = match t {
                    Tt::Group { items, .. } => {
                        split_top(items, ',').into_iter().map(parse_expr).collect()
                    }
                    _ => Vec::new(),
                };
                let cline = t.line();
                *pos += 1;
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line: cline,
                };
            }
            // Index.
            Some(t) if t.is_group('[') => {
                let idx = match t {
                    Tt::Group { items, .. } => parse_expr(items),
                    _ => Expr::Seq {
                        exprs: Vec::new(),
                        line: 0,
                    },
                };
                let iline = t.line();
                *pos += 1;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(idx),
                    line: iline,
                };
            }
            // `?`
            Some(t) if t.is_punct('?') => {
                *pos += 1;
            }
            // `as Type`
            Some(t) if t.ident() == Some("as") => {
                let cline = t.line();
                *pos += 1;
                let start = *pos;
                // A type: idents, `::`, generics, `&`, lifetimes — stop
                // at anything else.
                let mut depth = 0i32;
                while *pos < tts.len() {
                    let t = &tts[*pos];
                    let ok = match t {
                        Tt::Tok(s) => match &s.tok {
                            Tok::Ident(_) | Tok::Lifetime => true,
                            Tok::Punct('<') => {
                                depth += 1;
                                true
                            }
                            Tok::Punct('>') => {
                                if depth == 0 {
                                    false
                                } else {
                                    depth -= 1;
                                    true
                                }
                            }
                            Tok::Punct(':' | '&' | '*') => true,
                            _ => false,
                        },
                        Tt::Group { open, .. } => *open == '[' && *pos == start,
                    };
                    if !ok {
                        break;
                    }
                    *pos += 1;
                    // A bare path type ends after its last ident unless
                    // `::`/`<` follows; simple heuristic: stop when next
                    // token is not `:`/`<` and current was an ident.
                    if tts[*pos - 1].ident().is_some()
                        && !matches!(tts.get(*pos), Some(t) if t.is_punct(':') || t.is_punct('<'))
                        && depth == 0
                    {
                        break;
                    }
                }
                let ty = render(&tts[start..*pos]);
                e = Expr::Cast {
                    inner: Box::new(e),
                    ty,
                    line: cline,
                };
            }
            _ => break,
        }
    }
    e
}

/// Expression-position keywords handled structurally.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "match", "for", "while", "loop", "unsafe", "return", "break", "continue", "move",
    "async", "let", "in", "await", "dyn", "ref", "mut", "where",
];

fn parse_primary(tts: &[Tt], pos: &mut usize) -> Expr {
    let Some(first) = tts.get(*pos) else {
        return Expr::Seq {
            exprs: Vec::new(),
            line: 0,
        };
    };
    let line = first.line();
    match first {
        Tt::Group {
            open: '(', items, ..
        } => {
            *pos += 1;
            let parts: Vec<Expr> = split_top(items, ',').into_iter().map(parse_expr).collect();
            single_or_seq(parts, line)
        }
        Tt::Group {
            open: '{', items, ..
        } => {
            *pos += 1;
            parse_block(items)
        }
        Tt::Group { items, .. } => {
            // Array literal `[a, b]` / `[x; n]` (no other group opener
            // reaches primary position — `(` and `{` matched above).
            *pos += 1;
            let parts: Vec<Expr> = split_top(items, ',')
                .into_iter()
                .flat_map(|p| split_top(p, ';'))
                .map(parse_expr)
                .collect();
            Expr::Seq { exprs: parts, line }
        }
        Tt::Tok(s) => match &s.tok {
            Tok::Num(n) => {
                *pos += 1;
                let float = n.contains('.') || n.contains("f3") || n.contains("f6");
                Expr::Lit { float, line }
            }
            Tok::Str(_) | Tok::CharLit => {
                *pos += 1;
                Expr::Lit { float: false, line }
            }
            Tok::Lifetime => {
                // Loop label `'a: loop { … }`.
                *pos += 1;
                if tts.get(*pos).is_some_and(|t| t.is_punct(':')) {
                    *pos += 1;
                }
                parse_primary(tts, pos)
            }
            Tok::Punct('|') => parse_closure(tts, pos, line),
            Tok::Punct('#') => {
                // Expression attribute — skip `#[…]`.
                *pos += 1;
                if tts.get(*pos).is_some_and(|t| t.is_group('[')) {
                    *pos += 1;
                }
                parse_primary(tts, pos)
            }
            Tok::Punct(_) => {
                // Something we don't model — consume and move on.
                *pos += 1;
                Expr::Seq {
                    exprs: Vec::new(),
                    line,
                }
            }
            Tok::Ident(id) => match id.as_str() {
                "if" | "while" => parse_cond_construct(tts, pos, line),
                "match" => parse_match(tts, pos, line),
                "for" => parse_for(tts, pos, line),
                "loop" | "unsafe" | "else" => {
                    *pos += 1;
                    // `else if` chains re-enter here naturally.
                    if tts.get(*pos).is_some_and(|t| t.is_group('{')) {
                        let block = match &tts[*pos] {
                            Tt::Group { items, .. } => parse_block(items),
                            _ => Expr::Seq {
                                exprs: Vec::new(),
                                line,
                            },
                        };
                        *pos += 1;
                        block
                    } else {
                        parse_primary(tts, pos)
                    }
                }
                "return" | "break" | "continue" => {
                    *pos += 1;
                    if *pos < tts.len() && !tts[*pos].is_punct(',') {
                        let inner = parse_binary(tts, pos, 0);
                        Expr::Seq {
                            exprs: vec![inner],
                            line,
                        }
                    } else {
                        Expr::Seq {
                            exprs: Vec::new(),
                            line,
                        }
                    }
                }
                "move" => {
                    *pos += 1;
                    parse_primary(tts, pos)
                }
                "let" => {
                    // `if let PAT = expr` arrives here with `let` first.
                    *pos += 1;
                    // Skip to the top-level `=` then parse the rhs.
                    while *pos < tts.len() && !tts[*pos].is_punct('=') {
                        *pos += 1;
                    }
                    if *pos < tts.len() {
                        *pos += 1;
                    }
                    parse_binary(tts, pos, 1)
                }
                _ => parse_path_like(tts, pos, line),
            },
        },
    }
}

fn parse_closure(tts: &[Tt], pos: &mut usize, line: u32) -> Expr {
    // `|params| body` — find the closing `|` (params contain no `|`
    // except inside groups, which the tree layer already nests).
    *pos += 1; // opening `|`
    if tts.get(*pos).is_some_and(|t| t.is_punct('|')) {
        // `||` zero-arg closure arrives as two puncts.
        *pos += 1;
    } else {
        while *pos < tts.len() && !tts[*pos].is_punct('|') {
            *pos += 1;
        }
        *pos += 1; // closing `|`
    }
    // Optional `-> Type` before a brace body.
    if tts.get(*pos).is_some_and(|t| t.is_punct('-'))
        && tts.get(*pos + 1).is_some_and(|t| t.is_punct('>'))
    {
        *pos += 2;
        while *pos < tts.len() && !tts[*pos].is_group('{') {
            *pos += 1;
        }
    }
    let body = parse_binary(tts, pos, 0);
    Expr::Closure {
        body: Box::new(body),
        line,
    }
}

/// `if cond { … } [else …]` / `while cond { … }` — in condition
/// position `{` always opens the block (Rust forbids bare struct
/// literals there), so scan to the first top-level brace group.
fn parse_cond_construct(tts: &[Tt], pos: &mut usize, line: u32) -> Expr {
    *pos += 1; // keyword
    let cond_start = *pos;
    while *pos < tts.len() && !tts[*pos].is_group('{') {
        *pos += 1;
    }
    let cond = parse_expr(&tts[cond_start..*pos]);
    let mut exprs = vec![cond];
    if let Some(Tt::Group { items, .. }) = tts.get(*pos) {
        exprs.push(parse_block(items));
        *pos += 1;
    }
    // `else` chain.
    while tts.get(*pos).and_then(Tt::ident) == Some("else") {
        *pos += 1;
        match tts.get(*pos) {
            Some(Tt::Group {
                open: '{', items, ..
            }) => {
                exprs.push(parse_block(items));
                *pos += 1;
            }
            Some(Tt::Tok(s)) if s.is_ident("if") => {
                exprs.push(parse_cond_construct(tts, pos, line));
            }
            _ => break,
        }
    }
    Expr::Seq { exprs, line }
}

fn parse_match(tts: &[Tt], pos: &mut usize, line: u32) -> Expr {
    *pos += 1; // `match`
    let scrut_start = *pos;
    while *pos < tts.len() && !tts[*pos].is_group('{') {
        *pos += 1;
    }
    let scrut = parse_expr(&tts[scrut_start..*pos]);
    let mut exprs = vec![scrut];
    if let Some(Tt::Group { items, .. }) = tts.get(*pos) {
        exprs.extend(parse_match_arms(items));
        *pos += 1;
    }
    Expr::Seq { exprs, line }
}

/// Parses match arms: `PAT [if guard] => expr [,]`. Patterns are
/// skipped; guards and arm bodies are parsed.
fn parse_match_arms(tts: &[Tt]) -> Vec<Expr> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k < tts.len() {
        // Find `=>`.
        let mut arrow = None;
        let mut guard_at = None;
        let mut m = k;
        while m < tts.len() {
            if tts[m].is_punct('=') && tts.get(m + 1).is_some_and(|t| t.is_punct('>')) {
                arrow = Some(m);
                break;
            }
            if tts[m].ident() == Some("if") && guard_at.is_none() {
                guard_at = Some(m);
            }
            m += 1;
        }
        let Some(arrow) = arrow else { break };
        if let Some(g) = guard_at {
            out.push(parse_expr(&tts[g + 1..arrow]));
        }
        let body_start = arrow + 2;
        // Arm body: a single brace group, or a fragment up to the next
        // top-level `,`.
        if tts.get(body_start).is_some_and(|t| t.is_group('{')) {
            if let Some(Tt::Group { items, .. }) = tts.get(body_start) {
                out.push(parse_block(items));
            }
            k = body_start + 1;
            if tts.get(k).is_some_and(|t| t.is_punct(',')) {
                k += 1;
            }
        } else {
            let mut end = body_start;
            while end < tts.len() && !tts[end].is_punct(',') {
                end += 1;
            }
            out.push(parse_expr(&tts[body_start..end]));
            k = end + 1;
        }
    }
    out
}

fn parse_for(tts: &[Tt], pos: &mut usize, line: u32) -> Expr {
    *pos += 1; // `for`
               // Skip the pattern up to `in`.
    while *pos < tts.len() && tts[*pos].ident() != Some("in") {
        *pos += 1;
    }
    *pos += 1; // `in`
    let iter_start = *pos;
    while *pos < tts.len() && !tts[*pos].is_group('{') {
        *pos += 1;
    }
    let iter = parse_expr(&tts[iter_start..*pos]);
    let mut exprs = vec![iter];
    if let Some(Tt::Group { items, .. }) = tts.get(*pos) {
        exprs.push(parse_block(items));
        *pos += 1;
    }
    Expr::Seq { exprs, line }
}

/// Paths, macro calls and struct literals.
fn parse_path_like(tts: &[Tt], pos: &mut usize, line: u32) -> Expr {
    let mut segs = Vec::new();
    loop {
        match tts.get(*pos).and_then(Tt::ident) {
            Some(id) if !EXPR_KEYWORDS.contains(&id) => {
                segs.push(id.to_string());
                *pos += 1;
            }
            _ => break,
        }
        // `::` continues the path; `::<` is a turbofish in path position.
        if tts.get(*pos).is_some_and(|t| t.is_punct(':'))
            && tts.get(*pos + 1).is_some_and(|t| t.is_punct(':'))
        {
            if tts.get(*pos + 2).is_some_and(|t| t.is_punct('<')) {
                // Skip the turbofish.
                let mut k = *pos + 2;
                let mut depth = 0i32;
                while k < tts.len() {
                    if tts[k].is_punct('<') {
                        depth += 1;
                    }
                    if tts[k].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                *pos = (k + 1).min(tts.len());
                break;
            }
            *pos += 2;
            continue;
        }
        break;
    }
    // Macro call: `name!( … )` / `name![…]` / `name!{…}`.
    if tts.get(*pos).is_some_and(|t| t.is_punct('!')) {
        if let Some(Tt::Group { items, .. }) = tts.get(*pos + 1) {
            let args = split_top(items, ',').into_iter().map(parse_expr).collect();
            *pos += 2;
            return Expr::Macro {
                name: segs.last().cloned().unwrap_or_default(),
                args,
                line,
            };
        }
    }
    // Struct literal: `Path { field: expr, … }` — heads are
    // capitalized (or `Self`), which keeps `x { … }` blocks unambiguous
    // enough for a lint parser.
    if tts.get(*pos).is_some_and(|t| t.is_group('{'))
        && segs
            .last()
            .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
    {
        if let Some(Tt::Group { items, .. }) = tts.get(*pos) {
            let mut exprs = Vec::new();
            for field in split_top(items, ',') {
                // `name: expr` / shorthand `name` / `..base`.
                match field.iter().position(|t| t.is_punct(':')) {
                    Some(c) => exprs.push(parse_expr(&field[c + 1..])),
                    None => exprs.push(parse_expr(field)),
                }
            }
            *pos += 1;
            return Expr::Seq { exprs, line };
        }
    }
    if segs.is_empty() {
        *pos += 1;
        return Expr::Seq {
            exprs: Vec::new(),
            line,
        };
    }
    Expr::Path { segs, line }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&tokenize(src))
    }

    #[test]
    fn items_and_visibility_parse() {
        let f = parse(
            "pub fn a() {}\nfn b() {}\npub(crate) struct S { pub x: u32, y: f64 }\npub mod m { pub fn c() {} }\n",
        );
        assert_eq!(f.items.len(), 4);
        assert_eq!(f.items[0].name, "a");
        assert_eq!(f.items[0].vis, Vis::Pub);
        assert_eq!(f.items[1].vis, Vis::Private);
        assert_eq!(f.items[2].vis, Vis::Scoped);
        let fields = &f.items[2].children;
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "x");
        assert_eq!(fields[0].vis, Vis::Pub);
        assert_eq!(f.items[3].children[0].name, "c");
    }

    #[test]
    fn impl_heads_resolve() {
        let f = parse("impl<'a> Engine<'a> { pub fn run(&self) {} }\nimpl Clone for Engine<'_> { fn clone(&self) -> Self { todo!() } }");
        match &f.items[0].kind {
            ItemKind::Impl {
                self_ty,
                trait_name,
            } => {
                assert_eq!(self_ty, "Engine");
                assert!(trait_name.is_none());
            }
            k => panic!("{k:?}"),
        }
        match &f.items[1].kind {
            ItemKind::Impl {
                self_ty,
                trait_name,
            } => {
                assert_eq!(self_ty, "Engine");
                assert_eq!(trait_name.as_deref(), Some("Clone"));
            }
            k => panic!("{k:?}"),
        }
    }

    #[test]
    fn cfg_test_gates_items_and_inline_mods() {
        let f = parse("#[cfg(test)]\nmod tests { fn t() {} }\nfn live() {}");
        assert!(f.items[0].cfg_test);
        assert!(f.items[0].children[0].cfg_test);
        assert!(!f.items[1].cfg_test);
    }

    #[test]
    fn method_chains_parse() {
        let f = parse("fn f(v: &[f64]) -> f64 { v.iter().copied().sum::<f64>() }");
        let body = f.items[0].body.as_ref().unwrap();
        let mut methods = Vec::new();
        body.visit(&mut |e| {
            if let Expr::MethodCall {
                method, turbofish, ..
            } = e
            {
                methods.push((method.clone(), turbofish.clone()));
            }
        });
        assert_eq!(methods.len(), 3);
        assert_eq!(methods[0].0, "sum");
        assert!(methods[0].1.contains("f64"), "{methods:?}");
    }

    #[test]
    fn binary_and_index_structure() {
        let f = parse("fn f(v: &[f64], i: usize) -> f64 { v[i + 1] + v[0] }");
        let body = f.items[0].body.as_ref().unwrap();
        let mut indexed_arith = 0;
        body.visit(&mut |e| {
            if let Expr::Index { index, .. } = e {
                if matches!(**index, Expr::Binary { .. }) {
                    indexed_arith += 1;
                }
            }
        });
        assert_eq!(indexed_arith, 1);
    }

    #[test]
    fn casts_and_closures_parse() {
        let f = parse("fn f(x: f64) -> f32 { let g = |y: f64| y as f32; g(x) }");
        let body = f.items[0].body.as_ref().unwrap();
        let mut casts = Vec::new();
        let mut closures = 0;
        body.visit(&mut |e| match e {
            Expr::Cast { ty, .. } => casts.push(ty.clone()),
            Expr::Closure { .. } => closures += 1,
            _ => {}
        });
        assert_eq!(casts, vec!["f32"]);
        assert_eq!(closures, 1);
    }

    #[test]
    fn match_arms_and_macros_parse() {
        let src = r#"
            fn f(x: Option<u32>) -> u32 {
                match x {
                    Some(v) if v > 0 => v.checked_mul(2).unwrap(),
                    _ => panic!("boom"),
                }
            }
        "#;
        let f = parse(src);
        let body = f.items[0].body.as_ref().unwrap();
        let mut saw_unwrap = false;
        let mut saw_panic = false;
        body.visit(&mut |e| match e {
            Expr::MethodCall { method, .. } if method == "unwrap" => saw_unwrap = true,
            Expr::Macro { name, .. } if name == "panic" => saw_panic = true,
            _ => {}
        });
        assert!(saw_unwrap && saw_panic);
    }

    #[test]
    fn signatures_render_canonically() {
        let f = parse("pub   fn  run_controlled ( &self , ctl : RunControl ) -> RunOutcome { }");
        assert_eq!(
            f.items[0].signature,
            "pub fn run_controlled(&self, ctl: RunControl) -> RunOutcome"
        );
    }
}
