//! Workspace file discovery.

use std::path::{Path, PathBuf};

/// Directory names never descended into: vendored dependency subsets are
/// not ours to lint, `target` is build output, and `fixtures` holds the
/// lint suite's own deliberately-violating sources.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures", "results"];

/// A source file queued for analysis.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes (the allowlist key).
    pub rel_path: String,
    /// File contents.
    pub text: String,
}

impl SourceFile {
    /// True for files that are test-only by location or naming convention:
    /// anything under a `tests/`, `benches/` or `examples/` directory,
    /// plus the in-crate `proptests.rs` / `tests.rs` / `test_support.rs`
    /// modules (each is `#[cfg(test)]`-gated at its `mod` site).
    pub fn is_test_code(&self) -> bool {
        let p = &self.rel_path;
        p.split('/').any(|seg| {
            matches!(seg, "tests" | "benches" | "examples")
                || matches!(seg, "proptests.rs" | "tests.rs" | "test_support.rs")
        })
    }

    /// The workspace crate the file belongs to (`crates/<name>/…`), or
    /// `"."` for root-package sources.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.rel_path.split('/');
        match (parts.next(), parts.next()) {
            (Some("crates"), Some(name)) => name,
            _ => ".",
        }
    }
}

/// Collects every `.rs` file of the workspace under `root`, skipping
/// [`SKIP_DIRS`]. Files come back sorted by their normalized repo-relative
/// path **as UTF-8 bytes** — not by `PathBuf`'s platform-dependent
/// component order — so finding order and the API snapshots are
/// byte-stable across filesystems and readdir orders.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    let mut keyed: Vec<(String, PathBuf)> = paths
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            (rel, p)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()));
    let mut out = Vec::with_capacity(keyed.len());
    for (rel, p) in keyed {
        let text = std::fs::read_to_string(&p)?;
        out.push(SourceFile {
            rel_path: rel,
            text,
        });
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(path: &str) -> SourceFile {
        SourceFile {
            rel_path: path.to_string(),
            text: String::new(),
        }
    }

    #[test]
    fn test_code_is_recognised_by_path() {
        assert!(sf("crates/core/src/proptests.rs").is_test_code());
        assert!(sf("crates/transfer/src/engine/tests.rs").is_test_code());
        assert!(sf("tests/determinism.rs").is_test_code());
        assert!(sf("crates/bench/benches/engine.rs").is_test_code());
        assert!(!sf("crates/core/src/planner.rs").is_test_code());
    }

    #[test]
    fn crate_names_resolve() {
        assert_eq!(sf("crates/core/src/lib.rs").crate_name(), "core");
        assert_eq!(sf("src/lib.rs").crate_name(), ".");
    }
}
