//! Positive fixture for the fp-order rule: every trap in one file.
//! Never compiled — parsed by tests/rules.rs.

/// NaN-unsafe comparator: panics or silently reorders.
fn comparator(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

/// Float reduction over a parallel iterator: order is nondeterministic.
fn accumulation(items: &[Sample]) -> f64 {
    items.par_iter().map(|s| s.energy_joules()).sum::<f64>()
}

/// Float fold seeded with a float literal over an unordered source.
fn folded(items: &[Sample]) -> f64 {
    items.into_par_iter().fold(0.0, |acc, s| acc + s.as_mb())
}

/// Precision narrowing in (what the test declares) a hot path.
fn narrowing(x: f64) -> f32 {
    x as f32
}
