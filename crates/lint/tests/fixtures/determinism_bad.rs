// Fixture: every determinism violation the rule must catch.
// NOT compiled — consumed as text by tests/rules.rs.
use std::collections::HashMap;
use std::collections::HashSet;

fn clock() -> std::time::Instant {
    std::time::Instant::now()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let _ = rng;
    rand::random()
}

fn cache() -> HashMap<u32, HashSet<u32>> {
    HashMap::new()
}
