//! Fixture for the api-surface rule: a small crate surface with public
//! and private items side by side. Never compiled — parsed by
//! tests/rules.rs, which also perturbs the snapshot to prove drift in
//! either direction is caught.

pub fn exported(x: u32) -> u32 {
    x
}

fn hidden() {}

pub struct Surface {
    pub visible: u32,
    secret: u32,
}

impl Surface {
    pub fn reading(&self) -> u32 {
        self.visible
    }

    fn internal(&self) -> u32 {
        self.secret
    }
}
