// Fixture: a miniature telemetry event module in the same shape as
// crates/telemetry/src/event.rs. NOT compiled — consumed as text by
// tests/rules.rs against the schema_design_*.md fixtures.

/// One typed simulation event.
pub enum Event {
    /// Run began.
    RunStart {
        /// Schema version.
        schema: u32,
        /// Dataset seed.
        seed: u64,
    },
    /// A probe window finished.
    ProbeWindow {
        /// Concurrency level probed.
        level: u32,
        /// Mean throughput, Mbps.
        mbps: f64,
    },
    /// A fault-episode window opened or closed.
    FaultEpisode {
        /// Site of the affected server (absent for path-wide stalls).
        side: Option<u32>,
        /// True when the window opened.
        active: bool,
    },
}

impl Event {
    /// Stable journal tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::ProbeWindow { .. } => "probe_window",
            Event::FaultEpisode { .. } => "fault_episode",
        }
    }
}
