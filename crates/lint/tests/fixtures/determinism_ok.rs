// Fixture: determinism-clean code, including the traps the lexer must
// not fall into (forbidden names in comments, strings and doc text).
// NOT compiled — consumed as text by tests/rules.rs.

//! No `HashMap` iteration order, no `Instant::now` — prose only.

use std::collections::{BTreeMap, BTreeSet};

/// Explains why we avoid HashMap and thread_rng (mentioning them is fine).
fn seeded(seed: u64) -> u64 {
    let note = "rand::random and SystemTime are banned";
    let map: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let _ = (note, map);
    // A type named Instant may pass through signatures; only the clock
    // read is forbidden.
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}
