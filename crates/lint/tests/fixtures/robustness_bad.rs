// Fixture: every robustness violation the rule must catch in library
// code. NOT compiled — consumed as text by tests/rules.rs.

fn lib_code(x: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("should be fine");
    if a + b == 0 {
        panic!("cannot happen");
    }
    a + b
}
