//! Positive fixture for the unit-escape rule: raw-f64 addition and
//! subtraction across different unit-newtype extractor families.
//! Never compiled — parsed by tests/rules.rs.

/// Seconds plus megabytes: dimensionally meaningless.
fn mixed_add(elapsed: Duration, moved: Bytes) -> f64 {
    elapsed.as_secs_f64() + moved.as_mb()
}

/// Joules minus watts: an energy/power confusion the types would have
/// caught had the values stayed wrapped.
fn mixed_sub(report: &Report, profile: &Profile) -> f64 {
    report.energy_joules() - profile.mean_watts()
}
