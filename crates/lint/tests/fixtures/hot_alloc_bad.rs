//! Hot-alloc fixture: every flagged allocating construct inside what the
//! rule treats as a hot function body.

fn hot_kernel(demands: &[f64], n: usize) -> f64 {
    // One of each: Vec::new, vec![], .collect(), Box::new.
    let mut grants: Vec<f64> = Vec::new();
    let zeros = vec![0.0f64; n];
    let doubled: Vec<f64> = demands.iter().map(|d| d * 2.0).collect();
    let boxed = Box::new(zeros);
    grants.extend_from_slice(&doubled);
    grants.iter().sum::<f64>() + boxed.len() as f64
}

fn hot_with_closure(n: usize) -> usize {
    // Allocation hidden inside a closure still counts: the closure runs
    // per-slice when the enclosing function does.
    let build = || -> Vec<u32> { std::vec::Vec::new() };
    build().len() + n
}
