//! Positive fixture for the panic-reach rule: stands in for
//! crates/transfer/src/engine/mod.rs in the test's symbol table, with a
//! panic sink two calls below the guaranteed surface. Never compiled.

pub struct Engine;

impl Engine {
    pub fn run_controlled(&self) {
        helper();
    }
}

fn helper() {
    deep(None);
}

fn deep(x: Option<u32>) {
    x.unwrap();
}
