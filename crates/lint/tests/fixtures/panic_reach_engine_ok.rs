//! Negative fixture for the panic-reach rule: the same call shape as
//! panic_reach_engine_bad.rs, but every path below the guaranteed
//! surface returns a typed error, and the one panic in the file sits in
//! a function nothing reachable calls. Never compiled.

pub struct Engine;

impl Engine {
    pub fn run_controlled(&self) -> Result<(), String> {
        helper()
    }
}

fn helper() -> Result<(), String> {
    Err("typed failure".to_string())
}

fn stray(x: Option<u32>) -> u32 {
    x.unwrap()
}
