//! Negative fixture for the fp-order rule: the sanctioned spellings of
//! everything fp_order_bad.rs does wrong. Never compiled.

/// Total-order comparator: the workspace convention.
fn comparator(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// Sequential float reduction: a fixed, index-ordered reduction tree.
fn accumulation(items: &[Sample]) -> f64 {
    items.iter().map(|s| s.energy_joules()).sum::<f64>()
}

/// Integer reduction over a parallel iterator is order-insensitive.
fn counting(items: &[Sample]) -> u64 {
    items.par_iter().map(|s| s.events()).sum::<u64>()
}

/// NaN-rejecting validation is the legitimate use of partial_cmp.
fn validated(x: f64) -> bool {
    x.partial_cmp(&0.0) == Some(Ordering::Greater)
}

/// Widening is always safe; only narrowing is flagged.
fn widening(x: f32) -> f64 {
    x as f64
}
