//! Negative fixture for the unit-escape rule: same-family arithmetic and
//! cross-family ratios are both legitimate. Never compiled.

/// Same family (seconds): a plain duration difference.
fn same_family(start: Duration, end: Duration) -> f64 {
    end.as_secs_f64() - start.as_secs_f64()
}

/// Division across families forms a new quantity (throughput); only
/// `+`/`-` assert same-dimension operands.
fn ratio(moved: Bytes, elapsed: Duration) -> f64 {
    moved.as_mb() / elapsed.as_secs_f64()
}

/// Energy = power × time: multiplication is dimension-forming too.
fn product(profile: &Profile, elapsed: Duration) -> f64 {
    profile.mean_watts() * elapsed.as_secs_f64()
}
