//! Hot-alloc fixture: the arena idiom the rule is steering toward —
//! clear + extend over caller-owned buffers, `*_into` variants, and
//! non-allocating constructors.

fn hot_kernel(arena: &mut SliceArena, demands: &[f64], cap: f64) -> f64 {
    arena.demands.clear();
    arena.demands.extend_from_slice(demands);
    arena.grants.clear();
    arena.grants.resize(demands.len(), 0.0);
    fair_share_into(&arena.demands, cap, &mut arena.grants, &mut arena.fair);
    arena.grants.iter().sum::<f64>()
}

fn hot_counters(slice: SimDuration) -> SimTime {
    // Plain value constructors are not allocations.
    let t = SimTime::ZERO;
    let series = TimeSeries::new();
    let _ = series;
    t + slice
}
