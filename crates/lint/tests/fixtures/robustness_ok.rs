// Fixture: robustness-clean library code plus the exemptions: test
// modules, #[test] fns, lookalike methods, strings and contracts.
// NOT compiled — consumed as text by tests/rules.rs.

fn lib_code(x: Option<u32>) -> u32 {
    assert!(x.is_none() || x >= Some(1), "contract, not error handling");
    let hint = ".unwrap() and panic! in a string are fine";
    let _ = hint;
    x.unwrap_or_default().max(x.unwrap_or(1))
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v.first().copied().unwrap(), 1);
        v.first().expect("non-empty");
        if v.is_empty() {
            panic!("empty");
        }
    }
}
