//! The live workspace must pass its own conformance pass: this is the
//! in-tree twin of CI's `lint-conformance` job, so a violation fails
//! `cargo test` before it ever reaches CI.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // repo root
    dir
}

#[test]
fn live_workspace_is_lint_clean() {
    let report = eadt_lint::run(&workspace_root()).expect("lint pass runs");
    assert!(
        report.files > 50,
        "walker found only {} files — wrong root?",
        report.files
    );
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_entries_still_cover_something() {
    // A stale allowlist entry (its violation was fixed) should be removed;
    // surfacing that keeps the burn-down honest. The rng.rs determinism
    // grant is charter-style (it sanctions the file as the RNG home even
    // while no primitive is used), so it is exempt from the staleness
    // check.
    let report = eadt_lint::run(&workspace_root()).expect("lint pass runs");
    let text = std::fs::read_to_string(workspace_root().join(eadt_lint::ALLOW_TOML))
        .expect("allowlist exists");
    let list = eadt_lint::allow::Allowlist::parse(&text).expect("allowlist parses");
    for entry in list
        .entries
        .iter()
        .filter(|e| e.path != "crates/sim/src/rng.rs")
    {
        assert!(
            report
                .allowed
                .iter()
                .any(|v| v.rule == entry.rule && v.path == entry.path),
            "stale allowlist entry: [{}] {} — the violation it covered is gone, remove it",
            entry.rule,
            entry.path
        );
    }
}
