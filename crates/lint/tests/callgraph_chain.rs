//! Call-graph integration test: a known call chain spanning three crates
//! — a free fn in crate `a`, through a free fn in crate `b`, into an
//! inherent method in crate `c` — must come out of the resolver as one
//! connected path, and the BFS walk must recover that exact path.

use eadt_lint::callgraph::CallGraph;
use eadt_lint::lexer::tokenize;
use eadt_lint::parser::parse_file;
use eadt_lint::symbols::SymbolTable;

fn table() -> SymbolTable {
    let files = [
        (
            "a",
            "crates/a/src/lib.rs",
            "pub fn top() { middle_step(); }",
        ),
        (
            "b",
            "crates/b/src/lib.rs",
            "pub fn middle_step() { let e = Engine; e.finish_step(); }",
        ),
        (
            "c",
            "crates/c/src/lib.rs",
            "pub struct Engine;\nimpl Engine { pub fn finish_step(&self) { panic!(\"boom\"); } }",
        ),
    ];
    let mut table = SymbolTable::default();
    for (krate, path, src) in files {
        table.add_file(krate, path, false, &parse_file(&tokenize(src)));
    }
    table
}

fn fn_id(table: &SymbolTable, name: &str) -> usize {
    table
        .fns
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("fn {name} not in table"))
        .id
}

#[test]
fn three_crate_chain_is_connected_and_walkable() {
    let table = table();
    let graph = CallGraph::build(&table);
    let top = fn_id(&table, "top");
    let mid = fn_id(&table, "middle_step");
    let leaf = fn_id(&table, "finish_step");

    // The defs really span three crates.
    assert_eq!(table.def(top).krate, "a");
    assert_eq!(table.def(mid).krate, "b");
    assert_eq!(table.def(leaf).krate, "c");

    // BFS from the top reaches the leaf, and the recorded discovery
    // edges reconstruct the exact chain.
    let reached = graph.reach(&[top], |_| false);
    assert!(
        reached.contains_key(&mid),
        "top -> middle_step edge missing"
    );
    assert!(
        reached.contains_key(&leaf),
        "middle_step -> finish_step edge missing"
    );
    assert_eq!(
        graph.sample_path(&table, &reached, leaf),
        "top -> middle_step -> finish_step"
    );
}

#[test]
fn severing_the_middle_edge_disconnects_the_leaf() {
    let table = table();
    let graph = CallGraph::build(&table);
    let top = fn_id(&table, "top");
    let leaf = fn_id(&table, "finish_step");
    let reached = graph.reach(&[top], |e| e.call_text.contains("finish_step"));
    assert!(!reached.contains_key(&leaf), "cut edge still walked");
}

#[test]
fn std_vocabulary_methods_resolve_to_nothing() {
    // `.get(...)` must not edge into a workspace fn that happens to be
    // named `get` — the precision/soundness tradeoff documented in
    // callgraph.rs.
    let mut table = SymbolTable::default();
    table.add_file(
        "a",
        "crates/a/src/lib.rs",
        false,
        &parse_file(&tokenize("pub fn top(v: &[u32]) { v.get(0); }")),
    );
    table.add_file(
        "b",
        "crates/b/src/lib.rs",
        false,
        &parse_file(&tokenize(
            "pub struct S;\nimpl S { pub fn get(&self) -> u32 { 1 } }",
        )),
    );
    let graph = CallGraph::build(&table);
    let top = fn_id(&table, "top");
    let get = fn_id(&table, "get");
    let reached = graph.reach(&[top], |_| false);
    assert!(
        !reached.contains_key(&get),
        "std-vocabulary `.get(` grew an edge"
    );
}
