//! Parser smoke test: the recursive-descent parser must swallow every
//! `.rs` file in the live workspace without panicking, and its item tree
//! must account for every `fn` the raw token stream mentions — a parser
//! that silently drops items would silently shrink the call graph and
//! with it the panic-reachability guarantee.

use eadt_lint::lexer::{tokenize, Tok};
use eadt_lint::parser::{parse_file, ItemKind};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // repo root
    dir
}

#[test]
fn every_workspace_file_parses_and_keeps_every_fn() {
    let sources = eadt_lint::walk::collect_sources(&workspace_root()).expect("walk");
    assert!(
        sources.len() > 50,
        "walker found only {} files",
        sources.len()
    );
    for file in &sources {
        let toks = tokenize(&file.text);
        let parsed = parse_file(&toks);

        // Every `fn name` token pair must surface as a Fn item (free fn,
        // method, trait method, or a fn nested inside a body).
        let mut expected = BTreeSet::new();
        for pair in toks.windows(2) {
            if let (Tok::Ident(kw), Tok::Ident(name)) = (&pair[0].tok, &pair[1].tok) {
                if kw == "fn" {
                    expected.insert(name.clone());
                }
            }
        }
        let mut found = BTreeSet::new();
        parsed.visit_items(&mut |it, _| {
            if matches!(it.kind, ItemKind::Fn) {
                found.insert(it.name.clone());
            }
        });
        let missing: Vec<&String> = expected.difference(&found).collect();
        assert!(
            missing.is_empty(),
            "{}: parser lost fn items {missing:?}",
            file.rel_path
        );
    }
}

#[test]
fn parsing_is_total_even_on_junk() {
    // The parser degrades, never errors: token soup still yields a tree.
    for junk in [
        "fn",
        "fn f(",
        "impl {{{",
        "let = = =;",
        "match { => => }",
        "pub pub pub",
        ") ] } fn g() {}",
    ] {
        let parsed = parse_file(&tokenize(junk));
        parsed.visit_items(&mut |_, _| {});
    }
}
