//! Fixture-driven tests: one positive and one negative source per lint
//! rule. The fixtures under `tests/fixtures/` are plain text to the lint
//! pass (never compiled) and plain text to cargo (subdirectories of
//! `tests/` are not test targets).

use eadt_lint::lexer::tokenize;
use eadt_lint::rules::{determinism, robustness, schema};

const DET_BAD: &str = include_str!("fixtures/determinism_bad.rs");
const DET_OK: &str = include_str!("fixtures/determinism_ok.rs");
const ROB_BAD: &str = include_str!("fixtures/robustness_bad.rs");
const ROB_OK: &str = include_str!("fixtures/robustness_ok.rs");
const SCHEMA_EVENT: &str = include_str!("fixtures/schema_event.rs");
const SCHEMA_OK: &str = include_str!("fixtures/schema_design_ok.md");
const SCHEMA_BAD: &str = include_str!("fixtures/schema_design_bad.md");

#[test]
fn determinism_fixture_catches_every_forbidden_construct() {
    let v = determinism::check("fixture.rs", &tokenize(DET_BAD));
    let messages: Vec<&str> = v.iter().map(|v| v.message.as_str()).collect();
    for needle in [
        "`HashMap`",
        "`HashSet`",
        "`Instant::now`",
        "`SystemTime`",
        "`thread_rng`",
        "`rand::random`",
    ] {
        assert!(
            messages.iter().any(|m| m.contains(needle)),
            "missing {needle} in {messages:#?}"
        );
    }
    // 3 HashMap + 2 HashSet + 1 Instant::now + 2 SystemTime + 1
    // thread_rng + 1 rand::random.
    assert_eq!(v.len(), 10, "{v:#?}");
}

#[test]
fn determinism_fixture_negative_is_clean() {
    let v = determinism::check("fixture.rs", &tokenize(DET_OK));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn robustness_fixture_catches_unwrap_expect_panic() {
    let v = robustness::check("crates/core/src/fixture.rs", &tokenize(ROB_BAD));
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v[0].message.contains("unwrap"));
    assert!(v[1].message.contains("expect"));
    assert!(v[2].message.contains("panic"));
}

#[test]
fn robustness_fixture_negative_is_clean() {
    let v = robustness::check("crates/core/src/fixture.rs", &tokenize(ROB_OK));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn schema_fixture_in_sync_is_clean() {
    let v = schema::check(SCHEMA_EVENT, "event.rs", SCHEMA_OK, "DESIGN.md");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn schema_fixture_detects_missing_row_field_drift_and_ghost() {
    let v = schema::check(SCHEMA_EVENT, "event.rs", SCHEMA_BAD, "DESIGN.md");
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v
        .iter()
        .any(|v| v.path == "event.rs" && v.message.contains("probe_window")));
    assert!(v
        .iter()
        .any(|v| v.message.contains("run_start") && v.message.contains("seed_value")));
    assert!(v.iter().any(|v| v.message.contains("ghost_event")));
}
