//! Fixture-driven tests: one positive and one negative source per lint
//! rule. The fixtures under `tests/fixtures/` are plain text to the lint
//! pass (never compiled) and plain text to cargo (subdirectories of
//! `tests/` are not test targets).

use eadt_lint::callgraph::CallGraph;
use eadt_lint::lexer::tokenize;
use eadt_lint::parser::{parse_file, ParsedFile};
use eadt_lint::rules::{
    api_surface, determinism, fp_order, hot_alloc, panic_reach, robustness, schema, unit_escape,
    Violation,
};
use eadt_lint::symbols::SymbolTable;

const DET_BAD: &str = include_str!("fixtures/determinism_bad.rs");
const DET_OK: &str = include_str!("fixtures/determinism_ok.rs");
const ROB_BAD: &str = include_str!("fixtures/robustness_bad.rs");
const ROB_OK: &str = include_str!("fixtures/robustness_ok.rs");
const SCHEMA_EVENT: &str = include_str!("fixtures/schema_event.rs");
const SCHEMA_OK: &str = include_str!("fixtures/schema_design_ok.md");
const SCHEMA_BAD: &str = include_str!("fixtures/schema_design_bad.md");
const FP_BAD: &str = include_str!("fixtures/fp_order_bad.rs");
const FP_OK: &str = include_str!("fixtures/fp_order_ok.rs");
const UNIT_BAD: &str = include_str!("fixtures/unit_escape_bad.rs");
const UNIT_OK: &str = include_str!("fixtures/unit_escape_ok.rs");
const REACH_BAD: &str = include_str!("fixtures/panic_reach_engine_bad.rs");
const REACH_OK: &str = include_str!("fixtures/panic_reach_engine_ok.rs");
const HOT_ALLOC_BAD: &str = include_str!("fixtures/hot_alloc_bad.rs");
const HOT_ALLOC_OK: &str = include_str!("fixtures/hot_alloc_ok.rs");
const API_FIX: &str = include_str!("fixtures/api_surface_fixture.rs");

fn parse(src: &str) -> ParsedFile {
    parse_file(&tokenize(src))
}

/// Runs a per-body rule over every function body in a fixture.
fn over_bodies(
    src: &str,
    mut rule: impl FnMut(&eadt_lint::parser::Expr) -> Vec<Violation>,
) -> Vec<Violation> {
    let pf = parse(src);
    let mut out = Vec::new();
    pf.visit_items(&mut |it, _| {
        if let Some(body) = &it.body {
            out.extend(rule(body));
        }
    });
    out
}

#[test]
fn determinism_fixture_catches_every_forbidden_construct() {
    let v = determinism::check("fixture.rs", &tokenize(DET_BAD));
    let messages: Vec<&str> = v.iter().map(|v| v.message.as_str()).collect();
    for needle in [
        "`HashMap`",
        "`HashSet`",
        "`Instant::now`",
        "`SystemTime`",
        "`thread_rng`",
        "`rand::random`",
    ] {
        assert!(
            messages.iter().any(|m| m.contains(needle)),
            "missing {needle} in {messages:#?}"
        );
    }
    // 3 HashMap + 2 HashSet + 1 Instant::now + 2 SystemTime + 1
    // thread_rng + 1 rand::random.
    assert_eq!(v.len(), 10, "{v:#?}");
}

#[test]
fn determinism_fixture_negative_is_clean() {
    let v = determinism::check("fixture.rs", &tokenize(DET_OK));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn robustness_fixture_catches_unwrap_expect_panic() {
    let v = robustness::check("crates/core/src/fixture.rs", &tokenize(ROB_BAD));
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v[0].message.contains("unwrap"));
    assert!(v[1].message.contains("expect"));
    assert!(v[2].message.contains("panic"));
}

#[test]
fn robustness_fixture_negative_is_clean() {
    let v = robustness::check("crates/core/src/fixture.rs", &tokenize(ROB_OK));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn schema_fixture_in_sync_is_clean() {
    let v = schema::check(SCHEMA_EVENT, "event.rs", SCHEMA_OK, "DESIGN.md");
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn schema_fixture_detects_missing_row_field_drift_and_ghost() {
    let v = schema::check(SCHEMA_EVENT, "event.rs", SCHEMA_BAD, "DESIGN.md");
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v
        .iter()
        .any(|v| v.path == "event.rs" && v.message.contains("probe_window")));
    assert!(v
        .iter()
        .any(|v| v.message.contains("run_start") && v.message.contains("seed_value")));
    assert!(v.iter().any(|v| v.message.contains("ghost_event")));
}

// --- fp-order ----------------------------------------------------------

#[test]
fn fp_order_fixture_catches_every_trap() {
    let v = over_bodies(FP_BAD, |b| fp_order::check_body("fixture.rs", b, true));
    assert_eq!(v.len(), 4, "{v:#?}");
    assert!(v.iter().any(|v| v.message.contains("total_cmp")));
    assert!(
        v.iter()
            .filter(|v| v.message.contains("unordered iterator"))
            .count()
            == 2
    );
    assert!(v.iter().any(|v| v.message.contains("as f32")));
}

#[test]
fn fp_order_fixture_negative_is_clean() {
    let v = over_bodies(FP_OK, |b| fp_order::check_body("fixture.rs", b, true));
    assert!(v.is_empty(), "{v:#?}");
}

// --- hot-alloc ---------------------------------------------------------

#[test]
fn hot_alloc_fixture_catches_every_allocating_construct() {
    let v = over_bodies(HOT_ALLOC_BAD, |b| hot_alloc::check_body("fixture.rs", b));
    // Vec::new + vec![] + .collect() + Box::new, plus the closure-hidden
    // fully-qualified Vec::new.
    assert_eq!(v.len(), 5, "{v:#?}");
    for needle in ["`Vec::new`", "`vec!", "`.collect()`", "`Box::new`"] {
        assert!(
            v.iter().any(|v| v.message.contains(needle)),
            "missing {needle} in {v:#?}"
        );
    }
}

#[test]
fn hot_alloc_fixture_negative_is_clean() {
    let v = over_bodies(HOT_ALLOC_OK, |b| hot_alloc::check_body("fixture.rs", b));
    assert!(v.is_empty(), "{v:#?}");
}

#[test]
fn hot_alloc_list_covers_the_kernel_and_its_helpers() {
    assert!(hot_alloc::is_hot(
        "crates/transfer/src/engine/mod.rs",
        "run_controlled_in"
    ));
    assert!(hot_alloc::is_hot(
        "crates/net/src/fair.rs",
        "fair_share_into"
    ));
    assert!(!hot_alloc::is_hot(
        "crates/transfer/src/engine/mod.rs",
        "run_instrumented"
    ));
}

// --- unit-escape -------------------------------------------------------

#[test]
fn unit_escape_fixture_catches_cross_family_sum_and_difference() {
    let v = over_bodies(UNIT_BAD, |b| unit_escape::check_body("fixture.rs", b));
    assert_eq!(v.len(), 2, "{v:#?}");
}

#[test]
fn unit_escape_fixture_negative_is_clean() {
    let v = over_bodies(UNIT_OK, |b| unit_escape::check_body("fixture.rs", b));
    assert!(v.is_empty(), "{v:#?}");
}

// --- panic-reach -------------------------------------------------------

/// Builds the walk's symbol table with the fixture standing in for the
/// engine file and stub definitions for the other guaranteed roots.
fn reach_table(engine_src: &str) -> (SymbolTable, Vec<(String, String)>) {
    let files = vec![
        (
            "transfer",
            "crates/transfer/src/engine/mod.rs",
            engine_src.to_string(),
        ),
        (
            "fleet",
            "crates/fleet/src/session.rs",
            "pub fn run_one() {}\npub fn execute_job() {}".to_string(),
        ),
        (
            "ckpt",
            "crates/ckpt/src/recover.rs",
            "pub fn resume_verified() {}".to_string(),
        ),
    ];
    let mut table = SymbolTable::default();
    let mut texts = Vec::new();
    for (krate, path, src) in files {
        table.add_file(krate, path, false, &parse(&src));
        texts.push((path.to_string(), src));
    }
    (table, texts)
}

fn reach_check(engine_src: &str, edge_allow: &[(String, String)]) -> panic_reach::ReachReport {
    let (table, texts) = reach_table(engine_src);
    let graph = CallGraph::build(&table);
    panic_reach::check(&table, &graph, edge_allow, |file, line| {
        texts
            .iter()
            .find(|(p, _)| p == file)
            .and_then(|(_, src)| src.lines().nth(line as usize - 1))
            .unwrap_or_default()
            .to_string()
    })
}

#[test]
fn panic_reach_fixture_reports_transitive_sink_with_path() {
    let report = reach_check(REACH_BAD, &[]);
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "panic-reach");
    assert!(
        v.message.contains("run_controlled -> helper -> deep"),
        "{}",
        v.message
    );
}

#[test]
fn panic_reach_fixture_negative_is_clean() {
    // The typed-error chain is fine, and the unwrap in `stray` is
    // unreachable from every root.
    let report = reach_check(REACH_OK, &[]);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn panic_reach_edge_allowlist_severs_the_walk() {
    let cut = vec![(
        "crates/transfer/src/engine/mod.rs".to_string(),
        "helper();".to_string(),
    )];
    let report = reach_check(REACH_BAD, &cut);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    // The severed edge is reported so the allowlist staleness check sees
    // the entry doing work.
    assert_eq!(report.severed_edges.len(), 1, "{:#?}", report.severed_edges);
    assert_eq!(report.severed_edges[0].rule, "panic-reach-edge");
}

#[test]
fn panic_reach_missing_root_is_loud() {
    // Stub out the engine file entirely: the hardcoded root fn is gone,
    // which must surface as a violation, not silently shrink the walk.
    let report = reach_check("pub fn renamed() {}", &[]);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("run_controlled")),
        "{:#?}",
        report.violations
    );
}

// --- api-surface -------------------------------------------------------

fn api_snapshot(src: &str) -> std::collections::BTreeMap<String, String> {
    let pf = parse(src);
    api_surface::build_snapshots([("crates/demo/src/lib.rs", &pf)].into_iter())
}

#[test]
fn api_surface_fixture_lists_public_items_only() {
    let snaps = api_snapshot(API_FIX);
    let text = snaps.get("demo").expect("crate snapshot");
    assert!(text.contains("pub fn exported"), "{text}");
    assert!(text.contains("pub struct Surface"), "{text}");
    assert!(text.contains("pub visible"), "{text}");
    assert!(text.contains("pub fn reading"), "{text}");
    assert!(!text.contains("hidden"), "{text}");
    assert!(!text.contains("secret"), "{text}");
    assert!(!text.contains("internal"), "{text}");
}

#[test]
fn api_surface_fixture_in_sync_is_clean() {
    let snaps = api_snapshot(API_FIX);
    assert!(api_surface::check(&snaps, &snaps).is_empty());
}

#[test]
fn api_surface_fixture_catches_drift_both_ways_and_missing_file() {
    let computed = api_snapshot(API_FIX);
    // A stray new pub fn: computed gains a line the snapshot lacks.
    let grown = api_snapshot(&format!("{API_FIX}\npub fn stray() {{}}\n"));
    assert!(!api_surface::check(&grown, &computed).is_empty());
    // A removed pub fn: the snapshot keeps a line the code no longer has.
    assert!(!api_surface::check(&computed, &grown).is_empty());
    // A deleted snapshot file.
    let none = std::collections::BTreeMap::new();
    assert!(!api_surface::check(&computed, &none).is_empty());
}
