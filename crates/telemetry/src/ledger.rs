//! Energy-attribution ledger: where did every joule go?
//!
//! The engine splits each slice's end-system energy into exactly one
//! *phase* bucket per site (probe, steady transfer, retransmit, backoff
//! idle, outage idle, startup) and, in parallel, into approximate
//! *component* buckets (cpu/nic/disk/other). The phase buckets are the
//! authoritative split: [`SideLedger::total_j`] sums them in one fixed
//! order, and the engine derives the report's `src_energy_j`/`dst_energy_j`
//! from that very sum — so the profile accounts for 100% of the report
//! energy within 0 ULP by construction (asserted under
//! `debug-invariants`). The component split shares the same accumulation
//! discipline but is a *view*, not a conservation law: a slice's watts
//! are apportioned by the power model's utilization weights.
//!
//! Ledgers are pure data: `Copy`, serializable (every field
//! `#[serde(default)]` so old reports parse), and additive — fleet
//! rollup merges per-job ledgers by summing buckets in job-index order.

use serde::{Deserialize, Serialize};

/// The transfer phase a slice's energy is attributed to. Classification
/// is by priority: a slice that both retransmits and sits in backoff
/// books as retransmit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnergyPhase {
    /// A controller was probing (HTEE's search windows).
    Probe,
    /// At least one channel was killed this slice (lost work).
    Retransmit,
    /// An outage episode was active on some server.
    OutageIdle,
    /// Channels were waiting out a backoff/cooldown.
    BackoffIdle,
    /// Nothing moved yet (connection ramp before the first byte).
    Startup,
    /// Plain steady transfer.
    Steady,
}

impl EnergyPhase {
    /// All phases, in the canonical summation/rendering order.
    pub const ALL: [EnergyPhase; 6] = [
        EnergyPhase::Steady,
        EnergyPhase::Probe,
        EnergyPhase::Retransmit,
        EnergyPhase::BackoffIdle,
        EnergyPhase::OutageIdle,
        EnergyPhase::Startup,
    ];

    /// Stable spelling used in JSON profiles and metric labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            EnergyPhase::Steady => "steady",
            EnergyPhase::Probe => "probe",
            EnergyPhase::Retransmit => "retransmit",
            EnergyPhase::BackoffIdle => "backoff_idle",
            EnergyPhase::OutageIdle => "outage_idle",
            EnergyPhase::Startup => "startup",
        }
    }
}

/// One site's energy split by phase and (approximately) by component.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SideLedger {
    /// Joules booked while the transfer had moved no bytes yet.
    #[serde(default)]
    pub startup_j: f64,
    /// Joules booked during controller probe windows.
    #[serde(default)]
    pub probe_j: f64,
    /// Joules booked in plain steady transfer.
    #[serde(default)]
    pub steady_j: f64,
    /// Joules booked in slices that killed channels (lost work).
    #[serde(default)]
    pub retransmit_j: f64,
    /// Joules booked while channels waited out backoff/cooldowns.
    #[serde(default)]
    pub backoff_idle_j: f64,
    /// Joules booked while an outage episode was active.
    #[serde(default)]
    pub outage_idle_j: f64,
    /// Approximate CPU share of the site's joules.
    #[serde(default)]
    pub cpu_j: f64,
    /// Approximate NIC share.
    #[serde(default)]
    pub nic_j: f64,
    /// Approximate disk share.
    #[serde(default)]
    pub disk_j: f64,
    /// Remainder (memory and anything unmodeled).
    #[serde(default)]
    pub other_j: f64,
}

impl SideLedger {
    /// Total site energy: the six phase buckets summed in the canonical
    /// [`EnergyPhase::ALL`] order. This sum *is* the report's per-site
    /// energy — same addends, same order, 0 ULP apart.
    pub fn total_j(&self) -> f64 {
        self.steady_j
            + self.probe_j
            + self.retransmit_j
            + self.backoff_idle_j
            + self.outage_idle_j
            + self.startup_j
    }

    /// Read access to one phase bucket.
    pub fn phase_j(&self, phase: EnergyPhase) -> f64 {
        match phase {
            EnergyPhase::Startup => self.startup_j,
            EnergyPhase::Probe => self.probe_j,
            EnergyPhase::Steady => self.steady_j,
            EnergyPhase::Retransmit => self.retransmit_j,
            EnergyPhase::BackoffIdle => self.backoff_idle_j,
            EnergyPhase::OutageIdle => self.outage_idle_j,
        }
    }

    /// Mutable access to one phase bucket (the engine's accumulation
    /// target).
    pub fn phase_mut(&mut self, phase: EnergyPhase) -> &mut f64 {
        match phase {
            EnergyPhase::Startup => &mut self.startup_j,
            EnergyPhase::Probe => &mut self.probe_j,
            EnergyPhase::Steady => &mut self.steady_j,
            EnergyPhase::Retransmit => &mut self.retransmit_j,
            EnergyPhase::BackoffIdle => &mut self.backoff_idle_j,
            EnergyPhase::OutageIdle => &mut self.outage_idle_j,
        }
    }

    /// Adds the component split of one slice (joules per component).
    pub fn add_components(&mut self, cpu_j: f64, nic_j: f64, disk_j: f64, other_j: f64) {
        self.cpu_j += cpu_j;
        self.nic_j += nic_j;
        self.disk_j += disk_j;
        self.other_j += other_j;
    }

    /// Bucket-wise sum (fleet rollup). Order-sensitive like any f64
    /// accumulation: the fleet merges in job-index order.
    pub fn merge(&mut self, other: &SideLedger) {
        self.startup_j += other.startup_j;
        self.probe_j += other.probe_j;
        self.steady_j += other.steady_j;
        self.retransmit_j += other.retransmit_j;
        self.backoff_idle_j += other.backoff_idle_j;
        self.outage_idle_j += other.outage_idle_j;
        self.cpu_j += other.cpu_j;
        self.nic_j += other.nic_j;
        self.disk_j += other.disk_j;
        self.other_j += other.other_j;
    }
}

/// Both sites' ledgers: the full "where did every joule go" answer for
/// one run (or, merged, for a fleet).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    /// Sending-site ledger.
    #[serde(default)]
    pub src: SideLedger,
    /// Receiving-site ledger.
    #[serde(default)]
    pub dst: SideLedger,
}

impl EnergyLedger {
    /// Total end-system energy across both sites.
    pub fn total_j(&self) -> f64 {
        self.src.total_j() + self.dst.total_j()
    }

    /// Combined (src+dst) joules of one phase.
    pub fn phase_j(&self, phase: EnergyPhase) -> f64 {
        self.src.phase_j(phase) + self.dst.phase_j(phase)
    }

    /// Bucket-wise sum (fleet rollup, job-index order).
    pub fn merge(&mut self, other: &EnergyLedger) {
        self.src.merge(&other.src);
        self.dst.merge(&other.dst);
    }

    /// True when nothing has been booked yet.
    pub fn is_empty(&self) -> bool {
        self.total_j() == 0.0
    }

    /// Renders the ASCII flame-style breakdown `eadt profile` prints:
    /// one bar per phase (widest first), then the component view.
    pub fn render_flame(&self, width: usize) -> String {
        let width = width.max(20);
        let bar_w = width.saturating_sub(34).max(8);
        let total = self.total_j();
        let mut out = String::new();
        out.push_str("energy by phase (src+dst):\n");
        let mut rows: Vec<(&str, f64)> = EnergyPhase::ALL
            .iter()
            .map(|&p| (p.as_str(), self.phase_j(p)))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        for (name, j) in &rows {
            push_bar(&mut out, name, *j, total, bar_w);
        }
        out.push_str("energy by component (approximate):\n");
        let comp = |f: fn(&SideLedger) -> f64| f(&self.src) + f(&self.dst);
        let comps = [
            ("cpu", comp(|s| s.cpu_j)),
            ("nic", comp(|s| s.nic_j)),
            ("disk", comp(|s| s.disk_j)),
            ("other", comp(|s| s.other_j)),
        ];
        for (name, j) in comps {
            push_bar(&mut out, name, j, total, bar_w);
        }
        out
    }
}

fn push_bar(out: &mut String, name: &str, joules: f64, total: f64, bar_w: usize) {
    use std::fmt::Write as _;
    let frac = if total > 0.0 { joules / total } else { 0.0 };
    let fill = ((frac * bar_w as f64).round() as usize).min(bar_w);
    let _ = write!(out, "  {name:<13} {joules:>10.1} J {:>5.1}% ", frac * 100.0);
    for _ in 0..fill {
        out.push('#');
    }
    for _ in fill..bar_w {
        out.push('.');
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_the_six_phase_buckets() {
        let mut s = SideLedger::default();
        for (i, p) in EnergyPhase::ALL.iter().enumerate() {
            *s.phase_mut(*p) += (i + 1) as f64;
        }
        assert_eq!(s.total_j(), 21.0);
        // Components do not contribute to the total.
        s.add_components(5.0, 4.0, 3.0, 2.0);
        assert_eq!(s.total_j(), 21.0);
        assert_eq!(s.cpu_j + s.nic_j + s.disk_j + s.other_j, 14.0);
    }

    #[test]
    fn total_sum_order_is_bit_stable() {
        // The exact order of total_j()'s additions is a contract: the
        // engine reproduces it when deriving the report energy. Pin it
        // against a hand-rolled sum in ALL order.
        let s = SideLedger {
            steady_j: 0.1,
            probe_j: 0.2,
            retransmit_j: 0.3,
            backoff_idle_j: 0.4,
            outage_idle_j: 0.5,
            startup_j: 0.6,
            ..SideLedger::default()
        };
        let manual = EnergyPhase::ALL
            .iter()
            .fold(0.0f64, |acc, &p| acc + s.phase_j(p));
        assert_eq!(manual.to_bits(), s.total_j().to_bits());
    }

    #[test]
    fn merge_is_bucket_wise() {
        let mut a = EnergyLedger::default();
        a.src.steady_j = 1.0;
        a.dst.probe_j = 2.0;
        let mut b = EnergyLedger::default();
        b.src.steady_j = 3.0;
        b.dst.outage_idle_j = 4.0;
        a.merge(&b);
        assert_eq!(a.src.steady_j, 4.0);
        assert_eq!(a.dst.probe_j, 2.0);
        assert_eq!(a.dst.outage_idle_j, 4.0);
        assert_eq!(a.total_j(), 10.0);
    }

    #[test]
    fn json_round_trips_and_tolerates_missing_fields() {
        let mut l = EnergyLedger::default();
        l.src.steady_j = 123.456;
        l.src.cpu_j = 100.0;
        l.dst.backoff_idle_j = 0.25;
        let text = serde_json::to_string(&l).unwrap();
        let back: EnergyLedger = serde_json::from_str(&text).unwrap();
        assert_eq!(back, l);
        // A PR6-era report has no ledger fields at all.
        let old: EnergyLedger = serde_json::from_str("{}").unwrap();
        assert_eq!(old, EnergyLedger::default());
        let partial: SideLedger = serde_json::from_str("{\"steady_j\":1.5}").unwrap();
        assert_eq!(partial.steady_j, 1.5);
        assert_eq!(partial.probe_j, 0.0);
    }

    #[test]
    fn flame_render_scales_bars() {
        let mut l = EnergyLedger::default();
        l.src.steady_j = 75.0;
        l.dst.probe_j = 25.0;
        let text = l.render_flame(60);
        assert!(text.contains("steady"), "{text}");
        assert!(text.contains("75.0%"), "{text}");
        assert!(text.contains("25.0%"), "{text}");
        // Steady's bar is longer than probe's.
        let bar = |name: &str| {
            text.lines()
                .find(|ln| ln.trim_start().starts_with(name))
                .map(|ln| ln.matches('#').count())
                .unwrap()
        };
        assert!(bar("steady") > bar("probe"), "{text}");
        // An empty ledger renders without dividing by zero.
        let empty = EnergyLedger::default().render_flame(60);
        assert!(empty.contains("0.0%"), "{empty}");
    }
}
