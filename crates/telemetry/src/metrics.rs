//! The metrics registry: counters, gauges and fixed-bucket histograms,
//! with gauges sampled on a configurable sim-time cadence into
//! [`TimeSeries`].
//!
//! Handles ([`CounterId`], [`GaugeId`], [`HistogramId`]) are resolved
//! once at registration; hot-path updates are plain indexed stores with
//! no hashing, matching the engine's no-allocation slice loop.

use eadt_sim::{SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A fixed-bucket histogram: counts of observations falling at or below
/// each upper bound, plus an overflow bucket, running count and sum.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Ascending bucket upper bounds (inclusive).
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    fn new(mut bounds: Vec<f64>) -> Self {
        bounds.sort_by(f64::total_cmp);
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Upper bound of the bucket holding the q-quantile (0 ≤ q ≤ 1), or
    /// `None` when empty. Overflow observations report infinity.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bounds.get(i).copied().unwrap_or(f64::INFINITY));
            }
        }
        Some(f64::INFINITY)
    }
}

struct Counter {
    name: String,
    value: u64,
}

struct Gauge {
    name: String,
    value: f64,
    series: TimeSeries,
}

struct NamedHistogram {
    name: String,
    hist: Histogram,
}

/// The registry. Gauges carry a current value set by instrumented code;
/// [`MetricsRegistry::tick`] snapshots every gauge into its
/// [`TimeSeries`] whenever the sampling cadence elapses.
pub struct MetricsRegistry {
    cadence: SimDuration,
    next_sample: SimTime,
    counters: Vec<Counter>,
    gauges: Vec<Gauge>,
    histograms: Vec<NamedHistogram>,
}

impl MetricsRegistry {
    /// Creates a registry sampling gauges every `cadence` of sim time.
    /// The first sample fires on the first `tick` at or after t=0.
    pub fn new(cadence: SimDuration) -> Self {
        assert!(!cadence.is_zero(), "sampling cadence must be positive");
        MetricsRegistry {
            cadence,
            next_sample: SimTime::ZERO,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }

    /// Sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|c| c.name == name) {
            return CounterId(i);
        }
        self.counters.push(Counter {
            name: name.to_string(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|g| g.name == name) {
            return GaugeId(i);
        }
        self.gauges.push(Gauge {
            name: name.to_string(),
            value: 0.0,
            series: TimeSeries::new(),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by name with the given ascending
    /// bucket upper bounds. Bounds are fixed at first registration.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|h| h.name == name) {
            return HistogramId(i);
        }
        self.histograms.push(NamedHistogram {
            name: name.to_string(),
            hist: Histogram::new(bounds.to_vec()),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].value += by;
    }

    /// Sets a gauge's current value (snapshotted on the next sample).
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].hist.observe(value);
    }

    /// Advances the sampler to `now`. When the cadence has elapsed,
    /// snapshots every gauge into its series and returns `true` (at most
    /// once per call — a long gap records one sample at `now`, not
    /// backfill, since gauge history between ticks is unknown).
    pub fn tick(&mut self, now: SimTime) -> bool {
        if now < self.next_sample {
            return false;
        }
        for g in &mut self.gauges {
            g.series.push(now, g.value);
        }
        // Next deadline on the cadence grid strictly after `now`.
        let mut next = self.next_sample;
        while next <= now {
            next += self.cadence;
        }
        self.next_sample = next;
        true
    }

    /// The next instant at which [`MetricsRegistry::tick`] will sample —
    /// i.e. the earliest `now` for which `tick(now)` returns `true`. The
    /// engine's macro-stepper uses this to bound the number of slices it
    /// may skip without missing a gauge sample.
    pub fn next_tick(&self) -> SimTime {
        self.next_sample
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Sampled series of a gauge.
    pub fn gauge_series(&self, id: GaugeId) -> &TimeSeries {
        &self.gauges[id.0].series
    }

    /// Looks a gauge's series up by name.
    pub fn series_by_name(&self, name: &str) -> Option<&TimeSeries> {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| &g.series)
    }

    /// Histogram contents.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].hist
    }

    /// Looks a histogram up by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.hist)
    }

    /// All counters as `(name, value)` in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|c| (c.name.as_str(), c.value))
    }

    /// All gauges as `(name, series)` in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.gauges.iter().map(|g| (g.name.as_str(), &g.series))
    }

    /// All histograms as `(name, histogram)` in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|h| (h.name.as_str(), &h.hist))
    }

    /// Captures the registry's full state (registrations included) for a
    /// checkpoint.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            cadence: self.cadence,
            next_sample: self.next_sample,
            counters: self
                .counters
                .iter()
                .map(|c| CounterSnapshot {
                    name: c.name.clone(),
                    value: c.value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|g| GaugeSnapshot {
                    name: g.name.clone(),
                    value: g.value,
                    series: g.series.clone(),
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|h| HistogramSnapshot {
                    name: h.name.clone(),
                    bounds: h.hist.bounds.clone(),
                    counts: h.hist.counts.clone(),
                    count: h.hist.count,
                    sum: h.hist.sum,
                })
                .collect(),
        }
    }

    /// Rebuilds a registry from a [`snapshot`]. Registration order is
    /// preserved, so handles resolved by instrumented code after a restore
    /// (registration is find-by-name) land on the restored slots.
    ///
    /// [`snapshot`]: MetricsRegistry::snapshot
    pub fn restore(snap: &MetricsSnapshot) -> Self {
        MetricsRegistry {
            cadence: snap.cadence,
            next_sample: snap.next_sample,
            counters: snap
                .counters
                .iter()
                .map(|c| Counter {
                    name: c.name.clone(),
                    value: c.value,
                })
                .collect(),
            gauges: snap
                .gauges
                .iter()
                .map(|g| Gauge {
                    name: g.name.clone(),
                    value: g.value,
                    series: g.series.clone(),
                })
                .collect(),
            histograms: snap
                .histograms
                .iter()
                .map(|h| NamedHistogram {
                    name: h.name.clone(),
                    hist: Histogram {
                        bounds: h.bounds.clone(),
                        counts: h.counts.clone(),
                        count: h.count,
                        sum: h.sum,
                    },
                })
                .collect(),
        }
    }
}

/// Serializable state of one counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Serializable state of one gauge, including its sampled series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered name.
    pub name: String,
    /// Current (not-yet-sampled) value.
    pub value: f64,
    /// Samples taken so far.
    pub series: TimeSeries,
}

/// Serializable state of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (last entry is overflow).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Bucket-wise merge (fleet rollup): adds `other`'s counts and sum
    /// into `self`. Returns `false` — and leaves `self` untouched — when
    /// the bucket bounds differ (merging across incompatible grids would
    /// silently misbucket). Counts are integers and bucket addition is
    /// commutative and associative; the f64 `sum` is order-sensitive like
    /// any float accumulation, which is why the fleet merges in job-index
    /// order.
    pub fn merge(&mut self, other: &HistogramSnapshot) -> bool {
        if self.bounds != other.bounds || self.counts.len() != other.counts.len() {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        true
    }

    /// Rebuilds a live [`Histogram`] from the snapshot (quantile queries
    /// on rolled-up fleet data).
    pub fn to_histogram(&self) -> Histogram {
        Histogram {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
        }
    }
}

/// Serializable state of a [`MetricsRegistry`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Sampling cadence.
    pub cadence: SimDuration,
    /// Next instant the sampler fires.
    pub next_sample: SimTime,
    /// Counters in registration order.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges in registration order.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms in registration order.
    pub histograms: Vec<HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn counters_and_gauges_register_once_per_name() {
        let mut m = MetricsRegistry::new(SimDuration::from_secs(1));
        let a = m.counter("retries");
        let b = m.counter("retries");
        assert_eq!(a, b);
        m.inc(a, 2);
        m.inc(b, 3);
        assert_eq!(m.counter_value(a), 5);

        let g = m.gauge("watts");
        assert_eq!(m.gauge("watts"), g);
    }

    #[test]
    fn tick_samples_on_the_cadence_grid() {
        let mut m = MetricsRegistry::new(SimDuration::from_secs(1));
        let g = m.gauge("thr");

        m.set(g, 10.0);
        assert!(m.tick(t(0.0)), "first tick samples at t=0");
        assert!(!m.tick(t(0.1)));
        assert!(!m.tick(t(0.9)));
        m.set(g, 20.0);
        assert!(m.tick(t(1.0)));
        assert!(!m.tick(t(1.5)));

        let s = m.gauge_series(g).samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].value, 10.0);
        assert_eq!(s[1].value, 20.0);
        assert_eq!(s[1].time, t(1.0));
    }

    #[test]
    fn tick_does_not_backfill_after_a_gap() {
        let mut m = MetricsRegistry::new(SimDuration::from_secs(1));
        let g = m.gauge("thr");
        assert!(m.tick(t(0.0)));
        // Jump far ahead: one sample at `now`, and the grid realigns.
        m.set(g, 5.0);
        assert!(m.tick(t(10.25)));
        assert!(!m.tick(t(10.9)));
        assert!(m.tick(t(11.0)));
        assert_eq!(m.gauge_series(g).len(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(vec![1.0, 5.0, 10.0]);
        for v in [0.5, 0.9, 3.0, 7.0, 12.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        assert!((h.mean() - 23.4 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_restores_registrations_and_sampler_grid() {
        let mut m = MetricsRegistry::new(SimDuration::from_secs(1));
        let c = m.counter("retries");
        let g = m.gauge("thr");
        let h = m.histogram("lat", &[1.0, 5.0]);
        m.inc(c, 7);
        m.set(g, 42.0);
        m.observe(h, 3.0);
        m.tick(t(0.0));
        m.set(g, 43.0);
        m.tick(t(1.0));

        let snap = m.snapshot();
        let mut back = MetricsRegistry::restore(&snap);
        // Same handles resolve (find-by-name, same order)...
        assert_eq!(back.counter("retries"), c);
        assert_eq!(back.gauge("thr"), g);
        assert_eq!(back.histogram("lat", &[1.0, 5.0]), h);
        assert_eq!(back.counter_value(c), 7);
        assert_eq!(back.histogram_ref(h).count(), 1);
        assert_eq!(back.gauge_series(g).len(), 2);
        // ...and the sampler grid continues where it stopped.
        assert_eq!(back.next_tick(), m.next_tick());
        assert!(!back.tick(t(1.5)));
        assert!(back.tick(t(2.0)));
        // The snapshot survives its JSON transport bit-exactly.
        let text = serde_json::to_string(&snap).unwrap();
        let reparsed: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(reparsed, snap);
    }

    #[test]
    fn histogram_boundary_values_fall_in_the_lower_bucket() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(1.0);
        h.observe(2.0);
        assert_eq!(h.counts(), &[1, 1, 0]);
    }

    #[test]
    fn quantile_of_an_empty_histogram_is_none() {
        let h = Histogram::new(vec![1.0, 2.0]);
        for q in [0.0, 0.5, 1.0, -3.0, 42.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn quantile_extremes_and_out_of_range_q_clamp() {
        let mut h = Histogram::new(vec![1.0, 5.0, 10.0]);
        for v in [0.5, 3.0, 7.0] {
            h.observe(v);
        }
        // q=0 lands on the first occupied bucket, q=1 on the last.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // Out-of-range q clamps to [0, 1] rather than panicking.
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_of_a_single_bucket_histogram() {
        // No explicit bounds: everything lands in the overflow bucket.
        let mut h = Histogram::new(vec![]);
        h.observe(3.0);
        assert_eq!(h.counts(), &[1]);
        assert_eq!(h.quantile(0.0), Some(f64::INFINITY));
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
        // One real bucket that holds the only observation.
        let mut h = Histogram::new(vec![10.0]);
        h.observe(3.0);
        assert_eq!(h.quantile(0.5), Some(10.0));
    }

    fn snap_of(values: &[f64]) -> HistogramSnapshot {
        let mut h = Histogram::new(vec![1.0, 5.0, 10.0]);
        for v in values {
            h.observe(*v);
        }
        HistogramSnapshot {
            name: "lat".into(),
            bounds: h.bounds().to_vec(),
            counts: h.counts().to_vec(),
            count: h.count(),
            sum: h.sum(),
        }
    }

    #[test]
    fn snapshot_merge_is_bucket_wise_and_associative() {
        // Integer-valued observations keep the f64 sums exact, so
        // associativity holds bit-for-bit.
        let a = snap_of(&[0.0, 3.0]);
        let b = snap_of(&[7.0]);
        let c = snap_of(&[12.0, 12.0, 4.0]);

        let mut ab_c = a.clone();
        assert!(ab_c.merge(&b));
        assert!(ab_c.merge(&c));

        let mut bc = b.clone();
        assert!(bc.merge(&c));
        let mut a_bc = a.clone();
        assert!(a_bc.merge(&bc));

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count, 6);
        assert_eq!(ab_c.counts, vec![1, 2, 1, 2]);
        assert_eq!(ab_c.sum, 38.0);
        // And the merged snapshot still answers quantile queries.
        assert_eq!(ab_c.to_histogram().quantile(0.5), Some(5.0));
    }

    #[test]
    fn snapshot_merge_rejects_mismatched_bounds() {
        let mut a = snap_of(&[3.0]);
        let before = a.clone();
        let mut other = snap_of(&[3.0]);
        other.bounds = vec![2.0, 5.0, 10.0];
        assert!(!a.merge(&other));
        assert_eq!(a, before, "rejected merge must not mutate");
    }
}
