//! The typed event journal.
//!
//! Every interesting state change of a simulated transfer — channels
//! opening, failing and retrying, chunks starting and draining, controller
//! decisions, probe windows, breaker transitions, fault-episode windows,
//! power-state changes — is recorded as one [`Event`] wrapped in a
//! [`Record`] carrying a monotone sequence number and the simulated
//! timestamp. Records serialize to JSON Lines with a stable, versioned,
//! snake_case schema; identical seeds produce byte-identical journals,
//! which the determinism CI gate enforces.
//!
//! The vendored serde derive emits externally-tagged enums with no field
//! ordering control, so the journal hand-rolls its line format instead:
//! a flat object `{"seq":N,"t_us":T,"ev":"<tag>",...fields}` with fields
//! in declaration order. Parsing goes through the vendored
//! [`serde::value`] tree, so readers tolerate extra fields from newer
//! schema versions.

use eadt_sim::SimTime;
use serde::value::{Map, Value};
use std::fmt::{self, Write as _};

/// Version of the journal schema. Bump on any breaking change to
/// [`Event`] field names or semantics; readers skip unknown fields, so
/// additive changes don't need a bump.
pub const SCHEMA_VERSION: u32 = 1;

/// Which end of the transfer a server-scoped event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The sending site.
    Src,
    /// The receiving site.
    Dst,
}

impl Side {
    /// Stable journal spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Side::Src => "src",
            Side::Dst => "dst",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "src" => Ok(Side::Src),
            "dst" => Ok(Side::Dst),
            other => Err(format!("unknown side `{other}`")),
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Circuit-breaker states as they appear in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// The breaker opened: the server is quarantined.
    Open,
    /// The cooldown expired: the next slice probes the server.
    HalfOpen,
    /// A successful probe closed the breaker.
    Closed,
}

impl BreakerState {
    /// Stable journal spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
            BreakerState::Closed => "closed",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "open" => Ok(BreakerState::Open),
            "half_open" => Ok(BreakerState::HalfOpen),
            "closed" => Ok(BreakerState::Closed),
            other => Err(format!("unknown breaker state `{other}`")),
        }
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fault-episode kinds (mirrors the fault taxonomy of `eadt-transfer`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpisodeKind {
    /// A server-outage window.
    Outage,
    /// A control-channel stall window.
    Stall,
    /// A disk-degradation window.
    Disk,
}

impl EpisodeKind {
    /// Stable journal spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            EpisodeKind::Outage => "outage",
            EpisodeKind::Stall => "stall",
            EpisodeKind::Disk => "disk",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "outage" => Ok(EpisodeKind::Outage),
            "stall" => Ok(EpisodeKind::Stall),
            "disk" => Ok(EpisodeKind::Disk),
            other => Err(format!("unknown episode kind `{other}`")),
        }
    }
}

impl fmt::Display for EpisodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One typed simulation event.
///
/// The `ev` tag and all field names are part of the stable JSONL schema
/// (documented in DESIGN.md §9); readers ignore unknown fields, so new
/// fields may be added freely, but never rename existing ones without
/// bumping [`SCHEMA_VERSION`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Emitted once by the tracer before the engine starts.
    RunStart {
        /// Journal schema version ([`SCHEMA_VERSION`]).
        schema: u32,
        /// Algorithm display name.
        algorithm: String,
        /// Environment / testbed name.
        environment: String,
        /// Dataset seed.
        seed: u64,
        /// Bytes the plan asks to move.
        requested_bytes: u64,
    },
    /// A stage of the plan began executing.
    StageStart {
        /// Stage index within the plan.
        stage: u32,
    },
    /// A chunk entered service (start of its stage).
    ChunkStart {
        /// Chunk index within the stage.
        chunk: u32,
        /// Chunk label (usually the size class).
        label: String,
        /// Bytes the chunk carries.
        bytes: u64,
        /// Files in the chunk.
        files: u64,
    },
    /// A chunk moved its last byte.
    ChunkDrain {
        /// Chunk index within the stage.
        chunk: u32,
        /// Chunk label.
        label: String,
    },
    /// Channels were added to a chunk (engine synced up to target).
    ChannelOpen {
        /// Chunk index.
        chunk: u32,
        /// Channels added this slice.
        opened: u32,
        /// Channel count after the sync.
        count: u32,
    },
    /// Channels were removed from a chunk.
    ChannelClose {
        /// Chunk index.
        chunk: u32,
        /// Channels removed this slice.
        closed: u32,
        /// Channel count after the sync.
        count: u32,
    },
    /// A data channel was killed by the fault runtime.
    ChannelFail {
        /// Chunk index.
        chunk: u32,
        /// Channel slot within the chunk.
        channel: u32,
        /// Failure cause (`channel` TTF expiry or server `outage`).
        cause: String,
        /// Source-site server the channel was placed on.
        src_server: u32,
        /// Destination-site server the channel was placed on.
        dst_server: u32,
    },
    /// A killed channel scheduled its reconnect through the retry policy.
    ChannelRetry {
        /// Chunk index.
        chunk: u32,
        /// Channel slot within the chunk.
        channel: u32,
        /// Consecutive-failure count driving the backoff (0-based).
        attempt: u32,
        /// Reconnect delay, microseconds.
        delay_us: u64,
        /// True when the retry budget was exhausted (full cooldown).
        exhausted: bool,
    },
    /// The engine applied a controller reallocation.
    Reallocate {
        /// New channel target per chunk of the running stage.
        targets: Vec<u32>,
    },
    /// A controller-authored decision with its reason.
    Decision {
        /// Human-readable reason ("probe level 3", "shed to 50%", …).
        reason: String,
        /// Channel targets the decision implies (empty when none).
        targets: Vec<u32>,
    },
    /// One finished probe window of HTEE's online search.
    ProbeWindow {
        /// Concurrency level probed.
        level: u32,
        /// Window length, seconds.
        window_s: f64,
        /// Mean throughput measured over the window, Mbps.
        mbps: f64,
        /// End-system energy attributed to the window, Joules.
        energy_j: f64,
        /// The whole-transfer throughput²/energy score of the window.
        ratio: f64,
    },
    /// The online search committed to a level.
    Commit {
        /// The winning concurrency level.
        level: u32,
        /// Why ("best measured ratio", …).
        reason: String,
    },
    /// A per-server circuit breaker changed state.
    Breaker {
        /// Which site the server belongs to.
        side: Side,
        /// Server index within the site.
        server: u32,
        /// The state entered.
        state: BreakerState,
    },
    /// A fault-injection episode window opened or closed.
    FaultEpisode {
        /// Episode kind.
        kind: EpisodeKind,
        /// Site of the affected server (absent for path-wide stalls).
        side: Option<Side>,
        /// Affected server (absent for path-wide stalls).
        server: Option<u32>,
        /// True when the window opened, false when it closed.
        active: bool,
    },
    /// A server started or stopped carrying working channels (its power
    /// draw transitions between idle and active).
    PowerState {
        /// Which site the server belongs to.
        side: Side,
        /// Server index within the site.
        server: u32,
        /// True when the server picked up its first working channel.
        active: bool,
    },
    /// A causal span opened (probe window, retry chain, quarantine,
    /// macro-step horizon, …). Emitters may leave `id` as 0; the
    /// [`Telemetry`](crate::Telemetry) façade then assigns the
    /// deterministic id `1 + seq` of this record and fills `parent` with
    /// the innermost still-open span (0 = root).
    SpanBegin {
        /// Deterministic span id (`1 + seq` of the begin record).
        id: u64,
        /// Id of the enclosing open span, 0 when the span is top-level.
        parent: u64,
        /// Span taxonomy kind (`probe`, `retry`, `quarantine`, `horizon`,
        /// `rearrange`, …; see DESIGN.md §14).
        kind: String,
        /// Free-text detail (probed level, server, horizon source, …).
        detail: String,
    },
    /// A causal span closed. Emitters may leave `id` as 0 and `detail`
    /// empty; the façade matches the innermost open span of the same
    /// `kind` (and `detail`, when given) and fills the id in.
    SpanEnd {
        /// Id assigned by the matching [`Event::SpanBegin`] (0 when no
        /// open span matched).
        id: u64,
        /// Span taxonomy kind, mirrors the begin record.
        kind: String,
        /// Free-text detail (may differ from the begin's, e.g. an
        /// outcome annotation).
        detail: String,
    },
    /// A periodic metrics sample (cadence set by the tracer).
    Sample {
        /// Aggregate goodput over the last slice, Mbps.
        throughput_mbps: f64,
        /// Instantaneous total power (both sites), Watts.
        power_w: f64,
        /// Total data channels.
        concurrency: u32,
        /// Channels waiting out a backoff/cooldown.
        in_backoff: u32,
        /// Files still queued (not in flight) across all chunks.
        queue_depth: u64,
    },
    /// Emitted once when the engine returns.
    RunEnd {
        /// Goodput bytes moved.
        moved_bytes: u64,
        /// Simulated duration, seconds.
        duration_s: f64,
        /// Total end-system energy, Joules.
        energy_j: f64,
        /// Whether every file finished before the time guard.
        completed: bool,
    },
    /// A job arrived at the continuous fleet service and joined the
    /// admission queue.
    JobSubmitted {
        /// Service-wide job index.
        job: u32,
        /// Owning tenant index.
        tenant: u32,
        /// Site whose pool the job contends for.
        site: String,
        /// Priority class (higher wins under strict-priority).
        priority: u32,
    },
    /// Admission control moved a queued job into a site's resource pool.
    JobAdmitted {
        /// Service-wide job index.
        job: u32,
        /// Site whose pool admitted the job.
        site: String,
        /// Transfers resident at the site after admission.
        resident: u32,
        /// Jobs still waiting in the queue after admission.
        waiting: u32,
    },
    /// The scheduler evicted a running job from its site pool (its engine
    /// checkpoint goes back to the queue for a later resume).
    JobPreempted {
        /// Service-wide job index.
        job: u32,
        /// The higher-priority job that displaced it (absent when the
        /// eviction had no single displacing job, e.g. a zero grant).
        by: Option<u32>,
        /// Site whose pool evicted the job.
        site: String,
    },
    /// A previously-preempted job re-entered a site pool and resumed from
    /// its checkpoint.
    JobResumed {
        /// Service-wide job index.
        job: u32,
        /// Site whose pool re-admitted the job.
        site: String,
        /// Scheduling round at which the resume happened.
        round: u64,
    },
    /// A service job ran to completion and left its site pool.
    JobFinished {
        /// Service-wide job index.
        job: u32,
        /// Whether the transfer finished before the time guard.
        completed: bool,
        /// Goodput bytes the job moved.
        moved_bytes: u64,
    },
}

impl Event {
    /// Short tag used in the `ev` field and by timeline/trace renderers.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::StageStart { .. } => "stage_start",
            Event::ChunkStart { .. } => "chunk_start",
            Event::ChunkDrain { .. } => "chunk_drain",
            Event::ChannelOpen { .. } => "channel_open",
            Event::ChannelClose { .. } => "channel_close",
            Event::ChannelFail { .. } => "channel_fail",
            Event::ChannelRetry { .. } => "channel_retry",
            Event::Reallocate { .. } => "reallocate",
            Event::Decision { .. } => "decision",
            Event::ProbeWindow { .. } => "probe_window",
            Event::Commit { .. } => "commit",
            Event::Breaker { .. } => "breaker",
            Event::FaultEpisode { .. } => "fault_episode",
            Event::PowerState { .. } => "power_state",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::Sample { .. } => "sample",
            Event::RunEnd { .. } => "run_end",
            Event::JobSubmitted { .. } => "job_submitted",
            Event::JobAdmitted { .. } => "job_admitted",
            Event::JobPreempted { .. } => "job_preempted",
            Event::JobResumed { .. } => "job_resumed",
            Event::JobFinished { .. } => "job_finished",
        }
    }

    /// Writes the variant's fields (each preceded by a comma) onto a
    /// JSON object body in declaration order.
    fn write_fields(&self, s: &mut String) {
        match self {
            Event::RunStart {
                schema,
                algorithm,
                environment,
                seed,
                requested_bytes,
            } => {
                let _ = write!(s, ",\"schema\":{schema},\"algorithm\":");
                write_json_str(s, algorithm);
                s.push_str(",\"environment\":");
                write_json_str(s, environment);
                let _ = write!(s, ",\"seed\":{seed},\"requested_bytes\":{requested_bytes}");
            }
            Event::StageStart { stage } => {
                let _ = write!(s, ",\"stage\":{stage}");
            }
            Event::ChunkStart {
                chunk,
                label,
                bytes,
                files,
            } => {
                let _ = write!(s, ",\"chunk\":{chunk},\"label\":");
                write_json_str(s, label);
                let _ = write!(s, ",\"bytes\":{bytes},\"files\":{files}");
            }
            Event::ChunkDrain { chunk, label } => {
                let _ = write!(s, ",\"chunk\":{chunk},\"label\":");
                write_json_str(s, label);
            }
            Event::ChannelOpen {
                chunk,
                opened,
                count,
            } => {
                let _ = write!(
                    s,
                    ",\"chunk\":{chunk},\"opened\":{opened},\"count\":{count}"
                );
            }
            Event::ChannelClose {
                chunk,
                closed,
                count,
            } => {
                let _ = write!(
                    s,
                    ",\"chunk\":{chunk},\"closed\":{closed},\"count\":{count}"
                );
            }
            Event::ChannelFail {
                chunk,
                channel,
                cause,
                src_server,
                dst_server,
            } => {
                let _ = write!(s, ",\"chunk\":{chunk},\"channel\":{channel},\"cause\":");
                write_json_str(s, cause);
                let _ = write!(
                    s,
                    ",\"src_server\":{src_server},\"dst_server\":{dst_server}"
                );
            }
            Event::ChannelRetry {
                chunk,
                channel,
                attempt,
                delay_us,
                exhausted,
            } => {
                let _ = write!(
                    s,
                    ",\"chunk\":{chunk},\"channel\":{channel},\"attempt\":{attempt},\
                     \"delay_us\":{delay_us},\"exhausted\":{exhausted}"
                );
            }
            Event::Reallocate { targets } => {
                s.push_str(",\"targets\":");
                write_u32_array(s, targets);
            }
            Event::Decision { reason, targets } => {
                s.push_str(",\"reason\":");
                write_json_str(s, reason);
                s.push_str(",\"targets\":");
                write_u32_array(s, targets);
            }
            Event::ProbeWindow {
                level,
                window_s,
                mbps,
                energy_j,
                ratio,
            } => {
                let _ = write!(s, ",\"level\":{level},\"window_s\":");
                write_json_f64(s, *window_s);
                s.push_str(",\"mbps\":");
                write_json_f64(s, *mbps);
                s.push_str(",\"energy_j\":");
                write_json_f64(s, *energy_j);
                s.push_str(",\"ratio\":");
                write_json_f64(s, *ratio);
            }
            Event::Commit { level, reason } => {
                let _ = write!(s, ",\"level\":{level},\"reason\":");
                write_json_str(s, reason);
            }
            Event::Breaker {
                side,
                server,
                state,
            } => {
                let _ = write!(
                    s,
                    ",\"side\":\"{}\",\"server\":{server},\"state\":\"{}\"",
                    side.as_str(),
                    state.as_str()
                );
            }
            Event::FaultEpisode {
                kind,
                side,
                server,
                active,
            } => {
                let _ = write!(s, ",\"kind\":\"{}\"", kind.as_str());
                if let Some(side) = side {
                    let _ = write!(s, ",\"side\":\"{}\"", side.as_str());
                }
                if let Some(server) = server {
                    let _ = write!(s, ",\"server\":{server}");
                }
                let _ = write!(s, ",\"active\":{active}");
            }
            Event::PowerState {
                side,
                server,
                active,
            } => {
                let _ = write!(
                    s,
                    ",\"side\":\"{}\",\"server\":{server},\"active\":{active}",
                    side.as_str()
                );
            }
            Event::SpanBegin {
                id,
                parent,
                kind,
                detail,
            } => {
                let _ = write!(s, ",\"id\":{id},\"parent\":{parent},\"kind\":");
                write_json_str(s, kind);
                s.push_str(",\"detail\":");
                write_json_str(s, detail);
            }
            Event::SpanEnd { id, kind, detail } => {
                let _ = write!(s, ",\"id\":{id},\"kind\":");
                write_json_str(s, kind);
                s.push_str(",\"detail\":");
                write_json_str(s, detail);
            }
            Event::Sample {
                throughput_mbps,
                power_w,
                concurrency,
                in_backoff,
                queue_depth,
            } => {
                s.push_str(",\"throughput_mbps\":");
                write_json_f64(s, *throughput_mbps);
                s.push_str(",\"power_w\":");
                write_json_f64(s, *power_w);
                let _ = write!(
                    s,
                    ",\"concurrency\":{concurrency},\"in_backoff\":{in_backoff},\
                     \"queue_depth\":{queue_depth}"
                );
            }
            Event::RunEnd {
                moved_bytes,
                duration_s,
                energy_j,
                completed,
            } => {
                let _ = write!(s, ",\"moved_bytes\":{moved_bytes},\"duration_s\":");
                write_json_f64(s, *duration_s);
                s.push_str(",\"energy_j\":");
                write_json_f64(s, *energy_j);
                let _ = write!(s, ",\"completed\":{completed}");
            }
            Event::JobSubmitted {
                job,
                tenant,
                site,
                priority,
            } => {
                let _ = write!(s, ",\"job\":{job},\"tenant\":{tenant},\"site\":");
                write_json_str(s, site);
                let _ = write!(s, ",\"priority\":{priority}");
            }
            Event::JobAdmitted {
                job,
                site,
                resident,
                waiting,
            } => {
                let _ = write!(s, ",\"job\":{job},\"site\":");
                write_json_str(s, site);
                let _ = write!(s, ",\"resident\":{resident},\"waiting\":{waiting}");
            }
            Event::JobPreempted { job, by, site } => {
                let _ = write!(s, ",\"job\":{job}");
                if let Some(by) = by {
                    let _ = write!(s, ",\"by\":{by}");
                }
                s.push_str(",\"site\":");
                write_json_str(s, site);
            }
            Event::JobResumed { job, site, round } => {
                let _ = write!(s, ",\"job\":{job},\"site\":");
                write_json_str(s, site);
                let _ = write!(s, ",\"round\":{round}");
            }
            Event::JobFinished {
                job,
                completed,
                moved_bytes,
            } => {
                let _ = write!(
                    s,
                    ",\"job\":{job},\"completed\":{completed},\"moved_bytes\":{moved_bytes}"
                );
            }
        }
    }

    /// Rebuilds the variant tagged `tag` from a parsed JSON object.
    fn from_map(tag: &str, m: &Map) -> Result<Self, String> {
        match tag {
            "run_start" => Ok(Event::RunStart {
                schema: get_u32(m, "schema")?,
                algorithm: get_string(m, "algorithm")?,
                environment: get_string(m, "environment")?,
                seed: get_u64(m, "seed")?,
                requested_bytes: get_u64(m, "requested_bytes")?,
            }),
            "stage_start" => Ok(Event::StageStart {
                stage: get_u32(m, "stage")?,
            }),
            "chunk_start" => Ok(Event::ChunkStart {
                chunk: get_u32(m, "chunk")?,
                label: get_string(m, "label")?,
                bytes: get_u64(m, "bytes")?,
                files: get_u64(m, "files")?,
            }),
            "chunk_drain" => Ok(Event::ChunkDrain {
                chunk: get_u32(m, "chunk")?,
                label: get_string(m, "label")?,
            }),
            "channel_open" => Ok(Event::ChannelOpen {
                chunk: get_u32(m, "chunk")?,
                opened: get_u32(m, "opened")?,
                count: get_u32(m, "count")?,
            }),
            "channel_close" => Ok(Event::ChannelClose {
                chunk: get_u32(m, "chunk")?,
                closed: get_u32(m, "closed")?,
                count: get_u32(m, "count")?,
            }),
            "channel_fail" => Ok(Event::ChannelFail {
                chunk: get_u32(m, "chunk")?,
                channel: get_u32(m, "channel")?,
                cause: get_string(m, "cause")?,
                src_server: get_u32(m, "src_server")?,
                dst_server: get_u32(m, "dst_server")?,
            }),
            "channel_retry" => Ok(Event::ChannelRetry {
                chunk: get_u32(m, "chunk")?,
                channel: get_u32(m, "channel")?,
                attempt: get_u32(m, "attempt")?,
                delay_us: get_u64(m, "delay_us")?,
                exhausted: get_bool(m, "exhausted")?,
            }),
            "reallocate" => Ok(Event::Reallocate {
                targets: get_u32_array(m, "targets")?,
            }),
            "decision" => Ok(Event::Decision {
                reason: get_string(m, "reason")?,
                targets: get_u32_array(m, "targets")?,
            }),
            "probe_window" => Ok(Event::ProbeWindow {
                level: get_u32(m, "level")?,
                window_s: get_f64(m, "window_s")?,
                mbps: get_f64(m, "mbps")?,
                energy_j: get_f64(m, "energy_j")?,
                ratio: get_f64(m, "ratio")?,
            }),
            "commit" => Ok(Event::Commit {
                level: get_u32(m, "level")?,
                reason: get_string(m, "reason")?,
            }),
            "breaker" => Ok(Event::Breaker {
                side: Side::parse(&get_string(m, "side")?)?,
                server: get_u32(m, "server")?,
                state: BreakerState::parse(&get_string(m, "state")?)?,
            }),
            "fault_episode" => Ok(Event::FaultEpisode {
                kind: EpisodeKind::parse(&get_string(m, "kind")?)?,
                side: match m.get("side") {
                    Some(v) => Some(Side::parse(
                        v.as_str().ok_or_else(|| err_type("side", "string"))?,
                    )?),
                    None => None,
                },
                server: match m.get("server") {
                    Some(v) => Some(
                        u32::try_from(v.as_u64().ok_or_else(|| err_type("server", "integer"))?)
                            .map_err(|_| err_type("server", "u32"))?,
                    ),
                    None => None,
                },
                active: get_bool(m, "active")?,
            }),
            "power_state" => Ok(Event::PowerState {
                side: Side::parse(&get_string(m, "side")?)?,
                server: get_u32(m, "server")?,
                active: get_bool(m, "active")?,
            }),
            "span_begin" => Ok(Event::SpanBegin {
                id: get_u64(m, "id")?,
                parent: get_u64(m, "parent")?,
                kind: get_string(m, "kind")?,
                detail: get_string(m, "detail")?,
            }),
            "span_end" => Ok(Event::SpanEnd {
                id: get_u64(m, "id")?,
                kind: get_string(m, "kind")?,
                detail: get_string(m, "detail")?,
            }),
            "sample" => Ok(Event::Sample {
                throughput_mbps: get_f64(m, "throughput_mbps")?,
                power_w: get_f64(m, "power_w")?,
                concurrency: get_u32(m, "concurrency")?,
                in_backoff: get_u32(m, "in_backoff")?,
                queue_depth: get_u64(m, "queue_depth")?,
            }),
            "run_end" => Ok(Event::RunEnd {
                moved_bytes: get_u64(m, "moved_bytes")?,
                duration_s: get_f64(m, "duration_s")?,
                energy_j: get_f64(m, "energy_j")?,
                completed: get_bool(m, "completed")?,
            }),
            "job_submitted" => Ok(Event::JobSubmitted {
                job: get_u32(m, "job")?,
                tenant: get_u32(m, "tenant")?,
                site: get_string(m, "site")?,
                priority: get_u32(m, "priority")?,
            }),
            "job_admitted" => Ok(Event::JobAdmitted {
                job: get_u32(m, "job")?,
                site: get_string(m, "site")?,
                resident: get_u32(m, "resident")?,
                waiting: get_u32(m, "waiting")?,
            }),
            "job_preempted" => Ok(Event::JobPreempted {
                job: get_u32(m, "job")?,
                by: match m.get("by") {
                    Some(v) => Some(
                        u32::try_from(v.as_u64().ok_or_else(|| err_type("by", "integer"))?)
                            .map_err(|_| err_type("by", "u32"))?,
                    ),
                    None => None,
                },
                site: get_string(m, "site")?,
            }),
            "job_resumed" => Ok(Event::JobResumed {
                job: get_u32(m, "job")?,
                site: get_string(m, "site")?,
                round: get_u64(m, "round")?,
            }),
            "job_finished" => Ok(Event::JobFinished {
                job: get_u32(m, "job")?,
                completed: get_bool(m, "completed")?,
                moved_bytes: get_u64(m, "moved_bytes")?,
            }),
            other => Err(format!("unknown event tag `{other}`")),
        }
    }
}

/// JSON string literal with escaping for quotes, backslashes and control
/// characters.
pub(crate) fn write_json_str(s: &mut String, text: &str) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Shortest-roundtrip float rendering (Rust's `{}` for `f64`), the same
/// value every run — the byte-determinism guarantee rests on this.
pub(crate) fn write_json_f64(s: &mut String, f: f64) {
    debug_assert!(f.is_finite(), "journal floats must be finite, got {f}");
    if f.is_finite() {
        let _ = write!(s, "{f}");
    } else {
        s.push_str("null");
    }
}

fn write_u32_array(s: &mut String, xs: &[u32]) {
    s.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{x}");
    }
    s.push(']');
}

fn err_missing(key: &str) -> String {
    format!("missing field `{key}`")
}

fn err_type(key: &str, expected: &str) -> String {
    format!("field `{key}`: expected {expected}")
}

fn field<'a>(m: &'a Map, key: &str) -> Result<&'a Value, String> {
    m.get(key).ok_or_else(|| err_missing(key))
}

fn get_u64(m: &Map, key: &str) -> Result<u64, String> {
    field(m, key)?
        .as_u64()
        .ok_or_else(|| err_type(key, "unsigned integer"))
}

fn get_u32(m: &Map, key: &str) -> Result<u32, String> {
    u32::try_from(get_u64(m, key)?).map_err(|_| err_type(key, "u32"))
}

fn get_f64(m: &Map, key: &str) -> Result<f64, String> {
    field(m, key)?
        .as_f64()
        .ok_or_else(|| err_type(key, "number"))
}

fn get_bool(m: &Map, key: &str) -> Result<bool, String> {
    field(m, key)?
        .as_bool()
        .ok_or_else(|| err_type(key, "boolean"))
}

fn get_string(m: &Map, key: &str) -> Result<String, String> {
    Ok(field(m, key)?
        .as_str()
        .ok_or_else(|| err_type(key, "string"))?
        .to_string())
}

fn get_u32_array(m: &Map, key: &str) -> Result<Vec<u32>, String> {
    field(m, key)?
        .as_array()
        .ok_or_else(|| err_type(key, "array"))?
        .iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| err_type(key, "array of u32"))
        })
        .collect()
}

/// One journal line: a sequence number, a timestamp and the event.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Monotone sequence number (0-based), total order of the journal.
    pub seq: u64,
    /// Simulated time of the event, microseconds since transfer start.
    pub t_us: u64,
    /// The event itself, flattened into the same JSON object on disk.
    pub event: Event,
}

impl Record {
    /// Simulated timestamp as [`SimTime`].
    pub fn time(&self) -> SimTime {
        SimTime::from_micros(self.t_us)
    }

    /// Serializes the record as one compact JSON object:
    /// `{"seq":N,"t_us":T,"ev":"<tag>",...}` with fields in declaration
    /// order. Byte-deterministic for identical records.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\":{},\"t_us\":{},\"ev\":\"{}\"",
            self.seq,
            self.t_us,
            self.event.tag()
        );
        self.event.write_fields(&mut s);
        s.push('}');
        s
    }

    /// Parses one JSON journal line. Unknown fields are ignored, so
    /// journals from newer (additive) schema versions stay readable.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let v = serde::value::parse(line).map_err(|e| e.to_string())?;
        let m = v.as_object().ok_or("expected a JSON object")?;
        let seq = get_u64(m, "seq")?;
        let t_us = get_u64(m, "t_us")?;
        let tag = get_string(m, "ev")?;
        let event = Event::from_map(&tag, m)?;
        Ok(Record { seq, t_us, event })
    }
}

/// What [`Journal::recover_jsonl`] found while reading a journal that
/// may have been truncated by a crash.
///
/// A crash-interrupted writer can leave exactly one kind of damage in
/// an append-only JSONL file: an incomplete **final** line. Recovery
/// repairs that (drops the torn tail and reports it) but refuses to
/// paper over corruption anywhere else — a malformed line in the middle
/// means the file is not a journal we wrote, and recovery hard-errors.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalRecovery {
    /// The torn final line that was dropped, verbatim, when the last
    /// non-blank line failed to parse. `None` for a clean journal.
    pub torn_tail: Option<String>,
    /// Number of blank (whitespace-only) lines skipped.
    pub blank_lines: usize,
    /// 1-based line number of the first record retained, for reporting.
    pub first_line: Option<usize>,
}

impl JournalRecovery {
    /// True when the file parsed without repair.
    pub fn is_clean(&self) -> bool {
        self.torn_tail.is_none()
    }
}

/// An in-memory, append-only event journal.
///
/// The engine records into it through
/// [`Telemetry`](crate::Telemetry); afterwards it serializes to JSON
/// Lines (one [`Record`] per line) or is inspected directly.
#[derive(Debug, Clone, Default)]
pub struct Journal {
    records: Vec<Record>,
    /// Sequence number the next [`Journal::record`] call will assign.
    /// Equals `records.len()` for journals built from scratch; resumed
    /// journals (checkpoint restore) start past the checkpoint cursor.
    next_seq: u64,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal {
            records: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty journal whose first record will carry sequence
    /// number `seq`. Used on checkpoint resume: the restored engine
    /// journals only the suffix of the run, continuing the sequence of
    /// the journal prefix already on disk so the concatenation is
    /// byte-identical to an uninterrupted run.
    pub fn with_start_seq(seq: u64) -> Self {
        Journal {
            records: Vec::new(),
            next_seq: seq,
        }
    }

    /// Appends an event at the given simulated time, assigning the next
    /// sequence number.
    pub fn record(&mut self, t: SimTime, event: Event) {
        self.records.push(Record {
            seq: self.next_seq,
            t_us: t.as_micros(),
            event,
        });
        self.next_seq += 1;
    }

    /// Sequence number the next recorded event will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// All records in sequence order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the journal as JSON Lines. Output is byte-deterministic
    /// for identical event streams (field order is declaration order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the journal as JSON Lines.
    pub fn write_jsonl(&self, out: &mut dyn std::io::Write) -> std::io::Result<()> {
        out.write_all(self.to_jsonl().as_bytes())
    }

    /// Parses a JSON Lines journal (blank lines are skipped).
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let r = Record::from_json(line).map_err(|e| format!("journal line {}: {e}", i + 1))?;
            records.push(r);
        }
        let next_seq = records.last().map(|r: &Record| r.seq + 1).unwrap_or(0);
        Ok(Journal { records, next_seq })
    }

    /// Parses a JSON Lines journal that may have been truncated by a
    /// crash, repairing a torn final line.
    ///
    /// Rules, strictest first:
    ///
    /// * Blank (whitespace-only) lines anywhere are skipped and counted
    ///   in [`JournalRecovery::blank_lines`] — a crashed writer can leave
    ///   a lone trailing newline, and runs of blanks are harmless.
    /// * A line that fails to parse is tolerated **only** when every
    ///   later line is blank — i.e. it is the torn tail of the file. It
    ///   is dropped and returned verbatim in [`JournalRecovery::torn_tail`].
    /// * A malformed line followed by any non-blank line is corruption,
    ///   not truncation: hard error with the 1-based line number.
    /// * Sequence numbers of retained records must be consecutive;
    ///   a gap is a hard error (a torn *middle* cannot be repaired).
    pub fn recover_jsonl(text: &str) -> Result<(Self, JournalRecovery), String> {
        let mut records: Vec<Record> = Vec::new();
        let mut recovery = JournalRecovery::default();
        // (line number, verbatim text, parse error) of a failed line,
        // held until we know whether anything non-blank follows it.
        let mut pending_bad: Option<(usize, String, String)> = None;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                recovery.blank_lines += 1;
                continue;
            }
            if let Some((bad_line, _, err)) = pending_bad.take() {
                return Err(format!(
                    "journal line {bad_line}: {err} (not a torn tail: non-blank line {} follows)",
                    i + 1
                ));
            }
            match Record::from_json(line) {
                Ok(r) => {
                    if let Some(prev) = records.last() {
                        if r.seq != prev.seq + 1 {
                            return Err(format!(
                                "journal line {}: sequence gap ({} after {})",
                                i + 1,
                                r.seq,
                                prev.seq
                            ));
                        }
                    }
                    if records.is_empty() {
                        recovery.first_line = Some(i + 1);
                    }
                    records.push(r);
                }
                Err(e) => pending_bad = Some((i + 1, line.to_string(), e)),
            }
        }
        if let Some((_, text, _)) = pending_bad {
            recovery.torn_tail = Some(text);
        }
        let next_seq = records.last().map(|r| r.seq + 1).unwrap_or(0);
        Ok((Journal { records, next_seq }, recovery))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn journal_assigns_monotone_sequence_numbers() {
        let mut j = Journal::new();
        assert!(j.is_empty());
        j.record(t(0.0), Event::StageStart { stage: 0 });
        j.record(
            t(0.1),
            Event::ChannelOpen {
                chunk: 0,
                opened: 2,
                count: 2,
            },
        );
        assert_eq!(j.len(), 2);
        assert_eq!(j.records()[0].seq, 0);
        assert_eq!(j.records()[1].seq, 1);
        assert_eq!(j.records()[1].t_us, 100_000);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let mut j = Journal::new();
        let events = vec![
            Event::RunStart {
                schema: SCHEMA_VERSION,
                algorithm: "HTEE".into(),
                environment: "didclab".into(),
                seed: 42,
                requested_bytes: 1000,
            },
            Event::StageStart { stage: 0 },
            Event::ChunkStart {
                chunk: 0,
                label: "Small".into(),
                bytes: 500,
                files: 3,
            },
            Event::ChannelOpen {
                chunk: 0,
                opened: 1,
                count: 1,
            },
            Event::ChannelFail {
                chunk: 0,
                channel: 0,
                cause: "outage".into(),
                src_server: 0,
                dst_server: 1,
            },
            Event::ChannelRetry {
                chunk: 0,
                channel: 0,
                attempt: 1,
                delay_us: 4_000_000,
                exhausted: false,
            },
            Event::Breaker {
                side: Side::Dst,
                server: 1,
                state: BreakerState::Open,
            },
            Event::FaultEpisode {
                kind: EpisodeKind::Stall,
                side: None,
                server: None,
                active: true,
            },
            Event::FaultEpisode {
                kind: EpisodeKind::Outage,
                side: Some(Side::Src),
                server: Some(2),
                active: false,
            },
            Event::ProbeWindow {
                level: 3,
                window_s: 5.0,
                mbps: 812.5,
                energy_j: 950.0,
                ratio: 694.9,
            },
            Event::Commit {
                level: 5,
                reason: "best measured ratio".into(),
            },
            Event::Decision {
                reason: "shed to 50% capacity".into(),
                targets: vec![2, 1],
            },
            Event::Reallocate {
                targets: vec![2, 1],
            },
            Event::PowerState {
                side: Side::Src,
                server: 0,
                active: true,
            },
            Event::SpanBegin {
                id: 10,
                parent: 3,
                kind: "probe".into(),
                detail: "level 3".into(),
            },
            Event::SpanEnd {
                id: 10,
                kind: "probe".into(),
                detail: "ratio 694.9".into(),
            },
            Event::Sample {
                throughput_mbps: 420.0,
                power_w: 310.5,
                concurrency: 4,
                in_backoff: 1,
                queue_depth: 12,
            },
            Event::ChannelClose {
                chunk: 0,
                closed: 1,
                count: 0,
            },
            Event::ChunkDrain {
                chunk: 0,
                label: "Small".into(),
            },
            Event::RunEnd {
                moved_bytes: 1000,
                duration_s: 12.5,
                energy_j: 4210.0,
                completed: true,
            },
        ];
        for (i, e) in events.into_iter().enumerate() {
            j.record(t(i as f64), e);
        }
        let text = j.to_jsonl();
        let back = Journal::from_jsonl(&text).unwrap();
        assert_eq!(back.records(), j.records());
        assert_eq!(back.to_jsonl(), text, "serialization is deterministic");
    }

    #[test]
    fn jsonl_lines_carry_the_tag_field() {
        let mut j = Journal::new();
        j.record(t(1.0), Event::StageStart { stage: 2 });
        let line = j.to_jsonl();
        assert_eq!(
            line,
            "{\"seq\":0,\"t_us\":1000000,\"ev\":\"stage_start\",\"stage\":2}\n"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let r = Record {
            seq: 0,
            t_us: 0,
            event: Event::Commit {
                level: 1,
                reason: "a \"quoted\"\nline\\".into(),
            },
        };
        let text = r.to_json();
        let back = Record::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let r = Record::from_json(
            r#"{"seq":7,"t_us":100,"ev":"stage_start","stage":1,"future_field":"x"}"#,
        )
        .unwrap();
        assert_eq!(r.seq, 7);
        assert_eq!(r.event, Event::StageStart { stage: 1 });
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = Journal::from_jsonl("{\"seq\":0}\nnot json\n").unwrap_err();
        assert!(err.contains("line 1") || err.contains("line 2"), "{err}");
    }

    #[test]
    fn with_start_seq_continues_numbering() {
        let mut j = Journal::with_start_seq(41);
        assert_eq!(j.next_seq(), 41);
        j.record(t(1.0), Event::StageStart { stage: 1 });
        j.record(t(2.0), Event::StageStart { stage: 2 });
        assert_eq!(j.records()[0].seq, 41);
        assert_eq!(j.records()[1].seq, 42);
        assert_eq!(j.next_seq(), 43);
    }

    #[test]
    fn from_jsonl_continues_seq_after_parse() {
        let mut j = Journal::new();
        j.record(t(0.0), Event::StageStart { stage: 0 });
        j.record(t(1.0), Event::StageStart { stage: 1 });
        let mut back = Journal::from_jsonl(&j.to_jsonl()).unwrap();
        back.record(t(2.0), Event::StageStart { stage: 2 });
        assert_eq!(back.records()[2].seq, 2);
    }

    #[test]
    fn recover_clean_journal_reports_no_repair() {
        let mut j = Journal::new();
        j.record(t(0.0), Event::StageStart { stage: 0 });
        j.record(t(1.0), Event::StageStart { stage: 1 });
        let (back, rec) = Journal::recover_jsonl(&j.to_jsonl()).unwrap();
        assert!(rec.is_clean());
        assert_eq!(rec.blank_lines, 0);
        assert_eq!(rec.first_line, Some(1));
        assert_eq!(back.records(), j.records());
        assert_eq!(back.next_seq(), 2);
    }

    #[test]
    fn recover_drops_and_reports_torn_final_line() {
        let mut j = Journal::new();
        j.record(t(0.0), Event::StageStart { stage: 0 });
        j.record(t(1.0), Event::StageStart { stage: 1 });
        let full = j.to_jsonl();
        // Simulate a crash mid-write: cut the last line in half.
        let torn = &full[..full.len() - 12];
        let (back, rec) = Journal::recover_jsonl(torn).unwrap();
        assert_eq!(back.len(), 1, "only the complete record survives");
        assert_eq!(back.records()[0].seq, 0);
        assert!(!rec.is_clean());
        let tail = rec.torn_tail.expect("torn tail must be reported");
        assert!(full.contains(&tail), "tail is reported verbatim: {tail}");
    }

    #[test]
    fn recover_tolerates_trailing_garbage_followed_only_by_blanks() {
        let mut j = Journal::new();
        j.record(t(0.0), Event::StageStart { stage: 0 });
        let text = format!("{}{{\"seq\":1,\"t_us\"\n\n  \n", j.to_jsonl());
        let (back, rec) = Journal::recover_jsonl(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(rec.torn_tail.as_deref(), Some("{\"seq\":1,\"t_us\""));
        assert_eq!(rec.blank_lines, 2);
    }

    #[test]
    fn recover_counts_blank_line_runs() {
        let mut j = Journal::new();
        j.record(t(0.0), Event::StageStart { stage: 0 });
        j.record(t(1.0), Event::StageStart { stage: 1 });
        let full = j.to_jsonl();
        let lines: Vec<&str> = full.lines().collect();
        let text = format!("\n\n{}\n \n\t\n{}\n\n", lines[0], lines[1]);
        let (back, rec) = Journal::recover_jsonl(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert!(rec.is_clean());
        assert_eq!(rec.blank_lines, 5);
        assert_eq!(rec.first_line, Some(3));
    }

    #[test]
    fn recover_rejects_malformed_line_in_the_middle() {
        let mut j = Journal::new();
        j.record(t(0.0), Event::StageStart { stage: 0 });
        j.record(t(1.0), Event::StageStart { stage: 1 });
        let full = j.to_jsonl();
        let lines: Vec<&str> = full.lines().collect();
        let text = format!("{}\nnot json\n{}\n", lines[0], lines[1]);
        let err = Journal::recover_jsonl(&text).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("not a torn tail"), "{err}");
    }

    #[test]
    fn recover_rejects_sequence_gaps() {
        let text = concat!(
            "{\"seq\":0,\"t_us\":0,\"ev\":\"stage_start\",\"stage\":0}\n",
            "{\"seq\":2,\"t_us\":5,\"ev\":\"stage_start\",\"stage\":1}\n",
        );
        let err = Journal::recover_jsonl(text).unwrap_err();
        assert!(err.contains("sequence gap"), "{err}");
    }

    #[test]
    fn optional_fault_episode_fields_are_omitted() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            Event::FaultEpisode {
                kind: EpisodeKind::Stall,
                side: None,
                server: None,
                active: true,
            },
        );
        let line = j.to_jsonl();
        assert!(!line.contains("side"), "{line}");
        assert!(!line.contains("server"), "{line}");
    }
}
