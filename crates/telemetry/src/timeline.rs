//! ASCII rendering of a journal: per-chunk channel-count timelines and a
//! controller-decision log. This is what `eadt inspect` prints.

use crate::event::{Event, Journal};

/// Per-chunk state reconstructed from the journal.
struct ChunkTrack {
    label: String,
    start_us: Option<u64>,
    drain_us: Option<u64>,
    /// `(t_us, channel count)` transitions, in time order.
    counts: Vec<(u64, u32)>,
    /// Times at which a channel on this chunk was killed.
    fails: Vec<u64>,
}

impl ChunkTrack {
    fn new() -> Self {
        ChunkTrack {
            label: String::new(),
            start_us: None,
            drain_us: None,
            counts: Vec::new(),
            fails: Vec::new(),
        }
    }

    /// Channel count in effect at `t_us` (last transition at or before).
    fn count_at(&self, t_us: u64) -> u32 {
        match self.counts.partition_point(|&(t, _)| t <= t_us) {
            0 => 0,
            i => self.counts[i - 1].1,
        }
    }
}

fn at(tracks: &mut Vec<ChunkTrack>, idx: u32) -> &mut ChunkTrack {
    let idx = idx as usize;
    while tracks.len() <= idx {
        tracks.push(ChunkTrack::new());
    }
    &mut tracks[idx]
}

fn tracks(journal: &Journal) -> Vec<ChunkTrack> {
    let mut tracks: Vec<ChunkTrack> = Vec::new();
    for r in journal.records() {
        match &r.event {
            Event::ChunkStart { chunk, label, .. } => {
                let tr = at(&mut tracks, *chunk);
                tr.label = label.clone();
                tr.start_us = Some(r.t_us);
            }
            Event::ChunkDrain { chunk, .. } => at(&mut tracks, *chunk).drain_us = Some(r.t_us),
            Event::ChannelOpen { chunk, count, .. } | Event::ChannelClose { chunk, count, .. } => {
                at(&mut tracks, *chunk).counts.push((r.t_us, *count));
            }
            Event::ChannelFail { chunk, .. } => at(&mut tracks, *chunk).fails.push(r.t_us),
            _ => {}
        }
    }
    tracks
}

/// Renders per-chunk timelines, `width` columns across the run.
///
/// Each cell shows the channel count in effect at the end of its time
/// bin (`0`-`9`, `+` for more), `!` when a channel died inside the bin,
/// `·` before the chunk starts and blank after it drains.
pub fn render_timeline(journal: &Journal, width: usize) -> String {
    let width = width.max(10);
    let end_us = journal.records().last().map(|r| r.t_us).unwrap_or(0);
    let mut out = String::new();
    if end_us == 0 {
        out.push_str("(empty journal)\n");
        return out;
    }
    let tracks = tracks(journal);
    let bin = (end_us as f64 / width as f64).max(1.0);

    out.push_str(&format!(
        "timeline: {:.1}s across {} columns ({:.2}s per cell)\n",
        end_us as f64 / 1e6,
        width,
        bin / 1e6
    ));
    out.push_str("legend: digit = channels, + = >9, ! = channel death, · = not started\n\n");

    for (i, tr) in tracks.iter().enumerate() {
        let label = if tr.label.is_empty() {
            format!("chunk {i}")
        } else {
            format!("chunk {i} ({})", tr.label)
        };
        out.push_str(&format!("{label:<22} |"));
        for c in 0..width {
            let lo = (c as f64 * bin) as u64;
            let hi = ((c + 1) as f64 * bin) as u64;
            let started = tr.start_us.map(|t| t < hi).unwrap_or(false);
            let drained = tr.drain_us.map(|t| t <= lo).unwrap_or(false);
            let failed = tr.fails.iter().any(|&t| t >= lo && t < hi);
            let glyph = if failed {
                '!'
            } else if !started {
                '·'
            } else if drained {
                ' '
            } else {
                match tr.count_at(hi.saturating_sub(1)) {
                    n @ 0..=9 => char::from_digit(n, 10).unwrap_or('+'),
                    _ => '+',
                }
            };
            out.push(glyph);
        }
        out.push_str("|\n");
    }
    out
}

/// Renders the controller-decision log: every decision, probe window,
/// commit, reallocation, breaker transition and fault-episode edge, one
/// per line with its simulated timestamp.
pub fn render_decisions(journal: &Journal) -> String {
    let mut out = String::new();
    for r in journal.records() {
        let t = r.t_us as f64 / 1e6;
        let line = match &r.event {
            Event::Decision { reason, targets } => {
                if targets.is_empty() {
                    format!("decision     {reason}")
                } else {
                    format!("decision     {reason} -> targets {targets:?}")
                }
            }
            Event::ProbeWindow {
                level,
                window_s,
                mbps,
                energy_j,
                ratio,
            } => format!(
                "probe        level {level}: {mbps:.1} Mbps, {energy_j:.1} J over {window_s:.1}s (ratio {ratio:.2})"
            ),
            Event::Commit { level, reason } => format!("commit       level {level} ({reason})"),
            Event::Reallocate { targets } => format!("reallocate   targets {targets:?}"),
            Event::Breaker {
                side,
                server,
                state,
            } => format!("breaker      {side}[{server}] -> {state}"),
            Event::FaultEpisode {
                kind,
                side,
                server,
                active,
            } => {
                let edge = if *active { "begins" } else { "ends" };
                match (side, server) {
                    (Some(sd), Some(sv)) => format!("fault        {kind} on {sd}[{sv}] {edge}"),
                    _ => format!("fault        {kind} {edge}"),
                }
            }
            _ => continue,
        };
        out.push_str(&format!("{t:>9.2}s  {line}\n"));
    }
    if out.is_empty() {
        out.push_str("(no controller decisions recorded)\n");
    }
    out
}

/// One-paragraph run summary from the `run_start` / `run_end` records.
pub fn render_summary(journal: &Journal) -> String {
    let mut out = String::new();
    for r in journal.records() {
        match &r.event {
            Event::RunStart {
                algorithm,
                environment,
                seed,
                requested_bytes,
                ..
            } => {
                out.push_str(&format!(
                    "run: {algorithm} on {environment}, seed {seed}, {:.2} GB requested\n",
                    *requested_bytes as f64 / 1e9
                ));
            }
            Event::RunEnd {
                moved_bytes,
                duration_s,
                energy_j,
                completed,
            } => {
                out.push_str(&format!(
                    "end: {:.2} GB in {duration_s:.1}s, {energy_j:.0} J{}\n",
                    *moved_bytes as f64 / 1e9,
                    if *completed { "" } else { " (INCOMPLETE)" }
                ));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    fn sample_journal() -> Journal {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            Event::ChunkStart {
                chunk: 0,
                label: "Small".into(),
                bytes: 100,
                files: 2,
            },
        );
        j.record(
            t(0.0),
            Event::ChannelOpen {
                chunk: 0,
                opened: 2,
                count: 2,
            },
        );
        j.record(
            t(5.0),
            Event::ChannelFail {
                chunk: 0,
                channel: 1,
                cause: "channel".into(),
                src_server: 0,
                dst_server: 0,
            },
        );
        j.record(
            t(6.0),
            Event::Decision {
                reason: "climb to 3".into(),
                targets: vec![3],
            },
        );
        j.record(t(6.0), Event::Reallocate { targets: vec![3] });
        j.record(
            t(6.1),
            Event::ChannelOpen {
                chunk: 0,
                opened: 2,
                count: 3,
            },
        );
        j.record(
            t(10.0),
            Event::ChunkDrain {
                chunk: 0,
                label: "Small".into(),
            },
        );
        j
    }

    #[test]
    fn timeline_shows_counts_and_failures() {
        let text = render_timeline(&sample_journal(), 20);
        assert!(text.contains("chunk 0 (Small)"), "{text}");
        assert!(text.contains('!'), "failure glyph missing: {text}");
        assert!(text.contains('2'), "count glyph missing: {text}");
    }

    #[test]
    fn decision_log_lists_decisions_in_order() {
        let text = render_decisions(&sample_journal());
        let d = text.find("decision").unwrap();
        let r = text.find("reallocate").unwrap();
        assert!(d < r, "{text}");
        assert!(text.contains("climb to 3"), "{text}");
    }

    #[test]
    fn empty_journal_renders_placeholder() {
        let j = Journal::new();
        assert!(render_timeline(&j, 40).contains("empty"));
        assert!(render_decisions(&j).contains("no controller decisions"));
    }
}
