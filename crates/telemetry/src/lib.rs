//! Structured telemetry for EADT transfers.
//!
//! Three pieces, all driven by simulated time and fully deterministic:
//!
//! * [`Journal`] — a typed, timestamped event log ([`Event`]) serialized
//!   as JSON Lines with a stable schema ([`event::SCHEMA_VERSION`]).
//!   Identical seeds produce byte-identical journals.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms;
//!   gauges are sampled on a sim-time cadence into `TimeSeries`.
//! * Trace tooling — [`timeline`] renders per-chunk ASCII timelines and
//!   controller-decision logs; [`chrome`] exports Chrome `trace_event`
//!   JSON for chrome://tracing / Perfetto.
//!
//! The [`Telemetry`] façade is what instrumented code holds. A disabled
//! façade ([`Telemetry::disabled`]) is a pair of `None`s: every hook
//! reduces to one branch and the event closure is never run, so the
//! engine's hot loop pays nothing (the `telemetry_overhead` criterion
//! bench guards this).

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod timeline;

pub use event::{
    BreakerState, EpisodeKind, Event, Journal, JournalRecovery, Record, Side, SCHEMA_VERSION,
};
pub use metrics::{
    CounterId, CounterSnapshot, GaugeId, GaugeSnapshot, Histogram, HistogramId, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};

use eadt_sim::{SimDuration, SimTime};

/// Default gauge-sampling cadence: once per simulated second.
pub const DEFAULT_CADENCE: SimDuration = SimDuration::from_secs(1);

/// The telemetry façade instrumented code records into.
///
/// Both members are optional; [`Telemetry::disabled`] costs one `None`
/// check per hook and never evaluates event-constructing closures.
#[derive(Default)]
pub struct Telemetry {
    journal: Option<Journal>,
    metrics: Option<MetricsRegistry>,
}

impl Telemetry {
    /// A no-op sink: nothing is recorded, hooks cost one branch.
    pub fn disabled() -> Self {
        Telemetry {
            journal: None,
            metrics: None,
        }
    }

    /// Full telemetry: event journal plus metrics sampled every
    /// `cadence`.
    pub fn enabled(cadence: SimDuration) -> Self {
        Telemetry {
            journal: Some(Journal::new()),
            metrics: Some(MetricsRegistry::new(cadence)),
        }
    }

    /// Journal only (no metrics sampling).
    pub fn with_journal() -> Self {
        Telemetry {
            journal: Some(Journal::new()),
            metrics: None,
        }
    }

    /// Reassembles a façade from restored sinks (checkpoint resume): a
    /// journal continuing at a given sequence cursor and/or a metrics
    /// registry rebuilt from its snapshot.
    pub fn from_parts(journal: Option<Journal>, metrics: Option<MetricsRegistry>) -> Self {
        Telemetry { journal, metrics }
    }

    /// True when any sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.journal.is_some() || self.metrics.is_some()
    }

    /// True when events are being journaled.
    #[inline]
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Records an already-built event (use [`Telemetry::record_with`]
    /// when building the event allocates).
    #[inline]
    pub fn record(&mut self, t: SimTime, event: Event) {
        if let Some(j) = &mut self.journal {
            j.record(t, event);
        }
    }

    /// Records the event produced by `make` — which is never called when
    /// journaling is off, so allocation-heavy events (labels, reasons)
    /// are free in the disabled configuration.
    #[inline]
    pub fn record_with(&mut self, t: SimTime, make: impl FnOnce() -> Event) {
        if let Some(j) = &mut self.journal {
            j.record(t, make());
        }
    }

    /// The metrics registry, when sampling is on.
    #[inline]
    pub fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_mut()
    }

    /// Read-only view of the metrics registry.
    pub fn metrics_ref(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Read-only view of the journal.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Consumes the façade, yielding the journal.
    pub fn into_journal(self) -> Option<Journal> {
        self.journal
    }

    /// Consumes the façade, yielding both sinks.
    pub fn into_parts(self) -> (Option<Journal>, Option<MetricsRegistry>) {
        (self.journal, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_never_builds_events() {
        let mut tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.record_with(SimTime::ZERO, || {
            panic!("event closure must not run when disabled")
        });
        assert!(tel.journal().is_none());
        assert!(tel.metrics().is_none());
    }

    #[test]
    fn enabled_telemetry_journals_and_samples() {
        let mut tel = Telemetry::enabled(DEFAULT_CADENCE);
        assert!(tel.is_enabled());
        tel.record(SimTime::ZERO, Event::StageStart { stage: 0 });
        let m = tel.metrics().unwrap();
        let g = m.gauge("thr");
        m.set(g, 1.5);
        assert!(m.tick(SimTime::ZERO));
        let (journal, metrics) = tel.into_parts();
        assert_eq!(journal.unwrap().len(), 1);
        assert_eq!(metrics.unwrap().gauge_series(g).len(), 1);
    }
}
