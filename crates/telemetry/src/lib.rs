//! Structured telemetry for EADT transfers.
//!
//! Three pieces, all driven by simulated time and fully deterministic:
//!
//! * [`Journal`] — a typed, timestamped event log ([`Event`]) serialized
//!   as JSON Lines with a stable schema ([`event::SCHEMA_VERSION`]).
//!   Identical seeds produce byte-identical journals.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms;
//!   gauges are sampled on a sim-time cadence into `TimeSeries`.
//! * Trace tooling — [`timeline`] renders per-chunk ASCII timelines and
//!   controller-decision logs; [`chrome`] exports Chrome `trace_event`
//!   JSON for chrome://tracing / Perfetto.
//!
//! The [`Telemetry`] façade is what instrumented code holds. A disabled
//! façade ([`Telemetry::disabled`]) is a pair of `None`s: every hook
//! reduces to one branch and the event closure is never run, so the
//! engine's hot loop pays nothing (the `telemetry_overhead` criterion
//! bench guards this).

pub mod chrome;
pub mod event;
pub mod ledger;
pub mod metrics;
pub mod timeline;

pub use event::{
    BreakerState, EpisodeKind, Event, Journal, JournalRecovery, Record, Side, SCHEMA_VERSION,
};
pub use ledger::{EnergyLedger, EnergyPhase, SideLedger};
pub use metrics::{
    CounterId, CounterSnapshot, GaugeId, GaugeSnapshot, Histogram, HistogramId, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};

use eadt_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One still-open causal span: enough state to close it later (or after
/// a checkpoint/resume — the engine checkpoints the façade's open-span
/// stack so span ids keep matching across a restore).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanCursor {
    /// Deterministic span id (`1 + seq` of the begin record).
    pub id: u64,
    /// Span kind, e.g. `"probe"`, `"horizon"`, `"retry"`.
    pub kind: String,
    /// Free-form detail carried from the begin event.
    #[serde(default)]
    pub detail: String,
}

/// Default gauge-sampling cadence: once per simulated second.
pub const DEFAULT_CADENCE: SimDuration = SimDuration::from_secs(1);

/// The telemetry façade instrumented code records into.
///
/// Both members are optional; [`Telemetry::disabled`] costs one `None`
/// check per hook and never evaluates event-constructing closures.
#[derive(Default)]
pub struct Telemetry {
    journal: Option<Journal>,
    metrics: Option<MetricsRegistry>,
    /// Innermost-last stack of open causal spans. Only maintained while
    /// journaling; it is what makes span ids and parent links
    /// deterministic (ids derive from journal seq numbers).
    open_spans: Vec<SpanCursor>,
}

impl Telemetry {
    /// A no-op sink: nothing is recorded, hooks cost one branch.
    pub fn disabled() -> Self {
        Telemetry {
            journal: None,
            metrics: None,
            open_spans: Vec::new(),
        }
    }

    /// Full telemetry: event journal plus metrics sampled every
    /// `cadence`.
    pub fn enabled(cadence: SimDuration) -> Self {
        Telemetry {
            journal: Some(Journal::new()),
            metrics: Some(MetricsRegistry::new(cadence)),
            open_spans: Vec::new(),
        }
    }

    /// Journal only (no metrics sampling).
    pub fn with_journal() -> Self {
        Telemetry {
            journal: Some(Journal::new()),
            metrics: None,
            open_spans: Vec::new(),
        }
    }

    /// Reassembles a façade from restored sinks (checkpoint resume): a
    /// journal continuing at a given sequence cursor and/or a metrics
    /// registry rebuilt from its snapshot. Restore the open-span stack
    /// separately with [`Telemetry::set_open_spans`].
    pub fn from_parts(journal: Option<Journal>, metrics: Option<MetricsRegistry>) -> Self {
        Telemetry {
            journal,
            metrics,
            open_spans: Vec::new(),
        }
    }

    /// True when any sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.journal.is_some() || self.metrics.is_some()
    }

    /// True when events are being journaled.
    #[inline]
    pub fn journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Records an already-built event (use [`Telemetry::record_with`]
    /// when building the event allocates). Span events pass through the
    /// id-assignment interceptor: a [`Event::SpanBegin`] with `id == 0`
    /// is given the deterministic id `1 + seq` of its own record and its
    /// `parent` is filled with the innermost open span; a
    /// [`Event::SpanEnd`] with `id == 0` closes the innermost open span
    /// of the same kind (and detail, when the end names one).
    #[inline]
    pub fn record(&mut self, t: SimTime, event: Event) {
        if self.journal.is_some() {
            self.record_span_aware(t, event);
        }
    }

    /// Records the event produced by `make` — which is never called when
    /// journaling is off, so allocation-heavy events (labels, reasons)
    /// are free in the disabled configuration.
    #[inline]
    pub fn record_with(&mut self, t: SimTime, make: impl FnOnce() -> Event) {
        if self.journal.is_some() {
            let event = make();
            self.record_span_aware(t, event);
        }
    }

    /// The journaling path: intercepts span begin/end events to assign
    /// deterministic ids and maintain the open-span stack, then appends
    /// the (possibly rewritten) event to the journal.
    fn record_span_aware(&mut self, t: SimTime, mut event: Event) {
        let Some(j) = &mut self.journal else { return };
        match &mut event {
            Event::SpanBegin {
                id,
                parent,
                kind,
                detail,
            } => {
                if *id == 0 {
                    *id = j.next_seq() + 1;
                }
                if *parent == 0 {
                    *parent = self.open_spans.last().map_or(0, |s| s.id);
                }
                self.open_spans.push(SpanCursor {
                    id: *id,
                    kind: kind.clone(),
                    detail: detail.clone(),
                });
            }
            Event::SpanEnd { id, kind, detail } => {
                if *id == 0 {
                    let found = self.open_spans.iter().rposition(|s| {
                        s.kind == *kind && (detail.is_empty() || s.detail == *detail)
                    });
                    if let Some(pos) = found {
                        let cursor = self.open_spans.remove(pos);
                        *id = cursor.id;
                        if detail.is_empty() {
                            *detail = cursor.detail;
                        }
                    }
                } else if let Some(pos) = self.open_spans.iter().rposition(|s| s.id == *id) {
                    self.open_spans.remove(pos);
                }
            }
            _ => {}
        }
        j.record(t, event);
    }

    /// The open-span stack, innermost last (checkpointing support).
    pub fn open_spans(&self) -> &[SpanCursor] {
        &self.open_spans
    }

    /// Restores the open-span stack (checkpoint resume).
    pub fn set_open_spans(&mut self, spans: Vec<SpanCursor>) {
        self.open_spans = spans;
    }

    /// The metrics registry, when sampling is on.
    #[inline]
    pub fn metrics(&mut self) -> Option<&mut MetricsRegistry> {
        self.metrics.as_mut()
    }

    /// Read-only view of the metrics registry.
    pub fn metrics_ref(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Read-only view of the journal.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Consumes the façade, yielding the journal.
    pub fn into_journal(self) -> Option<Journal> {
        self.journal
    }

    /// Consumes the façade, yielding both sinks.
    pub fn into_parts(self) -> (Option<Journal>, Option<MetricsRegistry>) {
        (self.journal, self.metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_never_builds_events() {
        let mut tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.record_with(SimTime::ZERO, || {
            panic!("event closure must not run when disabled")
        });
        assert!(tel.journal().is_none());
        assert!(tel.metrics().is_none());
    }

    #[test]
    fn enabled_telemetry_journals_and_samples() {
        let mut tel = Telemetry::enabled(DEFAULT_CADENCE);
        assert!(tel.is_enabled());
        tel.record(SimTime::ZERO, Event::StageStart { stage: 0 });
        let m = tel.metrics().unwrap();
        let g = m.gauge("thr");
        m.set(g, 1.5);
        assert!(m.tick(SimTime::ZERO));
        let (journal, metrics) = tel.into_parts();
        assert_eq!(journal.unwrap().len(), 1);
        assert_eq!(metrics.unwrap().gauge_series(g).len(), 1);
    }

    fn begin(kind: &str, detail: &str) -> Event {
        Event::SpanBegin {
            id: 0,
            parent: 0,
            kind: kind.into(),
            detail: detail.into(),
        }
    }

    fn end(kind: &str, detail: &str) -> Event {
        Event::SpanEnd {
            id: 0,
            kind: kind.into(),
            detail: detail.into(),
        }
    }

    #[test]
    fn span_ids_derive_from_seq_and_nest() {
        let mut tel = Telemetry::with_journal();
        tel.record(SimTime::ZERO, Event::StageStart { stage: 0 }); // seq 0
        tel.record(SimTime::ZERO, begin("probe", "level 1")); // seq 1 → id 2
        tel.record(SimTime::ZERO, begin("retry", "src[0]")); // seq 2 → id 3
        assert_eq!(
            tel.open_spans()
                .iter()
                .map(|s| (s.id, s.kind.as_str()))
                .collect::<Vec<_>>(),
            vec![(2, "probe"), (3, "retry")]
        );
        tel.record(SimTime::ZERO, end("retry", "src[0]"));
        tel.record(SimTime::ZERO, end("probe", "")); // empty detail: innermost probe
        assert!(tel.open_spans().is_empty());
        let journal = tel.into_journal().unwrap();
        let ids: Vec<(u64, u64)> = journal
            .records()
            .iter()
            .filter_map(|r| match &r.event {
                Event::SpanBegin { id, parent, .. } => Some((*id, *parent)),
                _ => None,
            })
            .collect();
        // probe is a root span; retry nests under it.
        assert_eq!(ids, vec![(2, 0), (3, 2)]);
        let ends: Vec<(u64, String)> = journal
            .records()
            .iter()
            .filter_map(|r| match &r.event {
                Event::SpanEnd { id, detail, .. } => Some((*id, detail.clone())),
                _ => None,
            })
            .collect();
        // The empty-detail end inherited the begin's detail.
        assert_eq!(ends, vec![(3, "src[0]".into()), (2, "level 1".into())]);
    }

    #[test]
    fn span_end_matches_by_detail_among_same_kind() {
        let mut tel = Telemetry::with_journal();
        tel.record(SimTime::ZERO, begin("retry", "src[0]")); // id 1
        tel.record(SimTime::ZERO, begin("retry", "dst[2]")); // id 2
        tel.record(SimTime::ZERO, end("retry", "src[0]")); // closes id 1, not innermost
        assert_eq!(tel.open_spans().len(), 1);
        assert_eq!(tel.open_spans()[0].detail, "dst[2]");
        // Unmatched end records with id 0 and leaves the stack alone.
        tel.record(SimTime::ZERO, end("horizon", ""));
        assert_eq!(tel.open_spans().len(), 1);
        let journal = tel.into_journal().unwrap();
        let last = journal.records().last().unwrap();
        assert!(matches!(last.event, Event::SpanEnd { id: 0, .. }));
    }

    #[test]
    fn open_spans_round_trip_through_parts() {
        let mut tel = Telemetry::with_journal();
        tel.record(SimTime::ZERO, begin("horizon", "controller+40"));
        let saved: Vec<SpanCursor> = tel.open_spans().to_vec();
        let (journal, metrics) = tel.into_parts();
        let mut resumed = Telemetry::from_parts(journal, metrics);
        assert!(resumed.open_spans().is_empty());
        resumed.set_open_spans(saved);
        resumed.record(SimTime::ZERO, end("horizon", ""));
        assert!(resumed.open_spans().is_empty());
        let journal = resumed.into_journal().unwrap();
        let last = journal.records().last().unwrap();
        assert!(
            matches!(&last.event, Event::SpanEnd { id: 1, detail, .. } if detail == "controller+40")
        );
    }
}
