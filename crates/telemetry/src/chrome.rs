//! Chrome `trace_event` export: renders a journal as the JSON object
//! format understood by chrome://tracing and Perfetto.
//!
//! Mapping:
//! * chunks become complete slices (`ph:"X"`) on one thread row each;
//! * causal spans (`span_begin`/`span_end`) become complete slices on
//!   per-kind thread rows (overlapping same-kind spans spill into
//!   adjacent lanes), with id/parent/detail under `args`;
//! * channel failures, retries, decisions, probe windows, commits,
//!   breaker transitions and fault-episode edges become instant events
//!   (`ph:"i"`) with their payload under `args`;
//! * periodic `sample` records become counter tracks (`ph:"C"`) for
//!   throughput, power, concurrency and backoff occupancy.
//!
//! Timestamps are simulated microseconds, which is exactly the unit
//! `trace_event` expects in `ts`/`dur`.

use crate::event::{write_json_f64, write_json_str, Event, Journal};
use std::fmt::Write as _;

/// Thread row that carries instant (non-chunk) events.
const CONTROL_TID: u32 = 1000;

/// First thread row assigned to causal spans; each span kind gets a
/// stride of [`SPAN_LANE_STRIDE`] lanes for overlapping spans.
const SPAN_TID_BASE: u32 = 2000;
const SPAN_LANE_STRIDE: u32 = 100;

/// One open causal span while scanning the journal.
struct OpenSpan {
    id: u64,
    parent: u64,
    kind_row: u32,
    lane: u32,
    detail: String,
    start: u64,
}

/// Emits one completed span slice.
fn push_span(s: &mut String, kind: &str, span: &OpenSpan, end_us: u64) {
    push_common(
        s,
        kind,
        'X',
        span.start,
        SPAN_TID_BASE + span.kind_row * SPAN_LANE_STRIDE + span.lane,
    );
    let _ = write!(
        s,
        ",\"dur\":{},\"args\":{{\"id\":{},\"parent\":{},\"detail\":",
        end_us.saturating_sub(span.start),
        span.id,
        span.parent
    );
    write_json_str(s, &span.detail);
    s.push_str("}}");
}

fn push_common(s: &mut String, name: &str, ph: char, ts: u64, tid: u32) {
    s.push_str("{\"name\":");
    write_json_str(s, name);
    let _ = write!(s, ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}");
}

/// Renders the journal as a `trace_event` JSON object
/// (`{"traceEvents":[...]}`). Output is byte-deterministic for identical
/// journals.
pub fn to_chrome_trace(journal: &Journal) -> String {
    let mut s = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |s: &mut String| {
        if !std::mem::take(&mut first) {
            s.push(',');
        }
    };

    // Open chunk slices are tracked so ChunkDrain can close them; chunks
    // never draining are closed at the journal end.
    let end_us = journal.records().last().map(|r| r.t_us).unwrap_or(0);
    let mut open: Vec<(u32, String, u64)> = Vec::new();

    // Span kinds in first-appearance order (one row group each) and the
    // currently open spans; unmatched spans flush at the journal end.
    let mut span_kinds: Vec<String> = Vec::new();
    let mut open_spans: Vec<OpenSpan> = Vec::new();

    for r in journal.records() {
        let ts = r.t_us;
        match &r.event {
            Event::SpanBegin {
                id,
                parent,
                kind,
                detail,
            } => {
                let kind_row = match span_kinds.iter().position(|k| k == kind) {
                    Some(i) => i as u32,
                    None => {
                        span_kinds.push(kind.clone());
                        (span_kinds.len() - 1) as u32
                    }
                };
                // Lowest lane free among open spans of the same kind.
                let mut lane = 0;
                while open_spans
                    .iter()
                    .any(|o| o.kind_row == kind_row && o.lane == lane)
                {
                    lane += 1;
                }
                open_spans.push(OpenSpan {
                    id: *id,
                    parent: *parent,
                    kind_row,
                    lane,
                    detail: detail.clone(),
                    start: ts,
                });
            }
            Event::SpanEnd { id, kind, .. } => {
                let pos = if *id != 0 {
                    open_spans.iter().rposition(|o| o.id == *id)
                } else {
                    open_spans
                        .iter()
                        .rposition(|o| span_kinds[o.kind_row as usize] == *kind)
                };
                if let Some(i) = pos {
                    let span = open_spans.remove(i);
                    sep(&mut s);
                    push_span(&mut s, &span_kinds[span.kind_row as usize], &span, ts);
                }
            }
            Event::ChunkStart { chunk, label, .. } => {
                open.push((*chunk, label.clone(), ts));
            }
            Event::ChunkDrain { chunk, .. } => {
                if let Some(i) = open.iter().position(|(c, _, _)| c == chunk) {
                    let (c, label, start) = open.swap_remove(i);
                    sep(&mut s);
                    push_common(&mut s, &label, 'X', start, c);
                    let _ = write!(s, ",\"dur\":{}}}", ts - start);
                }
            }
            Event::ChannelFail {
                chunk,
                channel,
                cause,
                ..
            } => {
                sep(&mut s);
                push_common(&mut s, "channel_fail", 'i', ts, *chunk);
                s.push_str(",\"s\":\"t\",\"args\":{\"channel\":");
                let _ = write!(s, "{channel},\"cause\":");
                write_json_str(&mut s, cause);
                s.push_str("}}");
            }
            Event::ChannelRetry {
                chunk,
                channel,
                delay_us,
                exhausted,
                ..
            } => {
                sep(&mut s);
                push_common(&mut s, "channel_retry", 'i', ts, *chunk);
                let _ = write!(
                    s,
                    ",\"s\":\"t\",\"args\":{{\"channel\":{channel},\"delay_us\":{delay_us},\
                     \"exhausted\":{exhausted}}}}}"
                );
            }
            Event::Decision { reason, .. } => {
                sep(&mut s);
                push_common(&mut s, "decision", 'i', ts, CONTROL_TID);
                s.push_str(",\"s\":\"p\",\"args\":{\"reason\":");
                write_json_str(&mut s, reason);
                s.push_str("}}");
            }
            Event::ProbeWindow {
                level, mbps, ratio, ..
            } => {
                sep(&mut s);
                push_common(&mut s, "probe_window", 'i', ts, CONTROL_TID);
                let _ = write!(s, ",\"s\":\"p\",\"args\":{{\"level\":{level},\"mbps\":");
                write_json_f64(&mut s, *mbps);
                s.push_str(",\"ratio\":");
                write_json_f64(&mut s, *ratio);
                s.push_str("}}");
            }
            Event::Commit { level, reason } => {
                sep(&mut s);
                push_common(&mut s, "commit", 'i', ts, CONTROL_TID);
                let _ = write!(s, ",\"s\":\"p\",\"args\":{{\"level\":{level},\"reason\":");
                write_json_str(&mut s, reason);
                s.push_str("}}");
            }
            Event::Breaker {
                side,
                server,
                state,
            } => {
                sep(&mut s);
                push_common(&mut s, "breaker", 'i', ts, CONTROL_TID);
                let _ = write!(
                    s,
                    ",\"s\":\"p\",\"args\":{{\"server\":\"{}[{server}]\",\"state\":\"{}\"}}}}",
                    side.as_str(),
                    state.as_str()
                );
            }
            Event::FaultEpisode { kind, active, .. } => {
                sep(&mut s);
                push_common(&mut s, "fault_episode", 'i', ts, CONTROL_TID);
                let _ = write!(
                    s,
                    ",\"s\":\"p\",\"args\":{{\"kind\":\"{}\",\"active\":{active}}}}}",
                    kind.as_str()
                );
            }
            Event::Sample {
                throughput_mbps,
                power_w,
                concurrency,
                in_backoff,
                ..
            } => {
                sep(&mut s);
                push_common(&mut s, "throughput_mbps", 'C', ts, 0);
                s.push_str(",\"args\":{\"value\":");
                write_json_f64(&mut s, *throughput_mbps);
                s.push_str("}}");
                sep(&mut s);
                push_common(&mut s, "power_w", 'C', ts, 0);
                s.push_str(",\"args\":{\"value\":");
                write_json_f64(&mut s, *power_w);
                s.push_str("}}");
                sep(&mut s);
                push_common(&mut s, "channels", 'C', ts, 0);
                let _ = write!(
                    s,
                    ",\"args\":{{\"active\":{concurrency},\"in_backoff\":{in_backoff}}}}}"
                );
            }
            _ => {}
        }
    }

    // Close any chunk that never drained (incomplete run).
    open.sort_by_key(|&(c, _, _)| c);
    for (c, label, start) in open {
        sep(&mut s);
        push_common(&mut s, &label, 'X', start, c);
        let _ = write!(s, ",\"dur\":{}}}", end_us.saturating_sub(start));
    }

    // Flush spans that never ended (halted run): close them at journal
    // end, innermost-open last so nesting still renders.
    for span in &open_spans {
        sep(&mut s);
        push_span(&mut s, &span_kinds[span.kind_row as usize], span, end_us);
    }

    s.push_str("],\"displayTimeUnit\":\"ms\"}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn chrome_trace_is_valid_json_with_slices_and_counters() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            Event::ChunkStart {
                chunk: 0,
                label: "Huge".into(),
                bytes: 1,
                files: 1,
            },
        );
        j.record(
            t(1.0),
            Event::Sample {
                throughput_mbps: 100.0,
                power_w: 200.0,
                concurrency: 2,
                in_backoff: 0,
                queue_depth: 3,
            },
        );
        j.record(
            t(2.0),
            Event::ChunkDrain {
                chunk: 0,
                label: "Huge".into(),
            },
        );
        let text = to_chrome_trace(&j);
        let v = serde::value::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4, "{text}");
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("complete slice present");
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(2_000_000));
        assert!(text.contains("\"throughput_mbps\""), "{text}");
    }

    #[test]
    fn spans_render_as_nested_slices_with_lanes() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            Event::SpanBegin {
                id: 1,
                parent: 0,
                kind: "probe".into(),
                detail: "level 1".into(),
            },
        );
        j.record(
            t(0.5),
            Event::SpanBegin {
                id: 2,
                parent: 1,
                kind: "retry".into(),
                detail: "src[0]".into(),
            },
        );
        // A second retry overlapping the first gets its own lane.
        j.record(
            t(0.6),
            Event::SpanBegin {
                id: 3,
                parent: 1,
                kind: "retry".into(),
                detail: "dst[1]".into(),
            },
        );
        j.record(
            t(1.0),
            Event::SpanEnd {
                id: 2,
                kind: "retry".into(),
                detail: "src[0]".into(),
            },
        );
        j.record(
            t(2.0),
            Event::SpanEnd {
                id: 1,
                kind: "probe".into(),
                detail: String::new(),
            },
        );
        // Span 3 never ends: flushed at journal end.
        let text = to_chrome_trace(&j);
        let v = serde::value::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let slices: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(slices.len(), 3, "{text}");
        let tid_of = |id: u64| {
            slices
                .iter()
                .find(|e| {
                    e.get("args")
                        .and_then(|a| a.get("id"))
                        .and_then(|v| v.as_u64())
                        == Some(id)
                })
                .and_then(|e| e.get("tid"))
                .and_then(|v| v.as_u64())
                .unwrap()
        };
        // probe is row 0; the two retries share row 1 but distinct lanes.
        assert_eq!(tid_of(1), 2000);
        assert_eq!(tid_of(2), 2100);
        assert_eq!(tid_of(3), 2101);
        // Parent links survive into args.
        assert!(text.contains("\"parent\":1"), "{text}");
        // The unmatched retry closes at journal end (t=2s, began 0.6s).
        assert!(text.contains("\"dur\":1400000"), "{text}");
    }

    #[test]
    fn unclosed_chunks_are_flushed_at_journal_end() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            Event::ChunkStart {
                chunk: 3,
                label: "Open".into(),
                bytes: 1,
                files: 1,
            },
        );
        j.record(t(5.0), Event::StageStart { stage: 1 });
        let text = to_chrome_trace(&j);
        assert!(text.contains("\"dur\":5000000"), "{text}");
    }
}
