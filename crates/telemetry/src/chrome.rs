//! Chrome `trace_event` export: renders a journal as the JSON object
//! format understood by chrome://tracing and Perfetto.
//!
//! Mapping:
//! * chunks become complete slices (`ph:"X"`) on one thread row each;
//! * channel failures, retries, decisions, probe windows, commits,
//!   breaker transitions and fault-episode edges become instant events
//!   (`ph:"i"`) with their payload under `args`;
//! * periodic `sample` records become counter tracks (`ph:"C"`) for
//!   throughput, power, concurrency and backoff occupancy.
//!
//! Timestamps are simulated microseconds, which is exactly the unit
//! `trace_event` expects in `ts`/`dur`.

use crate::event::{write_json_f64, write_json_str, Event, Journal};
use std::fmt::Write as _;

/// Thread row that carries instant (non-chunk) events.
const CONTROL_TID: u32 = 1000;

fn push_common(s: &mut String, name: &str, ph: char, ts: u64, tid: u32) {
    s.push_str("{\"name\":");
    write_json_str(s, name);
    let _ = write!(s, ",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}");
}

/// Renders the journal as a `trace_event` JSON object
/// (`{"traceEvents":[...]}`). Output is byte-deterministic for identical
/// journals.
pub fn to_chrome_trace(journal: &Journal) -> String {
    let mut s = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |s: &mut String| {
        if !std::mem::take(&mut first) {
            s.push(',');
        }
    };

    // Open chunk slices are tracked so ChunkDrain can close them; chunks
    // never draining are closed at the journal end.
    let end_us = journal.records().last().map(|r| r.t_us).unwrap_or(0);
    let mut open: Vec<(u32, String, u64)> = Vec::new();

    for r in journal.records() {
        let ts = r.t_us;
        match &r.event {
            Event::ChunkStart { chunk, label, .. } => {
                open.push((*chunk, label.clone(), ts));
            }
            Event::ChunkDrain { chunk, .. } => {
                if let Some(i) = open.iter().position(|(c, _, _)| c == chunk) {
                    let (c, label, start) = open.swap_remove(i);
                    sep(&mut s);
                    push_common(&mut s, &label, 'X', start, c);
                    let _ = write!(s, ",\"dur\":{}}}", ts - start);
                }
            }
            Event::ChannelFail {
                chunk,
                channel,
                cause,
                ..
            } => {
                sep(&mut s);
                push_common(&mut s, "channel_fail", 'i', ts, *chunk);
                s.push_str(",\"s\":\"t\",\"args\":{\"channel\":");
                let _ = write!(s, "{channel},\"cause\":");
                write_json_str(&mut s, cause);
                s.push_str("}}");
            }
            Event::ChannelRetry {
                chunk,
                channel,
                delay_us,
                exhausted,
                ..
            } => {
                sep(&mut s);
                push_common(&mut s, "channel_retry", 'i', ts, *chunk);
                let _ = write!(
                    s,
                    ",\"s\":\"t\",\"args\":{{\"channel\":{channel},\"delay_us\":{delay_us},\
                     \"exhausted\":{exhausted}}}}}"
                );
            }
            Event::Decision { reason, .. } => {
                sep(&mut s);
                push_common(&mut s, "decision", 'i', ts, CONTROL_TID);
                s.push_str(",\"s\":\"p\",\"args\":{\"reason\":");
                write_json_str(&mut s, reason);
                s.push_str("}}");
            }
            Event::ProbeWindow {
                level, mbps, ratio, ..
            } => {
                sep(&mut s);
                push_common(&mut s, "probe_window", 'i', ts, CONTROL_TID);
                let _ = write!(s, ",\"s\":\"p\",\"args\":{{\"level\":{level},\"mbps\":");
                write_json_f64(&mut s, *mbps);
                s.push_str(",\"ratio\":");
                write_json_f64(&mut s, *ratio);
                s.push_str("}}");
            }
            Event::Commit { level, reason } => {
                sep(&mut s);
                push_common(&mut s, "commit", 'i', ts, CONTROL_TID);
                let _ = write!(s, ",\"s\":\"p\",\"args\":{{\"level\":{level},\"reason\":");
                write_json_str(&mut s, reason);
                s.push_str("}}");
            }
            Event::Breaker {
                side,
                server,
                state,
            } => {
                sep(&mut s);
                push_common(&mut s, "breaker", 'i', ts, CONTROL_TID);
                let _ = write!(
                    s,
                    ",\"s\":\"p\",\"args\":{{\"server\":\"{}[{server}]\",\"state\":\"{}\"}}}}",
                    side.as_str(),
                    state.as_str()
                );
            }
            Event::FaultEpisode { kind, active, .. } => {
                sep(&mut s);
                push_common(&mut s, "fault_episode", 'i', ts, CONTROL_TID);
                let _ = write!(
                    s,
                    ",\"s\":\"p\",\"args\":{{\"kind\":\"{}\",\"active\":{active}}}}}",
                    kind.as_str()
                );
            }
            Event::Sample {
                throughput_mbps,
                power_w,
                concurrency,
                in_backoff,
                ..
            } => {
                sep(&mut s);
                push_common(&mut s, "throughput_mbps", 'C', ts, 0);
                s.push_str(",\"args\":{\"value\":");
                write_json_f64(&mut s, *throughput_mbps);
                s.push_str("}}");
                sep(&mut s);
                push_common(&mut s, "power_w", 'C', ts, 0);
                s.push_str(",\"args\":{\"value\":");
                write_json_f64(&mut s, *power_w);
                s.push_str("}}");
                sep(&mut s);
                push_common(&mut s, "channels", 'C', ts, 0);
                let _ = write!(
                    s,
                    ",\"args\":{{\"active\":{concurrency},\"in_backoff\":{in_backoff}}}}}"
                );
            }
            _ => {}
        }
    }

    // Close any chunk that never drained (incomplete run).
    open.sort_by_key(|&(c, _, _)| c);
    for (c, label, start) in open {
        sep(&mut s);
        push_common(&mut s, &label, 'X', start, c);
        let _ = write!(s, ",\"dur\":{}}}", end_us.saturating_sub(start));
    }

    s.push_str("],\"displayTimeUnit\":\"ms\"}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn chrome_trace_is_valid_json_with_slices_and_counters() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            Event::ChunkStart {
                chunk: 0,
                label: "Huge".into(),
                bytes: 1,
                files: 1,
            },
        );
        j.record(
            t(1.0),
            Event::Sample {
                throughput_mbps: 100.0,
                power_w: 200.0,
                concurrency: 2,
                in_backoff: 0,
                queue_depth: 3,
            },
        );
        j.record(
            t(2.0),
            Event::ChunkDrain {
                chunk: 0,
                label: "Huge".into(),
            },
        );
        let text = to_chrome_trace(&j);
        let v = serde::value::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4, "{text}");
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("complete slice present");
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(2_000_000));
        assert!(text.contains("\"throughput_mbps\""), "{text}");
    }

    #[test]
    fn unclosed_chunks_are_flushed_at_journal_end() {
        let mut j = Journal::new();
        j.record(
            t(0.0),
            Event::ChunkStart {
                chunk: 3,
                label: "Open".into(),
                bytes: 1,
                files: 1,
            },
        );
        j.record(t(5.0), Event::StageStart { stage: 1 });
        let text = to_chrome_trace(&j);
        assert!(text.contains("\"dur\":5000000"), "{text}");
    }
}
