//! The kill-point chaos suite (ISSUE 6 acceptance): for every sampled
//! interrupt point — a uniform slice grid plus the adversarial instants
//! mined from the baseline journal (mid-outage, mid-backoff, inside a
//! macro-stepped horizon, between HTEE probe and commit) — the resumed
//! run's report JSON, telemetry journal and metrics are byte-identical
//! to the uninterrupted run, across 3 algorithms × 2 testbeds × 2 fault
//! regimes.

use eadt_ckpt::{
    adversarial_kill_points, assert_kill_equivalence, every_nth, Baseline, ChaosDriver, CrashWrite,
};
use eadt_core::prelude::*;
use eadt_dataset::Dataset;
use eadt_sim::{Rate, SimDuration};
use eadt_telemetry::Telemetry;
use eadt_testbeds::Environment;
use eadt_transfer::{
    FaultModel, FaultPlan, OutageModel, RunControl, RunOutcome, SiteSide, StallModel, TransferEnv,
};

const CADENCE: SimDuration = SimDuration::from_millis(500);
const SEED: u64 = 11;

/// The two fault regimes of the acceptance matrix.
#[derive(Clone, Copy, PartialEq)]
enum Regime {
    Clean,
    Faulty,
}

impl Regime {
    fn apply(self, env: &mut TransferEnv) {
        match self {
            Regime::Clean => env.faults = None,
            Regime::Faulty => {
                // Channel failures tight enough to trigger retries and
                // backoffs, plus outage and stall episodes so the
                // adversarial miner finds mid-episode boundaries.
                env.faults = Some(
                    FaultPlan::channel_only(FaultModel::new(SimDuration::from_secs(8), 7))
                        .with_outage(OutageModel::new(
                            SiteSide::Src,
                            0,
                            SimDuration::from_secs(6),
                            SimDuration::from_secs(2),
                            13,
                        ))
                        .with_stall(StallModel::new(
                            SimDuration::from_secs(7),
                            SimDuration::from_secs(1),
                            6.0,
                            17,
                        )),
                );
            }
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Regime::Clean => "clean",
            Regime::Faulty => "faulty",
        }
    }
}

fn testbeds() -> Vec<Environment> {
    vec![eadt_testbeds::didclab(), eadt_testbeds::xsede()]
}

fn case_env(tb: &Environment, regime: Regime) -> (TransferEnv, Dataset) {
    let mut env = tb.env.clone();
    regime.apply(&mut env);
    let dataset = tb.dataset_spec.scaled(0.01).generate(SEED);
    (env, dataset)
}

fn algorithms(tb: &Environment, regime: Regime) -> Vec<(&'static str, Box<dyn Algorithm>)> {
    let fault_aware = regime == Regime::Faulty;
    vec![
        (
            "mine",
            Box::new(MinE {
                partition: tb.partition,
                ..MinE::new(8)
            }),
        ),
        (
            "htee",
            Box::new(Htee {
                partition: tb.partition,
                fault_aware,
                ..Htee::new(8)
            }),
        ),
        (
            "slaee",
            Box::new(Slaee {
                partition: tb.partition,
                fault_aware,
                ..Slaee::new(0.8, Rate::from_mbps(600.0), 8)
            }),
        ),
    ]
}

fn driver<'a>(
    algo: &'a dyn Algorithm,
    env: &'a TransferEnv,
    dataset: &'a Dataset,
) -> ChaosDriver<impl Fn(&mut Telemetry, RunControl) -> RunOutcome + 'a> {
    ChaosDriver::new(
        move |tel: &mut Telemetry, ctl: RunControl| {
            let mut ctx = RunCtx::with_telemetry(env, dataset, tel);
            algo.run_controlled(&mut ctx, ctl)
        },
        CADENCE,
    )
}

/// Uniform kill grid for every cell of the acceptance matrix, with the
/// clean crash-write shape.
#[test]
fn uniform_kill_grid_is_recoverable_across_the_matrix() {
    for tb in &testbeds() {
        for regime in [Regime::Clean, Regime::Faulty] {
            let (env, dataset) = case_env(tb, regime);
            for (name, algo) in algorithms(tb, regime) {
                let context = format!("{name}/{}/{}", tb.name, regime.tag());
                let d = driver(algo.as_ref(), &env, &dataset);
                let baseline = d.baseline(env.tuning.slice);
                assert!(baseline.slices > 4, "{context}: run too short to kill");
                let step = (baseline.slices / 4).max(1);
                let mut killed = 0u32;
                for kill in every_nth(baseline.slices, step) {
                    if assert_kill_equivalence(&d, &baseline, kill, CrashWrite::Clean, &context) {
                        killed += 1;
                    }
                }
                assert!(killed >= 3, "{context}: only {killed} kill points landed");
            }
        }
    }
}

/// Adversarial kill points (mined from the journal) with crashed-appender
/// tail shapes: events written past the checkpoint and a torn final line.
#[test]
fn adversarial_kill_points_recover_with_torn_tails() {
    for tb in &testbeds() {
        let regime = Regime::Faulty;
        let (env, dataset) = case_env(tb, regime);
        for (name, algo) in algorithms(tb, regime) {
            let context = format!("{name}/{}/adversarial", tb.name);
            let d = driver(algo.as_ref(), &env, &dataset);
            let baseline = d.baseline(env.tuning.slice);
            let points = adversarial_kill_points(&baseline.journal, env.tuning.slice);
            assert!(
                !points.mid_episode.is_empty(),
                "{context}: fault regime produced no episode windows to kill inside"
            );
            assert!(
                !points.intra_horizon.is_empty(),
                "{context}: no inter-event gap wide enough for an intra-horizon kill"
            );
            if name == "htee" {
                assert!(
                    !points.probe_commit_gap.is_empty(),
                    "{context}: HTEE journal shows no probe→commit gap"
                );
            }
            let mut landed = 0u32;
            for (i, kill) in points.all().into_iter().enumerate() {
                // Alternate crash shapes so both torn variants run.
                let crash = if i % 2 == 0 {
                    CrashWrite::TailThenTorn
                } else {
                    CrashWrite::TornTail
                };
                if assert_kill_equivalence(&d, &baseline, kill, crash, &context) {
                    landed += 1;
                }
            }
            assert!(landed > 0, "{context}: no adversarial kill landed");
        }
    }
}

/// Mid-backoff kills: the faulty regime's retry policy schedules
/// multi-slice backoffs; killing inside one must preserve the pending
/// reconnect across the checkpoint.
#[test]
fn mid_backoff_kills_preserve_pending_reconnects() {
    let tb = eadt_testbeds::xsede();
    let (env, dataset) = case_env(&tb, Regime::Faulty);
    let algo = MinE {
        partition: tb.partition,
        ..MinE::new(8)
    };
    let d = driver(&algo, &env, &dataset);
    let baseline = d.baseline(env.tuning.slice);
    let points = adversarial_kill_points(&baseline.journal, env.tuning.slice);
    assert!(
        !points.mid_backoff.is_empty(),
        "faulty xsede/mine run scheduled no multi-slice backoffs"
    );
    for kill in points.mid_backoff {
        assert_kill_equivalence(&d, &baseline, kill, CrashWrite::Clean, "mine/xsede/backoff");
    }
}

/// A second seed's journal must not be resumable against the first
/// seed's checkpoint: the tail cross-check refuses to stitch.
#[test]
fn cross_run_journal_is_rejected() {
    let tb = eadt_testbeds::didclab();
    let (env, dataset) = case_env(&tb, Regime::Faulty);
    let algo = MinE {
        partition: tb.partition,
        ..MinE::new(8)
    };
    let d = driver(&algo, &env, &dataset);
    let baseline = d.baseline(env.tuning.slice);
    let kill = baseline.slices / 2;
    let (ck, prefix) = d.checkpoint_at(kill).expect("run long enough");

    // Forge a tail: take the real next line and corrupt its payload.
    let suffix_line = baseline.journal[prefix.len()..]
        .lines()
        .next()
        .expect("events follow the checkpoint");
    let forged = format!(
        "{prefix}{}\n",
        suffix_line.replace("\"t_us\":", "\"t_us\":9")
    );
    let err = eadt_ckpt::resume_verified(ck, &forged, |tel, ctl| {
        let mut ctx = RunCtx::with_telemetry(&env, &dataset, tel);
        algo.run_controlled(&mut ctx, ctl)
    })
    .expect_err("forged tail must be rejected");
    assert!(
        matches!(err, eadt_ckpt::CkptError::TailDiverged { .. }),
        "{err}"
    );
}

/// The recovered journal from a torn-tail crash reports the repair.
#[test]
fn torn_tail_repair_is_reported() {
    let tb = eadt_testbeds::didclab();
    let (env, dataset) = case_env(&tb, Regime::Clean);
    let algo = MinE {
        partition: tb.partition,
        ..MinE::new(8)
    };
    let d = driver(&algo, &env, &dataset);
    let baseline = d.baseline(env.tuning.slice);
    let resumed = d
        .kill_and_recover(&baseline, baseline.slices / 3, CrashWrite::TornTail)
        .expect("run long enough")
        .expect("recovery succeeds");
    assert!(!resumed.repair.is_clean(), "torn line must be reported");
    assert_eq!(resumed.journal, baseline.journal);
    assert_eq!(
        eadt_ckpt::report_to_json(&resumed.report),
        baseline.report_json
    );
}

/// Baseline sanity: the faulty regimes actually exercise faults (the
/// matrix would otherwise silently degenerate to clean runs).
#[test]
fn faulty_regime_fires_faults_on_both_testbeds() {
    for tb in &testbeds() {
        let (env, dataset) = case_env(tb, Regime::Faulty);
        let algo = MinE {
            partition: tb.partition,
            ..MinE::new(8)
        };
        let d = driver(&algo, &env, &dataset);
        let b: Baseline = d.baseline(env.tuning.slice);
        let report: serde_json::Value = serde_json::from_str(&b.report_json).unwrap();
        let failures = report
            .as_object()
            .and_then(|o| o.get("failures"))
            .and_then(|v| v.as_u64())
            .unwrap_or(0);
        assert!(failures > 0, "{}: no failures injected", tb.name);
    }
}
