//! Typed failures of checkpoint I/O and journal-verified recovery.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong between a checkpoint file on disk and a
/// verified, resumed run.
///
/// The engine itself panics on configuration mismatches (they are caller
/// bugs); this crate's entry points validate first and return these
/// instead, so a service can report a damaged checkpoint directory
/// without dying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The file system said no (anything but "not found").
    Io {
        /// Offending path.
        path: PathBuf,
        /// OS error text.
        detail: String,
    },
    /// A checkpoint or journal file exists but does not parse — and not
    /// in the one way a crash can damage it (a torn final journal line).
    Corrupt {
        /// Offending path (empty for in-memory inputs).
        path: PathBuf,
        /// Parser diagnostic.
        detail: String,
    },
    /// The checkpoint belongs to a different job, seed or configuration
    /// than the one being resumed.
    Mismatch {
        /// What differed.
        detail: String,
    },
    /// The journal on disk ends before the checkpoint's sequence cursor:
    /// events the checkpoint claims were durable are missing, so the
    /// journal and checkpoint are not from the same crashed run.
    JournalGap {
        /// The checkpoint's sequence cursor (first seq the replay emits).
        expected: u64,
        /// Highest sequence number found on disk (`None`: empty journal).
        found: Option<u64>,
    },
    /// Replayed events diverged from the journal tail written between the
    /// checkpoint and the crash — the checkpoint does not reproduce the
    /// run that wrote the journal.
    TailDiverged {
        /// Sequence number of the first diverging record.
        seq: u64,
        /// The line on disk.
        disk: String,
        /// The line the replay produced.
        replay: String,
    },
    /// The resumed run halted again instead of completing (the caller's
    /// runner re-applied a halt boundary).
    Interrupted,
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { path, detail } => {
                write!(f, "checkpoint I/O failed at {}: {detail}", path.display())
            }
            CkptError::Corrupt { path, detail } if path.as_os_str().is_empty() => {
                write!(f, "corrupt checkpoint data: {detail}")
            }
            CkptError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint file {}: {detail}", path.display())
            }
            CkptError::Mismatch { detail } => {
                write!(
                    f,
                    "checkpoint does not match the job being resumed: {detail}"
                )
            }
            CkptError::JournalGap { expected, found } => match found {
                Some(seq) => write!(
                    f,
                    "journal ends at seq {seq} but the checkpoint was cut at seq {expected}: \
                     the two are not from the same run"
                ),
                None => write!(
                    f,
                    "journal is empty but the checkpoint was cut at seq {expected}"
                ),
            },
            CkptError::TailDiverged { seq, disk, replay } => write!(
                f,
                "replay diverged from the journal tail at seq {seq}: disk {disk} vs replay {replay}"
            ),
            CkptError::Interrupted => {
                write!(f, "resumed run halted again before completing")
            }
        }
    }
}

impl std::error::Error for CkptError {}
