//! The kill-point chaos harness: deterministic crash/recover drills.
//!
//! The harness runs a transfer straight through once (the *baseline*),
//! then replays it with a kill at a chosen slice boundary: the run is
//! halted, its checkpoint round-trips through JSON (the durability
//! transport), the on-disk journal is reconstructed as a crashed
//! appender would have left it — durable prefix, a few lines written
//! after the checkpoint, optionally a torn final line — and
//! [`resume_verified`] drives recovery. The resumed report and stitched
//! journal must be **byte-identical** to the baseline's.
//!
//! Kill points come from two generators: [`every_nth`] sweeps the
//! uniform grid, and [`adversarial_kill_points`] mines the baseline
//! journal for the awkward instants — inside a fault outage, during a
//! retry backoff, in the dead middle of a macro-stepped horizon (the
//! widest event gap), and between an HTEE probe window and its commit.

use crate::error::CkptError;
use crate::recover::{resume_verified, VerifiedResume};
use eadt_sim::SimDuration;
use eadt_telemetry::{Event, Journal, MetricsSnapshot, Telemetry};
use eadt_transfer::{EngineCheckpoint, RunControl, RunOutcome};

/// A straight-through reference run.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Report JSON (pretty, newline-terminated).
    pub report_json: String,
    /// Full journal JSONL.
    pub journal: String,
    /// Total slices the run executed (every kill point below this halts).
    pub slices: u64,
    /// Final metrics state.
    pub metrics: Option<MetricsSnapshot>,
}

/// How the simulated crash mangles the journal tail on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWrite {
    /// The appender stopped exactly at the checkpoint boundary.
    Clean,
    /// The appender wrote `0` whole lines past the checkpoint, then died
    /// mid-line, tearing the next record.
    TornTail,
    /// The appender wrote a few whole lines past the checkpoint and then
    /// died mid-line on the following one.
    TailThenTorn,
}

/// Drives baseline and killed runs of one deterministic transfer.
///
/// The runner closure must start the identical run every time it is
/// called — same algorithm, environment, dataset, seeds — executing it
/// under the given control. Determinism is what makes the byte-equality
/// assertions meaningful.
pub struct ChaosDriver<R>
where
    R: Fn(&mut Telemetry, RunControl) -> RunOutcome,
{
    runner: R,
    cadence: SimDuration,
}

impl<R> ChaosDriver<R>
where
    R: Fn(&mut Telemetry, RunControl) -> RunOutcome,
{
    /// A driver sampling metrics every `cadence` (the registry state is
    /// part of what checkpoints must carry faithfully).
    pub fn new(runner: R, cadence: SimDuration) -> Self {
        ChaosDriver { runner, cadence }
    }

    fn fresh_telemetry(&self) -> Telemetry {
        Telemetry::enabled(self.cadence)
    }

    /// Runs straight through with full telemetry.
    pub fn baseline(&self, slice: SimDuration) -> Baseline {
        let mut tel = self.fresh_telemetry();
        let report = (self.runner)(&mut tel, RunControl::default())
            .into_report()
            .expect("no halt boundary configured");
        let slices = report
            .duration
            .as_micros()
            .div_ceil(slice.as_micros().max(1));
        let report_json = report_to_json(&report);
        let (journal, metrics) = tel.into_parts();
        Baseline {
            report_json,
            journal: journal.expect("telemetry was enabled").to_jsonl(),
            slices,
            metrics: metrics
                .as_ref()
                .map(eadt_telemetry::MetricsRegistry::snapshot),
        }
    }

    /// Halts the run at slice boundary `kill` and returns the checkpoint
    /// after a JSON round-trip, plus the journal prefix the crashed run
    /// had durably written at the boundary. `None` when the run finishes
    /// before `kill` slices.
    pub fn checkpoint_at(&self, kill: u64) -> Option<(EngineCheckpoint, String)> {
        let mut tel = self.fresh_telemetry();
        match (self.runner)(&mut tel, RunControl::halt_at(kill)) {
            RunOutcome::Done(_) => None,
            RunOutcome::Halted(ck) => {
                let ck = EngineCheckpoint::from_json(&ck.to_json())
                    .expect("checkpoint JSON transport is lossless");
                let prefix = tel.journal().expect("telemetry was enabled").to_jsonl();
                Some((ck, prefix))
            }
        }
    }

    /// Kills the run at slice boundary `kill` and recovers it.
    ///
    /// The on-disk journal is simulated from the baseline: the crashed
    /// appender had durably written the checkpoint's prefix and — per
    /// `crash` — some of the events that followed, possibly tearing the
    /// last one. Recovery must cross-check that tail and produce a
    /// report and journal byte-identical to `baseline`'s (asserted by
    /// [`assert_kill_equivalence`], not here).
    ///
    /// Returns `None` when the run completes before `kill` slices (no
    /// checkpoint to crash on).
    pub fn kill_and_recover(
        &self,
        baseline: &Baseline,
        kill: u64,
        crash: CrashWrite,
    ) -> Option<Result<VerifiedResume, CkptError>> {
        let (ck, prefix) = self.checkpoint_at(kill)?;
        let disk = simulate_crash_journal(&prefix, &baseline.journal, crash);
        Some(resume_verified(ck, &disk, |tel, ctl| {
            (self.runner)(tel, ctl)
        }))
    }
}

/// Builds the journal bytes a crashed appender would have left: the
/// durable `prefix`, then (depending on `crash`) a few complete lines
/// the run appended after the checkpoint, then a torn final line cut
/// mid-record.
pub fn simulate_crash_journal(prefix: &str, full: &str, crash: CrashWrite) -> String {
    debug_assert!(
        full.starts_with(prefix),
        "baseline journal must extend the halted run's prefix"
    );
    let after: Vec<&str> = full[prefix.len()..].lines().collect();
    let mut disk = String::from(prefix);
    match crash {
        CrashWrite::Clean => {}
        CrashWrite::TornTail => {
            if let Some(line) = after.first() {
                disk.push_str(&line[..line.len() * 2 / 3]);
            }
        }
        CrashWrite::TailThenTorn => {
            let whole = after.len().saturating_sub(1).min(3);
            for line in &after[..whole] {
                disk.push_str(line);
                disk.push('\n');
            }
            if let Some(line) = after.get(whole) {
                disk.push_str(&line[..line.len() / 2]);
            }
        }
    }
    disk
}

/// The uniform kill grid: every `n`-th slice boundary strictly inside
/// the run.
pub fn every_nth(total_slices: u64, n: u64) -> Vec<u64> {
    let n = n.max(1);
    (0..total_slices).step_by(n as usize).collect()
}

/// Kill points mined from a baseline journal, by adversarial class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdversarialPoints {
    /// Mid-outage / mid-stall / mid-disk-episode boundaries (between a
    /// fault episode opening and closing).
    pub mid_episode: Vec<u64>,
    /// Boundaries inside a scheduled retry backoff window.
    pub mid_backoff: Vec<u64>,
    /// Boundaries between an HTEE probe window closing and the commit.
    pub probe_commit_gap: Vec<u64>,
    /// The middle of the widest gap between consecutive events — inside
    /// a macro-stepped steady-state horizon if the run had one.
    pub intra_horizon: Vec<u64>,
}

impl AdversarialPoints {
    /// All classes flattened, deduplicated, ascending.
    pub fn all(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .mid_episode
            .iter()
            .chain(&self.mid_backoff)
            .chain(&self.probe_commit_gap)
            .chain(&self.intra_horizon)
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Mines a baseline journal for adversarial kill points (slice indices).
///
/// Every returned boundary is strictly inside the run. Classes are empty
/// when the journal has no matching structure (no faults configured, no
/// probing controller, no macro-steppable steady state).
pub fn adversarial_kill_points(journal_jsonl: &str, slice: SimDuration) -> AdversarialPoints {
    let journal = Journal::from_jsonl(journal_jsonl).expect("baseline journal parses");
    let slice_us = slice.as_micros().max(1);
    let to_slice = |t_us: u64| t_us / slice_us;
    let mut points = AdversarialPoints::default();

    // Fault episodes: pair each opening with its closing edge and take
    // the middle boundary. Keyed loosely (kind only) — overlapping
    // windows still yield in-window midpoints.
    let mut open: Vec<(u64, u64)> = Vec::new(); // (kind discriminant, t_us)
    for r in journal.records() {
        match &r.event {
            Event::FaultEpisode { kind, active, .. } => {
                let k = *kind as u64;
                if *active {
                    open.push((k, r.t_us));
                } else if let Some(pos) = open.iter().rposition(|(ok, _)| *ok == k) {
                    let (_, start) = open.swap_remove(pos);
                    let mid = to_slice((start + r.t_us) / 2);
                    if mid > to_slice(start) && mid <= to_slice(r.t_us) {
                        points.mid_episode.push(mid);
                    }
                }
            }
            Event::ChannelRetry { delay_us, .. } => {
                // Halt in the middle of the backoff the retry scheduled.
                let mid = to_slice(r.t_us + delay_us / 2);
                if *delay_us > slice_us && mid > to_slice(r.t_us) {
                    points.mid_backoff.push(mid);
                }
            }
            Event::Commit { .. } => {
                // Between the last probe window and the commit.
                let prev_probe = journal
                    .records()
                    .iter()
                    .rfind(|p| p.t_us < r.t_us && matches!(p.event, Event::ProbeWindow { .. }));
                if let Some(p) = prev_probe {
                    let mid = to_slice((p.t_us + r.t_us) / 2);
                    if mid > to_slice(p.t_us) {
                        points.probe_commit_gap.push(mid);
                    }
                }
            }
            _ => {}
        }
    }

    // Widest inter-event gap: a macro-stepped steady state shows up as a
    // long stretch with no events; kill in its middle.
    let mut widest: Option<(u64, u64)> = None; // (gap, mid_slice)
    for w in journal.records().windows(2) {
        let gap = w[1].t_us.saturating_sub(w[0].t_us);
        if gap > 2 * slice_us {
            let mid = to_slice(w[0].t_us + gap / 2);
            if widest.is_none_or(|(g, _)| gap > g) {
                widest = Some((gap, mid));
            }
        }
    }
    if let Some((_, mid)) = widest {
        points.intra_horizon.push(mid);
    }

    for v in [
        &mut points.mid_episode,
        &mut points.mid_backoff,
        &mut points.probe_commit_gap,
    ] {
        v.sort_unstable();
        v.dedup();
    }
    points
}

/// Asserts one kill/recover cycle reproduced the baseline byte-for-byte.
/// Returns `false` when the run finished before the kill point (nothing
/// to assert).
pub fn assert_kill_equivalence<R>(
    driver: &ChaosDriver<R>,
    baseline: &Baseline,
    kill: u64,
    crash: CrashWrite,
    context: &str,
) -> bool
where
    R: Fn(&mut Telemetry, RunControl) -> RunOutcome,
{
    let Some(result) = driver.kill_and_recover(baseline, kill, crash) else {
        return false;
    };
    let resumed = match result {
        Ok(r) => r,
        Err(e) => panic!("{context}: kill at slice {kill} failed recovery: {e}"),
    };
    assert_eq!(
        report_to_json(&resumed.report),
        baseline.report_json,
        "{context}: report diverged after kill at slice {kill}"
    );
    assert_eq!(
        resumed.journal, baseline.journal,
        "{context}: journal diverged after kill at slice {kill}"
    );
    assert_eq!(
        resumed.metrics, baseline.metrics,
        "{context}: metrics diverged after kill at slice {kill}"
    );
    if crash == CrashWrite::TornTail || crash == CrashWrite::TailThenTorn {
        assert!(
            !resumed.repair.is_clean(),
            "{context}: torn line at kill {kill} was not detected"
        );
    }
    true
}

/// Canonical report JSON (pretty, newline-terminated) — the byte string
/// equivalence is asserted over.
pub fn report_to_json(report: &eadt_transfer::TransferReport) -> String {
    let mut s = serde_json::to_string_pretty(report).expect("reports always serialize");
    s.push('\n');
    s
}
