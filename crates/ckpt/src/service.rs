//! Service-session snapshots: the scheduler state of a continuous fleet
//! service (DESIGN.md §16) at a round boundary.
//!
//! An engine checkpoint captures *one transfer's* in-flight state; a
//! [`ServiceCheckpoint`] captures the layer above it — which jobs are
//! still pending, queued, resident in a site pool, or finished, plus the
//! per-job admission timeline. Together with the per-job
//! [`JobCheckpoint`](crate::JobCheckpoint) files and the persisted
//! service journal, the checkpoint directory holds a consistent snapshot
//! of the whole service as of the round it was written, and a resumed
//! service replays the remaining rounds byte-identically.

use crate::error::CkptError;
use crate::store::CheckpointStore;
use serde::{Deserialize, Serialize};

/// Schema version of [`ServiceCheckpoint`] (versioning policy: §13 —
/// additive growth bumps the version, readers reject versions they do
/// not understand).
pub const SERVICE_CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// One job's service-side timeline, as known at the checkpoint round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceJobState {
    /// Service-wide job index.
    pub job: u32,
    /// Round the job first entered a site pool (`None` while waiting).
    pub admitted_round: Option<u64>,
    /// Round the job finished (`None` while unfinished).
    pub finished_round: Option<u64>,
    /// Times the scheduler evicted the job from its pool.
    pub preemptions: u32,
}

/// The scheduler state of a continuous fleet service at a round
/// boundary.
///
/// Job indices refer to the workload's job list; jobs absent from
/// `queue`, `resident` and `finished` have not arrived yet (their
/// arrival rounds are recomputed from the root seed on resume, so the
/// arrival process itself needs no state here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCheckpoint {
    /// Schema version ([`SERVICE_CHECKPOINT_SCHEMA_VERSION`]).
    pub version: u32,
    /// Workload fingerprint: hash of root seed, policy, quantum, site
    /// and job shape. A resume against an edited workload is rejected
    /// before any engine state loads.
    pub fingerprint: u64,
    /// The root seed the service ran at.
    pub root_seed: u64,
    /// The next round to execute (all rounds below it are complete).
    pub round: u64,
    /// Jobs waiting for admission, queue order.
    pub queue: Vec<u32>,
    /// Jobs resident in site pools, admission order. Each has a
    /// `job-<i>.ckpt.json` engine checkpoint beside this file.
    pub resident: Vec<u32>,
    /// Jobs that finished, index order. Each has a
    /// `job-<i>.outcome.json` beside this file.
    pub finished: Vec<u32>,
    /// Per-job admission timeline (admitted/finished rounds, preemption
    /// counts), index order over all jobs.
    pub jobs: Vec<ServiceJobState>,
    /// Sequence number the service journal will assign next; the
    /// persisted journal prefix ends exactly here.
    pub journal_seq: u64,
}

impl ServiceCheckpoint {
    /// Serializes as pretty JSON with a trailing newline (deterministic:
    /// declaration field order, no floats).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string());
        text.push('\n');
        text
    }

    /// Parses and version-checks a snapshot produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let ck: ServiceCheckpoint = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if ck.version != SERVICE_CHECKPOINT_SCHEMA_VERSION {
            return Err(format!(
                "service checkpoint schema {} (this build reads {})",
                ck.version, SERVICE_CHECKPOINT_SCHEMA_VERSION
            ));
        }
        Ok(ck)
    }

    /// Checks the snapshot against the workload it is about to resume.
    pub fn validate(&self, fingerprint: u64, root_seed: u64) -> Result<(), CkptError> {
        if self.fingerprint != fingerprint {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "service checkpoint fingerprint {:#018x} does not match workload {fingerprint:#018x}",
                    self.fingerprint
                ),
            });
        }
        if self.root_seed != root_seed {
            return Err(CkptError::Mismatch {
                detail: format!(
                    "service checkpoint root seed {}, resuming with {root_seed}",
                    self.root_seed
                ),
            });
        }
        Ok(())
    }
}

impl CheckpointStore {
    /// File name of the service-session snapshot.
    pub fn service_checkpoint_name() -> &'static str {
        "service.ckpt.json"
    }

    /// File name of the persisted service journal prefix.
    pub fn service_journal_name() -> &'static str {
        "service.journal.jsonl"
    }

    /// Reads and parses the service checkpoint; `Ok(None)` when absent.
    pub fn load_service_checkpoint(&self) -> Result<Option<ServiceCheckpoint>, CkptError> {
        let name = Self::service_checkpoint_name();
        match self.read(name)? {
            None => Ok(None),
            Some(text) => ServiceCheckpoint::from_json(&text)
                .map(Some)
                .map_err(|detail| CkptError::Corrupt {
                    path: self.dir().join(name),
                    detail,
                }),
        }
    }

    /// Writes the service checkpoint atomically.
    pub fn save_service_checkpoint(&self, ck: &ServiceCheckpoint) -> Result<(), CkptError> {
        self.write(Self::service_checkpoint_name(), &ck.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceCheckpoint {
        ServiceCheckpoint {
            version: SERVICE_CHECKPOINT_SCHEMA_VERSION,
            fingerprint: 0xfeed_beef,
            root_seed: 42,
            round: 7,
            queue: vec![3],
            resident: vec![1, 2],
            finished: vec![0],
            jobs: vec![
                ServiceJobState {
                    job: 0,
                    admitted_round: Some(0),
                    finished_round: Some(5),
                    preemptions: 0,
                },
                ServiceJobState {
                    job: 1,
                    admitted_round: Some(1),
                    finished_round: None,
                    preemptions: 1,
                },
            ],
            journal_seq: 19,
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let ck = sample();
        let text = ck.to_json();
        let back = ServiceCheckpoint::from_json(&text).unwrap();
        assert_eq!(back, ck);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut ck = sample();
        ck.version = SERVICE_CHECKPOINT_SCHEMA_VERSION + 1;
        let err = ServiceCheckpoint::from_json(&ck.to_json()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn validation_catches_workload_drift() {
        let ck = sample();
        ck.validate(0xfeed_beef, 42).unwrap();
        assert!(ck.validate(0xdead_beef, 42).is_err());
        assert!(ck.validate(0xfeed_beef, 43).is_err());
    }

    #[test]
    fn store_round_trip() {
        let dir = std::env::temp_dir().join(format!("eadt-ckpt-service-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::create(&dir).unwrap();
        assert!(store.load_service_checkpoint().unwrap().is_none());
        let ck = sample();
        store.save_service_checkpoint(&ck).unwrap();
        assert_eq!(store.load_service_checkpoint().unwrap(), Some(ck));
        let _ = std::fs::remove_dir_all(dir);
    }
}
