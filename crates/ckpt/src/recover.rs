//! Journal-verified resume: replay from a checkpoint and prove the
//! replay re-joins the event stream the crashed run was writing.
//!
//! A crashed process leaves two artifacts: the last checkpoint (written
//! atomically, so intact) and the journal (append-only, so possibly
//! ahead of the checkpoint and possibly ending in a torn line). Recovery
//! treats the journal *prefix* — records below the checkpoint's sequence
//! cursor — as durable history, and the *tail* — records the crashed run
//! appended after the checkpoint — as evidence: the resumed run must
//! re-emit exactly those events before producing anything new. A replay
//! that diverges from its own tail means the checkpoint, the journal, or
//! the configuration is not what it claims to be, and recovery refuses
//! to stitch a Frankenstein journal.

use crate::error::CkptError;
use eadt_telemetry::{Journal, JournalRecovery, MetricsRegistry, MetricsSnapshot, Telemetry};
use eadt_transfer::{EngineCheckpoint, RunControl, RunOutcome, TransferReport};

/// The product of a verified resume.
#[derive(Debug)]
pub struct VerifiedResume {
    /// The completed run's report — bit-identical to an uninterrupted
    /// run's.
    pub report: TransferReport,
    /// The stitched journal: durable prefix + replayed suffix, as JSONL.
    /// Byte-identical to an uninterrupted run's journal.
    pub journal: String,
    /// What journal repair found on disk (torn tail, blank lines).
    pub repair: JournalRecovery,
    /// How many tail records (events the crashed run wrote *after* the
    /// checkpoint) were cross-checked against the replay.
    pub tail_verified: usize,
    /// Final metrics-registry state, when the run sampled metrics.
    pub metrics: Option<MetricsSnapshot>,
}

/// Resumes a run from `ck` against the journal bytes found on disk,
/// verifying the replay against the journal tail.
///
/// `run` executes the resumed transfer: it receives the telemetry facade
/// (journal cursor and metrics registry already positioned from the
/// checkpoint) and the [`RunControl`] carrying the checkpoint, and must
/// drive the same algorithm/plan/environment the checkpoint was taken
/// under — typically a closure over
/// [`Engine::run_controlled`](eadt_transfer::Engine::run_controlled) or
/// an `Algorithm::run_controlled` call.
///
/// Recovery protocol (DESIGN.md §13):
/// 1. parse the journal, repairing a torn final line;
/// 2. split at the checkpoint's sequence cursor into durable prefix and
///    unverified tail; a prefix shorter than the cursor is a hard error
///    (the journal and checkpoint are not from the same run);
/// 3. replay from the checkpoint, journaling the suffix;
/// 4. cross-check every tail record against the replayed suffix,
///    byte-for-byte;
/// 5. stitch prefix + suffix into the canonical journal.
pub fn resume_verified<F>(
    ck: EngineCheckpoint,
    journal_text: &str,
    run: F,
) -> Result<VerifiedResume, CkptError>
where
    F: FnOnce(&mut Telemetry, RunControl) -> RunOutcome,
{
    let (disk, repair) =
        Journal::recover_jsonl(journal_text).map_err(|detail| CkptError::Corrupt {
            path: Default::default(),
            detail,
        })?;
    if let Some(first) = disk.records().first() {
        if first.seq != 0 {
            return Err(CkptError::Corrupt {
                path: Default::default(),
                detail: format!("journal starts at seq {}, not 0", first.seq),
            });
        }
    }
    let cursor = ck.journal_seq;
    // recover_jsonl guarantees contiguity, so the record count is also
    // the next sequence number; a count below the cursor means events
    // the checkpoint declared durable are missing.
    if (disk.len() as u64) < cursor {
        return Err(CkptError::JournalGap {
            expected: cursor,
            found: disk.records().last().map(|r| r.seq),
        });
    }
    let tail: Vec<String> = disk.records()[cursor as usize..]
        .iter()
        .map(|r| r.to_json())
        .collect();

    let mut tel = Telemetry::from_parts(
        Some(Journal::with_start_seq(cursor)),
        ck.metrics.as_ref().map(MetricsRegistry::restore),
    );
    let report = run(&mut tel, RunControl::resume_from(ck))
        .into_report()
        .ok_or(CkptError::Interrupted)?;

    let (journal, metrics) = tel.into_parts();
    // The telemetry above is built with a journal; losing it mid-run is
    // corruption, reported as such rather than aborting the recovery.
    let Some(suffix) = journal else {
        return Err(CkptError::Corrupt {
            path: Default::default(),
            detail: "replay telemetry returned without its journal".to_string(),
        });
    };
    let replayed = suffix.records();
    if tail.len() > replayed.len() {
        return Err(CkptError::TailDiverged {
            seq: cursor + replayed.len() as u64,
            disk: tail.get(replayed.len()).cloned().unwrap_or_default(),
            replay: "<run ended>".to_string(),
        });
    }
    for (i, disk_line) in tail.iter().enumerate() {
        let replay_line = replayed[i].to_json();
        if *disk_line != replay_line {
            return Err(CkptError::TailDiverged {
                seq: cursor + i as u64,
                disk: disk_line.clone(),
                replay: replay_line,
            });
        }
    }

    let mut stitched = String::new();
    for r in &disk.records()[..cursor as usize] {
        stitched.push_str(&r.to_json());
        stitched.push('\n');
    }
    stitched.push_str(&suffix.to_jsonl());

    Ok(VerifiedResume {
        report,
        journal: stitched,
        repair,
        tail_verified: tail.len(),
        metrics: metrics.as_ref().map(MetricsRegistry::snapshot),
    })
}
