//! Crash-safe checkpoint/restore for simulated transfers (DESIGN.md §13).
//!
//! The engine serializes its full in-flight state at slice boundaries
//! ([`eadt_transfer::EngineCheckpoint`]); this crate owns everything
//! around that snapshot:
//!
//! * [`store`] — the on-disk checkpoint directory: atomic writes, the
//!   per-job file layout fleet sessions use, and the [`JobCheckpoint`]
//!   wrapper binding a snapshot to the job that produced it;
//! * [`recover`] — journal-verified resume: repair a torn journal,
//!   replay from the checkpoint, cross-check the replayed events against
//!   the tail the crashed run had written, stitch the canonical journal;
//! * [`chaos`] — the kill-point chaos harness: deterministic crash
//!   drills at uniform and adversarial slice boundaries (mid-outage,
//!   mid-backoff, intra-horizon, probe→commit gaps) asserting resumed
//!   runs are byte-identical to uninterrupted ones;
//! * [`service`] — the continuous-service layer's snapshot
//!   ([`ServiceCheckpoint`]): queue/admission state and per-job
//!   timelines at a scheduling-round boundary (DESIGN.md §16);
//! * [`error`] — typed failures ([`CkptError`]) so services can report a
//!   damaged checkpoint directory instead of dying on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod recover;
pub mod service;
pub mod store;

pub use chaos::{
    adversarial_kill_points, assert_kill_equivalence, every_nth, report_to_json, AdversarialPoints,
    Baseline, ChaosDriver, CrashWrite,
};
pub use error::CkptError;
pub use recover::{resume_verified, VerifiedResume};
pub use service::{ServiceCheckpoint, ServiceJobState, SERVICE_CHECKPOINT_SCHEMA_VERSION};
pub use store::{CheckpointStore, JobCheckpoint, JOB_CHECKPOINT_SCHEMA_VERSION};
