//! The on-disk checkpoint directory: atomic writes, tolerant reads.
//!
//! Layout (one directory per fleet run or single transfer):
//!
//! ```text
//! <dir>/job-<index>.ckpt.json     latest engine checkpoint of the job
//! <dir>/job-<index>.journal.jsonl event journal as of that checkpoint
//! <dir>/job-<index>.outcome.json  final outcome (job finished; ckpt gone)
//! ```
//!
//! Every write goes through a temp file in the same directory followed by
//! a rename, so a crash mid-write leaves either the old file or the new
//! one — never a half-written checkpoint. (Journals are the exception by
//! design: a crashed *appender* tears its final line, which
//! [`Journal::recover_jsonl`](eadt_telemetry::Journal::recover_jsonl)
//! repairs on resume.)

use crate::error::CkptError;
use eadt_transfer::EngineCheckpoint;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

/// Schema version of the [`JobCheckpoint`] wrapper (the engine checkpoint
/// inside carries its own version).
pub const JOB_CHECKPOINT_SCHEMA_VERSION: u32 = 1;

/// An engine checkpoint bound to the fleet job that produced it, so a
/// resume against a reordered or edited job list is caught before the
/// engine ever sees the snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobCheckpoint {
    /// Wrapper schema version ([`JOB_CHECKPOINT_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Job index within the batch.
    pub job: usize,
    /// Display label of the job spec.
    pub label: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// The seed the job ran at.
    pub seed: u64,
    /// The engine state at the halt boundary.
    pub engine: EngineCheckpoint,
}

impl JobCheckpoint {
    /// Serializes as pretty JSON with a trailing newline (deterministic:
    /// shortest-roundtrip floats, declaration field order).
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string());
        text.push('\n');
        text
    }

    /// Parses and version-checks a wrapper produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let ck: JobCheckpoint = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if ck.schema != JOB_CHECKPOINT_SCHEMA_VERSION {
            return Err(format!(
                "job checkpoint schema {} (this build reads {})",
                ck.schema, JOB_CHECKPOINT_SCHEMA_VERSION
            ));
        }
        Ok(ck)
    }

    /// Checks the wrapper against the job it is about to resume.
    pub fn validate(&self, job: usize, label: &str, seed: u64) -> Result<(), CkptError> {
        if self.job != job {
            return Err(CkptError::Mismatch {
                detail: format!("checkpoint is for job {}, resuming job {job}", self.job),
            });
        }
        if self.label != label {
            return Err(CkptError::Mismatch {
                detail: format!("checkpoint label {:?}, job label {label:?}", self.label),
            });
        }
        if self.seed != seed {
            return Err(CkptError::Mismatch {
                detail: format!("checkpoint seed {}, job seed {seed}", self.seed),
            });
        }
        Ok(())
    }
}

/// A checkpoint directory with atomic writes.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if necessary) a checkpoint directory.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CkptError::Io {
            path: dir.clone(),
            detail: e.to_string(),
        })?;
        Ok(CheckpointStore { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Checkpoint file name for a job.
    pub fn checkpoint_name(job: usize) -> String {
        format!("job-{job}.ckpt.json")
    }

    /// Journal file name for a job.
    pub fn journal_name(job: usize) -> String {
        format!("job-{job}.journal.jsonl")
    }

    /// Final-outcome file name for a job.
    pub fn outcome_name(job: usize) -> String {
        format!("job-{job}.outcome.json")
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Writes `contents` to `name` atomically (temp file + rename).
    pub fn write(&self, name: &str, contents: &str) -> Result<(), CkptError> {
        let target = self.path(name);
        let tmp = self.path(&format!(".{name}.tmp"));
        let io = |e: std::io::Error| CkptError::Io {
            path: target.clone(),
            detail: e.to_string(),
        };
        fs::write(&tmp, contents).map_err(io)?;
        fs::rename(&tmp, &target).map_err(io)
    }

    /// Reads `name`; `Ok(None)` when the file does not exist, `Err` for
    /// any other failure — an unreadable checkpoint is a hard error, not
    /// an absent one.
    pub fn read(&self, name: &str) -> Result<Option<String>, CkptError> {
        let path = self.path(name);
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CkptError::Io {
                path,
                detail: e.to_string(),
            }),
        }
    }

    /// Removes `name` if present (used when a job finishes and its
    /// checkpoint becomes garbage).
    pub fn remove(&self, name: &str) -> Result<(), CkptError> {
        let path = self.path(name);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CkptError::Io {
                path,
                detail: e.to_string(),
            }),
        }
    }

    /// Reads and parses a job checkpoint; `Ok(None)` when absent.
    pub fn load_job_checkpoint(&self, job: usize) -> Result<Option<JobCheckpoint>, CkptError> {
        let name = Self::checkpoint_name(job);
        match self.read(&name)? {
            None => Ok(None),
            Some(text) => {
                JobCheckpoint::from_json(&text)
                    .map(Some)
                    .map_err(|detail| CkptError::Corrupt {
                        path: self.path(&name),
                        detail,
                    })
            }
        }
    }

    /// Writes a job checkpoint atomically.
    pub fn save_job_checkpoint(&self, ck: &JobCheckpoint) -> Result<(), CkptError> {
        self.write(&Self::checkpoint_name(ck.job), &ck.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eadt-ckpt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_read_remove_round_trip() {
        let dir = tmp_dir("rw");
        let store = CheckpointStore::create(&dir).unwrap();
        assert_eq!(store.read("a.json").unwrap(), None);
        store.write("a.json", "{}\n").unwrap();
        assert_eq!(store.read("a.json").unwrap().as_deref(), Some("{}\n"));
        store.remove("a.json").unwrap();
        assert_eq!(store.read("a.json").unwrap(), None);
        store.remove("a.json").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = tmp_dir("atomic");
        let store = CheckpointStore::create(&dir).unwrap();
        store.write("b.json", "x").unwrap();
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["b.json".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn job_checkpoint_validation_catches_drift() {
        let ck = JobCheckpoint {
            schema: JOB_CHECKPOINT_SCHEMA_VERSION,
            job: 3,
            label: "mine/didclab".to_string(),
            algorithm: "MinE".to_string(),
            seed: 11,
            engine: sample_engine_checkpoint(),
        };
        ck.validate(3, "mine/didclab", 11).unwrap();
        assert!(ck.validate(2, "mine/didclab", 11).is_err());
        assert!(ck.validate(3, "other", 11).is_err());
        assert!(ck.validate(3, "mine/didclab", 12).is_err());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut ck = JobCheckpoint {
            schema: JOB_CHECKPOINT_SCHEMA_VERSION,
            job: 0,
            label: String::new(),
            algorithm: String::new(),
            seed: 0,
            engine: sample_engine_checkpoint(),
        };
        assert!(JobCheckpoint::from_json(&ck.to_json()).is_ok());
        ck.schema = JOB_CHECKPOINT_SCHEMA_VERSION + 1;
        let err = JobCheckpoint::from_json(&ck.to_json()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    fn sample_engine_checkpoint() -> EngineCheckpoint {
        use eadt_sim::{Bytes, SimTime, TimeSeries};
        EngineCheckpoint {
            version: eadt_transfer::CHECKPOINT_SCHEMA_VERSION,
            fingerprint: 1,
            stage: 0,
            now: SimTime::ZERO,
            slices_done: 0,
            estimated_energy_j: 0.0,
            retransmitted: Bytes::ZERO,
            ledger: eadt_telemetry::EnergyLedger::default(),
            horizon_end: None,
            open_spans: Vec::new(),
            moved_total: Bytes::ZERO,
            wire_bytes_f: 0.0,
            audit_gross: Bytes::ZERO,
            audit_stage_requested: Bytes::ZERO,
            chunk_stats: Vec::new(),
            throughput_series: TimeSeries::new(),
            power_series: TimeSeries::new(),
            concurrency_series: TimeSeries::new(),
            chunks: Vec::new(),
            prev_src_active: Vec::new(),
            prev_dst_active: Vec::new(),
            faults: None,
            controller: eadt_transfer::ControllerSnapshot::stateless(),
            metrics: None,
            journal_seq: 0,
        }
    }
}
