//! The three evaluation testbeds (paper Figures 1 and 9).
//!
//! | Testbed    | Path                        | BW      | RTT    | TCP buf |
//! |------------|-----------------------------|---------|--------|---------|
//! | XSEDE      | Stampede (TACC) → Gordon (SDSC) | 10 Gbps | 40 ms  | 32 MB |
//! | FutureGrid | Alamo (TACC) → Hotel (UChicago) | 1 Gbps  | 28 ms  | 32 MB |
//! | DIDCLAB    | WS9 → WS6 (LAN)             | 1 Gbps  | ~0.2 ms| 32 MB   |
//!
//! Each [`Environment`] bundles the link, the site hardware (XSEDE sites
//! run four 4-core data-transfer nodes behind striped storage; the DIDCLAB
//! workstations have a single disk whose throughput *degrades* under
//! concurrent access), the calibrated utilization/power coefficients, the
//! engine tuning constants, the Figure 9 device path, and the paper's
//! dataset for that link speed.
//!
//! Numeric calibration note: hardware specs follow Figure 1; the
//! software-tuning constants (per-stream achievable rate, per-file server
//! overhead) are calibrated so the *shapes* of Figures 2–7 reproduce —
//! they are documented per testbed below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eadt_dataset::{paper_dataset_10g, paper_dataset_1g, Dataset, DatasetMix, PartitionConfig};
use eadt_endsys::{DiskSubsystem, ServerSpec, Site, UtilizationCoeffs};
use eadt_net::link::Link;
use eadt_net::packets::PacketModel;
use eadt_net::tcp::CongestionModel;
use eadt_netenergy::{didclab_path, futuregrid_path, xsede_path, NetworkPath};
use eadt_power::FineGrainedModel;
use eadt_sim::{Bytes, Rate, SimDuration};
use eadt_transfer::{EngineTuning, TransferEnv};
use serde::{Deserialize, Serialize};

/// A complete evaluation environment: where the transfer runs and what it
/// moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Testbed name as used in the paper's figures.
    pub name: String,
    /// The simulated world the engine runs in.
    pub env: TransferEnv,
    /// The network-device path of Figure 9 (for §4 energy accounting).
    pub path: NetworkPath,
    /// The dataset specification the paper uses on this link speed.
    pub dataset_spec: DatasetMix,
    /// The concurrency levels swept in Figures 2–4.
    pub sweep_levels: Vec<u32>,
    /// BDP-relative partition thresholds the tuned algorithms use on this
    /// path. High-BDP paths classify against the BDP directly; on low-BDP
    /// paths (FutureGrid's 3.5 MB) the operational thresholds sit well
    /// above the BDP, as in the authors' client.
    pub partition: PartitionConfig,
    /// The reference concurrency at which ProMC hits its maximum throughput
    /// (12 for the WAN testbeds, 1 for the LAN — §3's SLA baseline).
    pub reference_concurrency: u32,
}

impl Environment {
    /// Generates this testbed's dataset, deterministic in `seed`.
    pub fn dataset(&self, seed: u64) -> Dataset {
        self.dataset_spec.generate(seed)
    }

    /// Sanity-checks a (possibly hand-edited) environment, returning one
    /// message per problem found. An empty result means the environment is
    /// usable; the CLI runs this on every `--env-file` load so a typo in a
    /// JSON file fails loudly instead of producing nonsense Joules.
    pub fn validate(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if self.env.link.bandwidth.is_zero() {
            issues.push("link bandwidth is zero".into());
        }
        if self.env.link.tcp_buffer.is_zero() {
            issues.push("TCP buffer is zero".into());
        }
        if self.env.link.mtu.is_zero() {
            issues.push("MTU is zero".into());
        }
        for (side, site) in [("source", &self.env.src), ("destination", &self.env.dst)] {
            for srv in &site.servers {
                if srv.nic.is_zero() {
                    issues.push(format!("{side} server '{}' has a zero-rate NIC", srv.name));
                }
                if srv.disk.peak_rate().is_zero() {
                    issues.push(format!("{side} server '{}' has a zero-rate disk", srv.name));
                }
                if srv.cpu_tdp_watts <= 0.0 {
                    issues.push(format!("{side} server '{}' has non-positive TDP", srv.name));
                }
            }
        }
        if self.env.tuning.wan_stream_cap.is_zero() {
            issues.push("per-stream achievable rate is zero".into());
        }
        if self.env.tuning.slice.is_zero() {
            issues.push("slice length is zero".into());
        }
        if self.env.tuning.max_duration <= self.env.tuning.slice {
            issues.push("max_duration must exceed the slice length".into());
        }
        if self.partition.small_fraction >= self.partition.large_fraction {
            issues.push("partition small_fraction must be below large_fraction".into());
        }
        if self.sweep_levels.is_empty() {
            issues.push("sweep_levels is empty".into());
        }
        if self.reference_concurrency == 0 {
            issues.push("reference_concurrency is zero".into());
        }
        issues
    }
}

/// The power model shared by the testbeds: the Eq. 2 CPU curve scaled to a
/// transfer node, with secondary coefficients from the §2.2 calibration.
/// CPU-dominated, so total power tracks how hard the transfer works the
/// end systems rather than only how long it runs.
fn testbed_power_model() -> FineGrainedModel {
    FineGrainedModel {
        cpu_scale: 2.2,
        c_memory: 0.06,
        c_disk: 0.12,
        c_nic: 0.10,
    }
}

/// XSEDE: Stampede (TACC) → Gordon (SDSC), 10 Gbps, 40 ms RTT.
///
/// Four data-transfer nodes per site (the reason GO's round-robin channel
/// spreading costs energy), 4 cores each, Lustre-like striped storage.
/// Calibration: single-stream achievable rate 1.5 Gbps (loss-limited AIMD
/// on the shared backbone), 100 ms per-file server overhead (the measured
/// small-file penalty of GridFTP on Lustre-backed DTNs).
pub fn xsede() -> Environment {
    let server = ServerSpec::new(
        "dtn",
        4,
        115.0,
        Rate::from_gbps(10.0),
        DiskSubsystem::Array {
            per_access: Rate::from_gbps(2.4),
            aggregate: Rate::from_gbps(7.6),
        },
    );
    let env = TransferEnv {
        link: Link::new(
            Rate::from_gbps(10.0),
            SimDuration::from_millis(40),
            Bytes::from_mb(32),
        ),
        src: Site::new("Stampede (TACC)", vec![server.clone(); 4]),
        dst: Site::new("Gordon (SDSC)", vec![server; 4]),
        util: UtilizationCoeffs::default(),
        power: testbed_power_model(),
        congestion: CongestionModel {
            saturation_streams: 20,
            overload_penalty: 0.025,
            floor: 0.6,
        },
        packets: PacketModel::default(),
        tuning: EngineTuning::default()
            .with_wan_stream_cap(Rate::from_gbps(1.5))
            .with_proc_channel_cap(Rate::from_gbps(2.0))
            .with_per_file_overhead(SimDuration::from_millis(100))
            .with_slice(SimDuration::from_millis(100))
            .with_max_duration(SimDuration::from_secs(24 * 3600)),
        faults: None,
        background: None,
        estimator: None,
    };
    Environment {
        name: "XSEDE".into(),
        env,
        path: xsede_path(),
        dataset_spec: paper_dataset_10g(),
        sweep_levels: vec![1, 2, 4, 6, 8, 10, 12],
        partition: PartitionConfig::default(),
        reference_concurrency: 12,
    }
}

/// FutureGrid: Alamo (TACC) → Hotel (UChicago), 1 Gbps, 28 ms RTT.
///
/// Two data-transfer nodes per site, 4 cores each, modest RAID storage.
/// Calibration: single-stream achievable rate 300 Mbps, so ~4 channels
/// saturate the 1 Gbps link — the regime where every multi-channel
/// algorithm converges in Figure 3a.
pub fn futuregrid() -> Environment {
    let server = ServerSpec::new(
        "dtn",
        4,
        95.0,
        Rate::from_gbps(1.0),
        DiskSubsystem::Array {
            per_access: Rate::from_mbps(600.0),
            aggregate: Rate::from_gbps(2.0),
        },
    );
    let env = TransferEnv {
        link: Link::new(
            Rate::from_gbps(1.0),
            SimDuration::from_millis(28),
            Bytes::from_mb(32),
        ),
        src: Site::new("Alamo (TACC)", vec![server.clone(); 2]),
        dst: Site::new("Hotel (UChicago)", vec![server; 2]),
        util: UtilizationCoeffs::default(),
        power: testbed_power_model(),
        congestion: CongestionModel {
            saturation_streams: 16,
            overload_penalty: 0.015,
            floor: 0.6,
        },
        packets: PacketModel::default(),
        tuning: EngineTuning::default()
            .with_wan_stream_cap(Rate::from_mbps(300.0))
            .with_proc_channel_cap(Rate::from_gbps(1.0))
            .with_per_file_overhead(SimDuration::from_millis(100))
            .with_slice(SimDuration::from_millis(100))
            .with_max_duration(SimDuration::from_secs(24 * 3600)),
        faults: None,
        background: None,
        estimator: None,
    };
    Environment {
        name: "FutureGrid".into(),
        env,
        path: futuregrid_path(),
        dataset_spec: paper_dataset_1g(),
        sweep_levels: vec![1, 2, 4, 6, 8, 10, 12],
        // 3.5 MB BDP: the operational class cuts sit at 10× / 100× BDP
        // (35 MB / 350 MB) — files below a few BDPs all behave "small".
        partition: PartitionConfig::default()
            .with_small_fraction(10.0)
            .with_large_fraction(100.0),
        reference_concurrency: 12,
    }
}

/// DIDCLAB: WS9 → WS6 over a departmental LAN, 1 Gbps, sub-millisecond RTT.
///
/// Single workstations with one disk each; concurrent accesses *degrade*
/// aggregate disk throughput (Figure 4's inverted shape). No loss on the
/// LAN, so a single stream can fill the wire — all tuning gains vanish and
/// concurrency only hurts.
pub fn didclab() -> Environment {
    let ws = ServerSpec::new(
        "ws",
        4,
        84.0,
        Rate::from_gbps(1.0),
        DiskSubsystem::Single {
            rate: Rate::from_mbps(700.0),
            contention_penalty: 0.18,
        },
    );
    let env = TransferEnv {
        link: Link::new(
            Rate::from_gbps(1.0),
            SimDuration::from_micros(200),
            Bytes::from_mb(32),
        ),
        src: Site::new("WS9", vec![ws.clone()]),
        dst: Site::new("WS6", vec![ws]),
        // Workstation utilization is dominated by moving bytes (user-space
        // copies on slow cores); thread bookkeeping is comparatively cheap.
        util: UtilizationCoeffs {
            base_cpu: 0.5,
            per_channel_cpu: 0.5,
            per_stream_cpu: 1.5,
            cpu_per_gbps: 10.0,
            oversub_penalty: 0.05,
            mem_base: 0.5,
            mem_per_gbps: 4.0,
            mem_per_stream: 0.1,
        },
        power: FineGrainedModel {
            cpu_scale: 1.3,
            c_memory: 0.02,
            c_disk: 0.02,
            c_nic: 0.02,
        },
        congestion: CongestionModel {
            saturation_streams: 16,
            overload_penalty: 0.01,
            floor: 0.7,
        },
        packets: PacketModel::default(),
        tuning: EngineTuning::default()
            .with_wan_stream_cap(Rate::from_gbps(1.0))
            .with_proc_channel_cap(Rate::from_gbps(1.0))
            .with_per_file_overhead(SimDuration::from_millis(30))
            .with_slice(SimDuration::from_millis(100))
            .with_max_duration(SimDuration::from_secs(24 * 3600)),
        faults: None,
        background: None,
        estimator: None,
    };
    Environment {
        name: "DIDCLAB".into(),
        env,
        path: didclab_path(),
        dataset_spec: paper_dataset_1g(),
        sweep_levels: vec![1, 2, 4, 6, 8, 10, 12],
        // 25 KB BDP: every file is "Large"; tuning has nothing to win.
        partition: PartitionConfig::default(),
        reference_concurrency: 1,
    }
}

/// All three testbeds in paper order.
pub fn all() -> Vec<Environment> {
    vec![xsede(), futuregrid(), didclab()]
}

/// Resolves a (case-insensitive) testbed name to its environment — the
/// shared lookup behind the CLI's `--testbed` flag and fleet job specs.
pub fn by_name(name: &str) -> Result<Environment, eadt_sim::EadtError> {
    match name.to_ascii_lowercase().as_str() {
        "xsede" => Ok(xsede()),
        "futuregrid" => Ok(futuregrid()),
        "didclab" => Ok(didclab()),
        other => Err(eadt_sim::EadtError::invalid_argument(
            "--testbed",
            format!("unknown testbed '{other}' (expected xsede, futuregrid or didclab)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xsede_matches_figure_1() {
        let t = xsede();
        assert_eq!(t.env.link.bandwidth, Rate::from_gbps(10.0));
        assert_eq!(t.env.link.rtt, SimDuration::from_millis(40));
        assert_eq!(t.env.link.tcp_buffer, Bytes::from_mb(32));
        assert_eq!(t.env.link.bdp(), Bytes::from_mb(50));
        assert_eq!(t.env.src.server_count(), 4);
        assert_eq!(t.env.src.servers[0].cores, 4);
    }

    #[test]
    fn futuregrid_matches_figure_1() {
        let t = futuregrid();
        assert_eq!(t.env.link.bandwidth, Rate::from_gbps(1.0));
        assert_eq!(t.env.link.rtt, SimDuration::from_millis(28));
        assert_eq!(t.env.link.bdp(), Bytes::from_mb_f64(3.5));
    }

    #[test]
    fn didclab_is_a_single_disk_lan() {
        let t = didclab();
        assert_eq!(t.env.src.server_count(), 1);
        assert!(matches!(
            t.env.src.servers[0].disk,
            DiskSubsystem::Single { .. }
        ));
        assert!(t.env.link.rtt < SimDuration::from_millis(1));
        assert_eq!(t.reference_concurrency, 1);
    }

    #[test]
    fn datasets_have_paper_volumes() {
        let x = xsede().dataset(1);
        assert!(
            (159.0..175.0).contains(&x.total_size().as_gb()),
            "{}",
            x.total_size()
        );
        let f = futuregrid().dataset(1);
        assert!(
            (39.0..48.0).contains(&f.total_size().as_gb()),
            "{}",
            f.total_size()
        );
    }

    #[test]
    fn datasets_are_deterministic() {
        assert_eq!(xsede().dataset(9), xsede().dataset(9));
        assert_ne!(xsede().dataset(9), xsede().dataset(10));
    }

    #[test]
    fn all_returns_three_testbeds() {
        let ts = all();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].name, "XSEDE");
        assert_eq!(ts[1].name, "FutureGrid");
        assert_eq!(ts[2].name, "DIDCLAB");
    }

    #[test]
    fn builtin_testbeds_validate_cleanly() {
        for tb in all() {
            assert!(tb.validate().is_empty(), "{}: {:?}", tb.name, tb.validate());
        }
    }

    #[test]
    fn validate_flags_broken_environments() {
        let mut tb = xsede();
        tb.env.tuning.wan_stream_cap = Rate::ZERO;
        tb.reference_concurrency = 0;
        let issues = tb.validate();
        assert!(
            issues.iter().any(|i| i.contains("per-stream")),
            "{issues:?}"
        );
        assert!(
            issues.iter().any(|i| i.contains("reference_concurrency")),
            "{issues:?}"
        );
    }

    #[test]
    fn environments_serde_round_trip() {
        for tb in all() {
            let json = serde_json::to_string(&tb).expect("serializable");
            let back: Environment = serde_json::from_str(&json).expect("parseable");
            assert_eq!(back, tb, "{} must round-trip", tb.name);
        }
    }

    #[test]
    fn optional_extensions_default_to_none_in_json() {
        // Hand-written environment files may omit faults/background/
        // estimator entirely.
        let tb = xsede();
        let mut v: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&tb).unwrap()).unwrap();
        let env = v.get_mut("env").unwrap().as_object_mut().unwrap();
        env.remove("faults");
        env.remove("background");
        env.remove("estimator");
        let back: Environment = serde_json::from_value(v).expect("defaults apply");
        assert_eq!(back.env.faults, None);
        assert_eq!(back.env.background, None);
    }

    #[test]
    fn paths_match_figure_9() {
        assert_eq!(xsede().path.hop_count(), 6);
        assert_eq!(didclab().path.hop_count(), 1);
    }
}
