//! Files and datasets.

use eadt_sim::Bytes;
use serde::{Deserialize, Serialize};

/// A single file to transfer: an identifier and a size.
///
/// The simulator never materialises file contents — the algorithms only ever
/// look at sizes, and the engine only moves byte counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FileSpec {
    /// Stable identifier, unique within a dataset.
    pub id: u32,
    /// File size.
    pub size: Bytes,
}

impl FileSpec {
    /// Creates a file spec.
    pub fn new(id: u32, size: Bytes) -> Self {
        FileSpec { id, size }
    }
}

/// An ordered collection of files, the unit a transfer request operates on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable label (shows up in reports).
    pub name: String,
    files: Vec<FileSpec>,
}

impl Dataset {
    /// Creates a dataset from a list of files.
    pub fn new(name: impl Into<String>, files: Vec<FileSpec>) -> Self {
        Dataset {
            name: name.into(),
            files,
        }
    }

    /// Creates a dataset from raw sizes, assigning sequential ids.
    pub fn from_sizes(name: impl Into<String>, sizes: impl IntoIterator<Item = Bytes>) -> Self {
        let files = sizes
            .into_iter()
            .enumerate()
            .map(|(i, size)| FileSpec::new(i as u32, size))
            .collect();
        Dataset {
            name: name.into(),
            files,
        }
    }

    /// The files, in order.
    pub fn files(&self) -> &[FileSpec] {
        &self.files
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// True when the dataset has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Sum of all file sizes.
    pub fn total_size(&self) -> Bytes {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Mean file size; zero for an empty dataset.
    pub fn avg_file_size(&self) -> Bytes {
        if self.files.is_empty() {
            Bytes::ZERO
        } else {
            Bytes(self.total_size().as_u64() / self.files.len() as u64)
        }
    }

    /// Largest file size; zero for an empty dataset.
    pub fn max_file_size(&self) -> Bytes {
        self.files
            .iter()
            .map(|f| f.size)
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Smallest file size; zero for an empty dataset.
    pub fn min_file_size(&self) -> Bytes {
        self.files
            .iter()
            .map(|f| f.size)
            .min()
            .unwrap_or(Bytes::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dataset() {
        let d = Dataset::default();
        assert!(d.is_empty());
        assert_eq!(d.total_size(), Bytes::ZERO);
        assert_eq!(d.avg_file_size(), Bytes::ZERO);
        assert_eq!(d.max_file_size(), Bytes::ZERO);
        assert_eq!(d.min_file_size(), Bytes::ZERO);
    }

    #[test]
    fn from_sizes_assigns_sequential_ids() {
        let d = Dataset::from_sizes("d", [Bytes::from_mb(1), Bytes::from_mb(2)]);
        assert_eq!(d.file_count(), 2);
        assert_eq!(d.files()[0].id, 0);
        assert_eq!(d.files()[1].id, 1);
    }

    #[test]
    fn aggregates() {
        let d = Dataset::from_sizes(
            "d",
            [Bytes::from_mb(1), Bytes::from_mb(2), Bytes::from_mb(6)],
        );
        assert_eq!(d.total_size(), Bytes::from_mb(9));
        assert_eq!(d.avg_file_size(), Bytes::from_mb(3));
        assert_eq!(d.max_file_size(), Bytes::from_mb(6));
        assert_eq!(d.min_file_size(), Bytes::from_mb(1));
    }
}
