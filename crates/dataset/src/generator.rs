//! Dataset generators reproducing the paper's workloads.
//!
//! §3: *"For 10 Gbps networks, the total size of dataset is 160 GB where
//! file sizes range between 3 MB – 20 GB and for 1 Gbps networks, the total
//! size of experiment dataset is 40 GB where file sizes range between
//! 3 MB – 5 GB."* File sizes are drawn log-uniformly so the mix spans the
//! Small/Medium/Large classes the way a real mixed scientific dataset does.

use crate::file::Dataset;
use eadt_sim::{Bytes, SimRng};
use serde::{Deserialize, Serialize};

/// Declarative description of a synthetic dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Label for reports.
    pub name: String,
    /// Target total volume; generation stops at the first file that reaches
    /// it (the total may overshoot by at most one file).
    pub total: Bytes,
    /// Smallest file size drawn.
    pub min_file: Bytes,
    /// Largest file size drawn.
    pub max_file: Bytes,
}

impl DatasetSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, total: Bytes, min_file: Bytes, max_file: Bytes) -> Self {
        DatasetSpec {
            name: name.into(),
            total,
            min_file,
            max_file,
        }
    }

    /// Generates a concrete dataset with log-uniform file sizes, clamped to
    /// `[min_file, max_file]`, stopping once `total` is reached.
    ///
    /// Deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut rng = SimRng::new(seed).fork("dataset-generator");
        let mut sizes = Vec::new();
        let mut acc: u64 = 0;
        let lo = self.min_file.as_f64().max(1.0);
        let hi = self.max_file.as_f64().max(lo + 1.0);
        while acc < self.total.as_u64() {
            let draw = rng.log_uniform(lo, hi).round() as u64;
            let size = draw.clamp(self.min_file.as_u64().max(1), self.max_file.as_u64());
            sizes.push(Bytes(size));
            acc += size;
        }
        Dataset::from_sizes(self.name.clone(), sizes)
    }
}

/// A dataset assembled from several [`DatasetSpec`] components, each
/// contributing a controlled byte volume from its own size range.
///
/// A single log-uniform draw over three decades puts almost all *bytes*
/// into the largest files; the paper's mixed workloads clearly carried
/// substantial byte volume in every size class (otherwise the per-chunk
/// scheduling it evaluates would be moot), so the reference datasets pin
/// the per-class volumes explicitly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetMix {
    /// Label for reports.
    pub name: String,
    /// The component ranges.
    pub components: Vec<DatasetSpec>,
}

impl DatasetMix {
    /// Generates the concatenated dataset (ids re-assigned globally, files
    /// shuffled deterministically so classes interleave like a real
    /// directory tree).
    pub fn generate(&self, seed: u64) -> Dataset {
        let mut sizes: Vec<Bytes> = Vec::new();
        for (i, spec) in self.components.iter().enumerate() {
            let d = spec.generate(seed.wrapping_add(i as u64 * 0x9e37_79b9));
            sizes.extend(d.files().iter().map(|f| f.size));
        }
        let mut rng = SimRng::new(seed).fork("dataset-mix-shuffle");
        rng.shuffle(&mut sizes);
        Dataset::from_sizes(self.name.clone(), sizes)
    }

    /// Target total volume across components.
    pub fn total(&self) -> Bytes {
        self.components.iter().map(|c| c.total).sum()
    }

    /// A copy with every component's target volume scaled by `factor`
    /// (file-size ranges unchanged). Tests and micro-benchmarks use scaled
    /// mixes to keep runs quick while preserving the class structure.
    pub fn scaled(&self, factor: f64) -> DatasetMix {
        let factor = factor.max(0.0);
        DatasetMix {
            name: format!("{} ×{:.3}", self.name, factor),
            components: self
                .components
                .iter()
                .map(|c| DatasetSpec {
                    name: c.name.clone(),
                    total: Bytes((c.total.as_f64() * factor).round() as u64),
                    min_file: c.min_file,
                    max_file: c.max_file,
                })
                .collect(),
        }
    }
}

/// The paper's 10 Gbps workload: 160 GB, files of 3 MB – 20 GB, with
/// byte volume spread across the Small/Medium/Large classes of a 50 MB-BDP
/// path (48 / 40 / 72 GB).
pub fn paper_dataset_10g() -> DatasetMix {
    DatasetMix {
        name: "paper-10g (160 GB, 3 MB – 20 GB)".into(),
        components: vec![
            DatasetSpec::new(
                "small",
                Bytes::from_gb(48),
                Bytes::from_mb(3),
                Bytes::from_mb(6),
            ),
            DatasetSpec::new(
                "medium",
                Bytes::from_gb(40),
                Bytes::from_mb(12),
                Bytes::from_mb(45),
            ),
            DatasetSpec::new(
                "large",
                Bytes::from_gb(72),
                Bytes::from_mb(60),
                Bytes::from_gb(20),
            ),
        ],
    }
}

/// The paper's 1 Gbps workload: 40 GB, files of 3 MB – 5 GB (3.5 MB BDP on
/// FutureGrid: byte volume split between near-BDP files and bulk files).
pub fn paper_dataset_1g() -> DatasetMix {
    DatasetMix {
        name: "paper-1g (40 GB, 3 MB – 5 GB)".into(),
        components: vec![
            DatasetSpec::new(
                "small",
                Bytes::from_gb(14),
                Bytes::from_mb(3),
                Bytes::from_mb(8),
            ),
            DatasetSpec::new(
                "medium",
                Bytes::from_gb(20),
                Bytes::from_mb(10),
                Bytes::from_mb(80),
            ),
            DatasetSpec::new(
                "large",
                Bytes::from_gb(6),
                Bytes::from_mb(100),
                Bytes::from_gb(5),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{partition, PartitionConfig};

    #[test]
    fn generator_is_deterministic() {
        let spec = paper_dataset_1g();
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = paper_dataset_1g();
        assert_ne!(spec.generate(1), spec.generate(2));
    }

    #[test]
    fn component_total_reaches_target_without_large_overshoot() {
        let spec = DatasetSpec::new(
            "c",
            Bytes::from_gb(10),
            Bytes::from_mb(3),
            Bytes::from_gb(1),
        );
        let d = spec.generate(3);
        let total = d.total_size().as_u64();
        assert!(total >= spec.total.as_u64());
        assert!(total < spec.total.as_u64() + spec.max_file.as_u64());
    }

    #[test]
    fn sizes_respect_bounds_10g() {
        let mix = paper_dataset_10g();
        let d = mix.generate(5);
        for f in d.files() {
            assert!(f.size >= Bytes::from_mb(3), "{:?}", f);
            assert!(f.size <= Bytes::from_gb(20), "{:?}", f);
        }
    }

    #[test]
    fn mix_class_byte_shares_are_balanced_on_xsede_bdp() {
        // The point of the mix: every class carries real byte volume
        // relative to a 50 MB BDP (small < 10 MB, large >= 50 MB).
        let d = paper_dataset_10g().generate(42);
        let chunks = partition(&d, Bytes::from_mb(50), &PartitionConfig::default());
        assert_eq!(chunks.len(), 3);
        let total = d.total_size().as_f64();
        for c in &chunks {
            let share = c.total_size().as_f64() / total;
            assert!(share > 0.15, "{:?} share={share}", c.class);
        }
    }

    #[test]
    fn paper_10g_mix_spans_all_classes() {
        // On a 50 MB-BDP path the paper's 10G dataset must produce Small,
        // Medium and Large chunks — the whole point of the mixed workload.
        let d = paper_dataset_10g().generate(42);
        let chunks = partition(&d, Bytes::from_mb(50), &PartitionConfig::default());
        assert_eq!(
            chunks.len(),
            3,
            "expected all three classes: {:?}",
            chunks
                .iter()
                .map(|c| (c.class, c.file_count()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn paper_1g_totals_are_40gb_scale() {
        let d = paper_dataset_1g().generate(42);
        let gb = d.total_size().as_gb();
        assert!((40.0..46.0).contains(&gb), "gb={gb}");
        assert!(d.file_count() > 10, "mixed dataset should have many files");
    }

    #[test]
    fn degenerate_range_still_terminates() {
        let spec = DatasetSpec::new(
            "deg",
            Bytes::from_mb(10),
            Bytes::from_mb(5),
            Bytes::from_mb(5),
        );
        let d = spec.generate(1);
        assert_eq!(d.file_count(), 2);
        for f in d.files() {
            assert_eq!(f.size, Bytes::from_mb(5));
        }
    }
}
