//! Property-based tests of partitioning and generation.

use crate::chunk::{partition, partition_globus_online, Chunk, PartitionConfig};
use crate::file::Dataset;
use crate::generator::DatasetSpec;
use eadt_sim::Bytes;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(1u64..30_000, 0..80)
        .prop_map(|kbs| Dataset::from_sizes("prop", kbs.into_iter().map(Bytes::from_kb)))
}

fn config_strategy() -> impl Strategy<Value = PartitionConfig> {
    (0.05f64..0.9, 1.0f64..20.0, 1usize..6, 0.0f64..0.05).prop_map(
        |(small, large_mult, min_files, min_frac)| PartitionConfig {
            small_fraction: small,
            large_fraction: small + large_mult,
            min_files,
            min_bytes_fraction: min_frac,
        },
    )
}

proptest! {
    #[test]
    fn partition_conserves_files_and_bytes(
        d in dataset_strategy(),
        config in config_strategy(),
        bdp_mb in 1u64..200,
    ) {
        let chunks = partition(&d, Bytes::from_mb(bdp_mb), &config);
        let files: usize = chunks.iter().map(Chunk::file_count).sum();
        prop_assert_eq!(files, d.file_count());
        let bytes: Bytes = chunks.iter().map(|c| c.total_size()).sum();
        prop_assert_eq!(bytes, d.total_size());
        // Every file id appears exactly once.
        let mut ids: Vec<u32> = chunks.iter().flat_map(|c| c.files().iter().map(|f| f.id)).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), d.file_count());
    }

    #[test]
    fn partition_yields_no_empty_chunks(
        d in dataset_strategy(),
        config in config_strategy(),
        bdp_mb in 1u64..200,
    ) {
        for c in partition(&d, Bytes::from_mb(bdp_mb), &config) {
            prop_assert!(!c.is_empty());
            prop_assert!(c.weight() >= 0.0);
        }
    }

    #[test]
    fn merge_respects_min_files_when_multiple_chunks_survive(
        d in dataset_strategy(),
        min_files in 1usize..5,
        bdp_mb in 1u64..100,
    ) {
        let config = PartitionConfig { min_files, min_bytes_fraction: 0.0, ..Default::default() };
        let chunks = partition(&d, Bytes::from_mb(bdp_mb), &config);
        if chunks.len() > 1 {
            for c in &chunks {
                prop_assert!(c.file_count() >= min_files,
                    "undersized chunk survived: {} files < {}", c.file_count(), min_files);
            }
        }
    }

    #[test]
    fn globus_online_partition_conserves(d in dataset_strategy()) {
        let chunks = partition_globus_online(&d);
        let files: usize = chunks.iter().map(Chunk::file_count).sum();
        prop_assert_eq!(files, d.file_count());
    }

    #[test]
    fn generated_datasets_respect_spec(
        seed in 0u64..200, total_mb in 1u64..2_000, lo_mb in 1u64..10, span in 2u64..100
    ) {
        let spec = DatasetSpec::new(
            "p",
            Bytes::from_mb(total_mb),
            Bytes::from_mb(lo_mb),
            Bytes::from_mb(lo_mb * span),
        );
        let d = spec.generate(seed);
        prop_assert!(d.total_size() >= spec.total);
        prop_assert!(d.total_size().as_u64() < spec.total.as_u64() + spec.max_file.as_u64());
        for f in d.files() {
            prop_assert!(f.size >= spec.min_file && f.size <= spec.max_file);
        }
    }

    #[test]
    fn chunk_weight_monotone_in_file_count(n in 2usize..200, mb in 1u64..100) {
        use crate::chunk::SizeClass;
        use crate::file::FileSpec;
        let small = Chunk::new(
            SizeClass::Small,
            (0..n as u32).map(|i| FileSpec::new(i, Bytes::from_mb(mb))).collect(),
        );
        let bigger = Chunk::new(
            SizeClass::Small,
            (0..(2 * n) as u32).map(|i| FileSpec::new(i, Bytes::from_mb(mb))).collect(),
        );
        prop_assert!(bigger.weight() >= small.weight());
    }
}
