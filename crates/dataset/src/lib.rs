//! Datasets and BDP-based chunk partitioning.
//!
//! Every algorithm in the paper starts the same way: fetch the file list,
//! compute the bandwidth-delay product, and partition the dataset into
//! *Small*, *Medium* and *Large* chunks relative to the BDP (`partitionFiles`
//! in Algorithms 1–3), merging chunks that are too small to be scheduled
//! separately (`mergeChunks`, §2.3). This crate implements those pieces plus
//! the dataset generators used to recreate the paper's workloads
//! (160 GB of 3 MB–20 GB files for 10 Gbps testbeds, 40 GB of 3 MB–5 GB
//! files for 1 Gbps testbeds).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod file;
pub mod generator;
#[cfg(test)]
mod proptests;

pub use chunk::{partition, partition_globus_online, Chunk, PartitionConfig, SizeClass};
pub use file::{Dataset, FileSpec};
pub use generator::{paper_dataset_10g, paper_dataset_1g, DatasetMix, DatasetSpec};
