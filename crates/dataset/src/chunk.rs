//! BDP-relative dataset partitioning (`partitionFiles` + `mergeChunks`).
//!
//! The paper's algorithms never use one parameter set for a whole mixed
//! dataset. They first split it into three chunks by comparing each file
//! size to the bandwidth-delay product:
//!
//! * **Small** — files far below the BDP, which benefit from pipelining
//!   (the per-file control-channel round trip dominates otherwise);
//! * **Medium** — files of the same order as the BDP;
//! * **Large** — files above the BDP, which benefit from parallel streams
//!   (when the TCP buffer is below the BDP) and are the main energy sink.
//!
//! A chunk with too few files or too few bytes is not worth scheduling
//! separately, so `mergeChunks` folds it into its neighbour class (§2.3).
//!
//! [`partition_globus_online`] implements the *fixed* partitioning Globus
//! Online uses as a baseline: < 50 MB, 50–250 MB, > 250 MB — independent of
//! the network.

use crate::file::{Dataset, FileSpec};
use eadt_sim::Bytes;
use serde::{Deserialize, Serialize};

/// The three BDP-relative size classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// Files well below the BDP.
    Small,
    /// Files comparable to the BDP.
    Medium,
    /// Files at or above the BDP.
    Large,
}

impl SizeClass {
    /// All classes in ascending size order.
    pub const ALL: [SizeClass; 3] = [SizeClass::Small, SizeClass::Medium, SizeClass::Large];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SizeClass::Small => "Small",
            SizeClass::Medium => "Medium",
            SizeClass::Large => "Large",
        }
    }
}

/// Thresholds controlling [`partition`].
///
/// Non-exhaustive: build one with [`PartitionConfig::default`] and the
/// `with_*` setters so new thresholds can land without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct PartitionConfig {
    /// Files with `size < small_fraction × BDP` are Small.
    pub small_fraction: f64,
    /// Files with `size < large_fraction × BDP` are Medium; the rest Large.
    pub large_fraction: f64,
    /// `mergeChunks`: a chunk with fewer files than this is merged away.
    pub min_files: usize,
    /// `mergeChunks`: a chunk holding less than this fraction of the total
    /// dataset bytes is merged away. The paper's rule is count-based, so
    /// this defaults to 0 (disabled); it exists as an ablation knob.
    pub min_bytes_fraction: f64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            small_fraction: 0.2,
            large_fraction: 1.0,
            min_files: 2,
            min_bytes_fraction: 0.0,
        }
    }
}

impl PartitionConfig {
    /// Sets the Small-class threshold (fraction of BDP).
    pub fn with_small_fraction(mut self, small_fraction: f64) -> Self {
        self.small_fraction = small_fraction;
        self
    }

    /// Sets the Medium/Large boundary (fraction of BDP).
    pub fn with_large_fraction(mut self, large_fraction: f64) -> Self {
        self.large_fraction = large_fraction;
        self
    }

    /// Sets the `mergeChunks` minimum file count.
    pub fn with_min_files(mut self, min_files: usize) -> Self {
        self.min_files = min_files;
        self
    }

    /// Sets the `mergeChunks` minimum byte fraction.
    pub fn with_min_bytes_fraction(mut self, min_bytes_fraction: f64) -> Self {
        self.min_bytes_fraction = min_bytes_fraction;
        self
    }
}

/// A contiguous class of files scheduled with one parameter combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// The size class this chunk represents after merging. A merged chunk
    /// keeps the class of its dominant (larger-byte-count) contributor.
    pub class: SizeClass,
    files: Vec<FileSpec>,
    total: Bytes,
}

impl Chunk {
    /// Creates a chunk from files (order preserved).
    pub fn new(class: SizeClass, files: Vec<FileSpec>) -> Self {
        let total = files.iter().map(|f| f.size).sum();
        Chunk {
            class,
            files,
            total,
        }
    }

    /// Files in this chunk.
    pub fn files(&self) -> &[FileSpec] {
        &self.files
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Total bytes in the chunk.
    pub fn total_size(&self) -> Bytes {
        self.total
    }

    /// Mean file size (`findAverage` in Algorithm 1); zero when empty.
    pub fn avg_file_size(&self) -> Bytes {
        if self.files.is_empty() {
            Bytes::ZERO
        } else {
            Bytes(self.total.as_u64() / self.files.len() as u64)
        }
    }

    /// True when the chunk holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The HTEE chunk weight: `log(size) × log(fileCount)` (Algorithm 2,
    /// line 7). Sizes are taken in MB and counts as-is; both logs are
    /// clamped at ≥ 0 so single-file or sub-MB chunks do not produce
    /// negative weights.
    pub fn weight(&self) -> f64 {
        if self.files.is_empty() {
            return 0.0;
        }
        let size_term = self.total.as_mb().max(1.0).log10();
        let count_term = (self.files.len() as f64).max(1.0).log10();
        // A chunk with one file still deserves a channel: floor the count
        // term the way the authors' implementation does (log10(1) = 0 would
        // starve single-file chunks entirely).
        (size_term.max(0.0)) * (count_term.max(0.3))
    }

    fn absorb(&mut self, other: Chunk) {
        // Keep the class of the larger contributor.
        if other.total > self.total {
            self.class = other.class;
        }
        self.files.extend(other.files);
        self.files.sort_by_key(|f| f.id);
        self.total += other.total;
    }
}

/// Splits `dataset` into up to three chunks relative to `bdp`
/// (`partitionFiles`), then merges undersized chunks (`mergeChunks`).
///
/// The result is ordered Small → Large and contains no empty chunks; a
/// uniform dataset may legitimately collapse to a single chunk. An empty
/// dataset yields no chunks.
///
/// ```
/// use eadt_dataset::{partition, Dataset, PartitionConfig, SizeClass};
/// use eadt_sim::Bytes;
///
/// let mut sizes = vec![Bytes::from_mb(4); 10];   // Small on a 50 MB BDP
/// sizes.extend(vec![Bytes::from_gb(2); 4]);      // Large
/// let dataset = Dataset::from_sizes("mixed", sizes);
/// let chunks = partition(&dataset, Bytes::from_mb(50), &PartitionConfig::default());
/// assert_eq!(chunks.len(), 2);
/// assert_eq!(chunks[0].class, SizeClass::Small);
/// assert_eq!(chunks[1].class, SizeClass::Large);
/// ```
pub fn partition(dataset: &Dataset, bdp: Bytes, config: &PartitionConfig) -> Vec<Chunk> {
    let small_cut = (bdp.as_f64() * config.small_fraction) as u64;
    let large_cut = (bdp.as_f64() * config.large_fraction) as u64;
    partition_by(dataset, config, |size| {
        if size.as_u64() < small_cut {
            SizeClass::Small
        } else if size.as_u64() < large_cut {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    })
}

/// The fixed Globus Online partitioning: Small < 50 MB ≤ Medium ≤ 250 MB <
/// Large, independent of network characteristics.
pub fn partition_globus_online(dataset: &Dataset) -> Vec<Chunk> {
    let config = PartitionConfig {
        min_files: 1,
        min_bytes_fraction: 0.0,
        ..Default::default()
    };
    partition_by(dataset, &config, |size| {
        if size < Bytes::from_mb(50) {
            SizeClass::Small
        } else if size <= Bytes::from_mb(250) {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    })
}

fn partition_by(
    dataset: &Dataset,
    config: &PartitionConfig,
    classify: impl Fn(Bytes) -> SizeClass,
) -> Vec<Chunk> {
    let mut buckets: [Vec<FileSpec>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for f in dataset.files() {
        let idx = match classify(f.size) {
            SizeClass::Small => 0,
            SizeClass::Medium => 1,
            SizeClass::Large => 2,
        };
        buckets[idx].push(*f);
    }
    let total_bytes = dataset.total_size().as_f64();
    let mut chunks: Vec<Chunk> = buckets
        .into_iter()
        .zip(SizeClass::ALL)
        .filter(|(files, _)| !files.is_empty())
        .map(|(files, class)| Chunk::new(class, files))
        .collect();

    // mergeChunks: fold undersized chunks into their nearest neighbour.
    loop {
        if chunks.len() <= 1 {
            break;
        }
        let undersized = chunks.iter().position(|c| {
            c.file_count() < config.min_files
                || (total_bytes > 0.0
                    && c.total_size().as_f64() / total_bytes < config.min_bytes_fraction)
        });
        let Some(i) = undersized else { break };
        // Merge into the adjacent chunk (prefer the next-larger class; the
        // last chunk merges downward).
        let target = if i + 1 < chunks.len() { i + 1 } else { i - 1 };
        let small = chunks.remove(i);
        let target = if target > i { target - 1 } else { target };
        chunks[target].absorb(small);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_dataset() -> Dataset {
        // BDP will be 50 MB: smalls (< 10 MB), mediums (10–50 MB), larges.
        let mut sizes = Vec::new();
        for _ in 0..20 {
            sizes.push(Bytes::from_mb(3));
        }
        for _ in 0..10 {
            sizes.push(Bytes::from_mb(20));
        }
        for _ in 0..5 {
            sizes.push(Bytes::from_gb(2));
        }
        Dataset::from_sizes("mixed", sizes)
    }

    #[test]
    fn partition_classifies_by_bdp() {
        let d = mixed_dataset();
        let chunks = partition(&d, Bytes::from_mb(50), &PartitionConfig::default());
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].class, SizeClass::Small);
        assert_eq!(chunks[0].file_count(), 20);
        assert_eq!(chunks[1].class, SizeClass::Medium);
        assert_eq!(chunks[1].file_count(), 10);
        assert_eq!(chunks[2].class, SizeClass::Large);
        assert_eq!(chunks[2].file_count(), 5);
    }

    #[test]
    fn partition_preserves_every_file_exactly_once() {
        let d = mixed_dataset();
        let chunks = partition(&d, Bytes::from_mb(50), &PartitionConfig::default());
        let mut ids: Vec<u32> = chunks
            .iter()
            .flat_map(|c| c.files().iter().map(|f| f.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..d.file_count() as u32).collect::<Vec<_>>());
        let total: Bytes = chunks.iter().map(|c| c.total_size()).sum();
        assert_eq!(total, d.total_size());
    }

    #[test]
    fn merge_chunks_folds_tiny_chunk_into_neighbour() {
        // One lone medium file among many smalls and larges.
        let mut sizes = vec![Bytes::from_mb(30)]; // 1 medium, below min_files=2
        for _ in 0..10 {
            sizes.push(Bytes::from_mb(1));
        }
        for _ in 0..10 {
            sizes.push(Bytes::from_gb(1));
        }
        let d = Dataset::from_sizes("m", sizes);
        let chunks = partition(&d, Bytes::from_mb(50), &PartitionConfig::default());
        assert_eq!(chunks.len(), 2);
        // The medium file went into the Large chunk (next-larger neighbour).
        assert_eq!(chunks[1].file_count(), 11);
        // All files still accounted for.
        let n: usize = chunks.iter().map(Chunk::file_count).sum();
        assert_eq!(n, d.file_count());
    }

    #[test]
    fn merge_respects_byte_fraction() {
        // The Small chunk has many files but a negligible byte share.
        let mut sizes = Vec::new();
        for _ in 0..5 {
            sizes.push(Bytes::from_kb(1));
        }
        for _ in 0..10 {
            sizes.push(Bytes::from_gb(10));
        }
        let d = Dataset::from_sizes("tiny-smalls", sizes);
        let config = PartitionConfig {
            min_bytes_fraction: 0.01,
            ..Default::default()
        };
        let chunks = partition(&d, Bytes::from_mb(50), &config);
        assert_eq!(
            chunks.len(),
            1,
            "tiny byte-share chunk should merge: {chunks:?}"
        );
        assert_eq!(chunks[0].class, SizeClass::Large);
    }

    #[test]
    fn uniform_dataset_collapses_to_one_chunk() {
        let d = Dataset::from_sizes("uniform", vec![Bytes::from_gb(1); 8]);
        let chunks = partition(&d, Bytes::from_mb(50), &PartitionConfig::default());
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].class, SizeClass::Large);
    }

    #[test]
    fn empty_dataset_yields_no_chunks() {
        let chunks = partition(
            &Dataset::default(),
            Bytes::from_mb(50),
            &PartitionConfig::default(),
        );
        assert!(chunks.is_empty());
    }

    #[test]
    fn globus_online_uses_fixed_thresholds() {
        let d = Dataset::from_sizes(
            "go",
            [
                Bytes::from_mb(10),  // small
                Bytes::from_mb(49),  // small
                Bytes::from_mb(50),  // medium
                Bytes::from_mb(250), // medium
                Bytes::from_mb(251), // large
                Bytes::from_gb(5),   // large
            ],
        );
        let chunks = partition_globus_online(&d);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].file_count(), 2);
        assert_eq!(chunks[1].file_count(), 2);
        assert_eq!(chunks[2].file_count(), 2);
    }

    #[test]
    fn chunk_stats() {
        let c = Chunk::new(
            SizeClass::Medium,
            vec![
                FileSpec::new(0, Bytes::from_mb(10)),
                FileSpec::new(1, Bytes::from_mb(30)),
            ],
        );
        assert_eq!(c.total_size(), Bytes::from_mb(40));
        assert_eq!(c.avg_file_size(), Bytes::from_mb(20));
        assert!(!c.is_empty());
    }

    #[test]
    fn weight_grows_with_size_and_count() {
        let small = Chunk::new(
            SizeClass::Small,
            (0..10)
                .map(|i| FileSpec::new(i, Bytes::from_mb(5)))
                .collect(),
        );
        let large = Chunk::new(
            SizeClass::Large,
            (0..100)
                .map(|i| FileSpec::new(i, Bytes::from_gb(1)))
                .collect(),
        );
        assert!(large.weight() > small.weight());
        assert!(small.weight() > 0.0);
    }

    #[test]
    fn weight_of_single_file_chunk_is_positive() {
        let c = Chunk::new(SizeClass::Large, vec![FileSpec::new(0, Bytes::from_gb(20))]);
        assert!(
            c.weight() > 0.0,
            "single-file chunks must still get channels"
        );
    }

    #[test]
    fn weight_of_empty_chunk_is_zero() {
        let c = Chunk::new(SizeClass::Small, Vec::new());
        assert_eq!(c.weight(), 0.0);
    }

    #[test]
    fn class_labels() {
        assert_eq!(SizeClass::Small.label(), "Small");
        assert_eq!(SizeClass::Medium.label(), "Medium");
        assert_eq!(SizeClass::Large.label(), "Large");
    }
}
