//! Network-infrastructure energy accounting (paper §4).
//!
//! The proposed algorithms tune end-system parameters, but §4 checks they
//! do not backfire inside the network. Three pieces are reproduced:
//!
//! * [`device`] — the four device classes of **Table 1** with their
//!   per-packet processing (`P_p`) and store-and-forward (`P_s−f`)
//!   coefficients from Vishwanath et al., plus representative idle powers;
//! * [`dynmodel`] — the three families of **Figure 8** relating traffic
//!   rate to dynamic device power: non-linear (sub-linear), linear, and
//!   state-based, with the §4 algebra (quadrupling the rate halves energy
//!   under the square-root model and leaves it unchanged under the linear
//!   one);
//! * [`topology`] — the **Figure 9** device paths of the XSEDE, FutureGrid
//!   and DIDCLAB testbeds;
//! * [`account`] — **Eq. 4/5** energy accounting over a transfer and the
//!   end-system vs. network decomposition of **Figure 10**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod device;
pub mod dynmodel;
pub mod topology;

pub use account::{
    decompose, path_breakdown, path_energy_joules, transfer_dynamic_energy, EnergyDecomposition,
};
pub use device::DeviceKind;
pub use dynmodel::DynamicPowerModel;
pub use topology::{didclab_path, futuregrid_path, xsede_path, NetworkPath};
