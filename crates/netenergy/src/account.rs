//! Eq. 4/5 energy accounting and the Figure 10 decomposition.
//!
//! Eq. 4: `E_T = P_i·T + P_d·T_d` — idle plus dynamic energy over a
//! transfer. Eq. 5 supplies the dynamic part from packet counts:
//! `P = P_idle + packetCount × (P_p + P_s−f)`. The algorithm comparisons
//! use only the load-dependent term, because idle power does not depend on
//! how the transfer is tuned (§4).

use crate::topology::NetworkPath;
use eadt_sim::Bytes;
use serde::{Deserialize, Serialize};

/// Load-dependent network energy (Joules) for pushing `packets` through
/// every device of `path` (Eq. 5 without the idle term).
pub fn path_energy_joules(path: &NetworkPath, packets: u64) -> f64 {
    path.per_packet_energy_joules() * packets as f64
}

/// Per-device energy breakdown for `packets` traversing `path`, in hop
/// order: `(device, load-dependent Joules)`.
pub fn path_breakdown(path: &NetworkPath, packets: u64) -> Vec<(crate::device::DeviceKind, f64)> {
    path.devices
        .iter()
        .map(|d| (*d, d.per_packet_energy_joules() * packets as f64))
        .collect()
}

/// Network dynamic energy of a whole transfer under one of the Figure 8
/// families: every device on the path runs at the transfer's
/// `rate_fraction` of its line speed for `duration_at_full_rate_secs / u`.
///
/// This is the §4 what-if: the same bytes, accounted under the non-linear,
/// linear and state-based assumptions. Under the non-linear family,
/// pushing data faster (larger `rate_fraction`) costs *less* total energy;
/// under the linear family it makes no difference.
pub fn transfer_dynamic_energy(
    path: &NetworkPath,
    model: crate::dynmodel::DynamicPowerModel,
    rate_fraction: f64,
    duration_at_full_rate_secs: f64,
) -> f64 {
    path.devices
        .iter()
        .map(|d| {
            model.dynamic_energy_joules(
                rate_fraction,
                d.max_dynamic_watts(),
                duration_at_full_rate_secs,
            )
        })
        .sum()
}

/// Full Eq. 4 energy including idle power over the transfer duration.
/// `duration_secs` is `T`; the dynamic part assumes the device forwards for
/// the whole transfer (`T_d = T`), which holds for a continuously busy
/// bulk transfer.
pub fn path_energy_with_idle_joules(path: &NetworkPath, packets: u64, duration_secs: f64) -> f64 {
    path.idle_watts() * duration_secs.max(0.0) + path_energy_joules(path, packets)
}

/// End-system vs. network split of one transfer's energy (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyDecomposition {
    /// End-system (sender + receiver) energy, Joules.
    pub end_system_joules: f64,
    /// Load-dependent network-infrastructure energy, Joules.
    pub network_joules: f64,
}

impl EnergyDecomposition {
    /// Total energy.
    pub fn total_joules(&self) -> f64 {
        self.end_system_joules + self.network_joules
    }

    /// End-system share in percent (0 when the total is zero).
    pub fn end_system_percent(&self) -> f64 {
        let total = self.total_joules();
        if total <= 0.0 {
            0.0
        } else {
            100.0 * self.end_system_joules / total
        }
    }

    /// Network share in percent.
    pub fn network_percent(&self) -> f64 {
        let total = self.total_joules();
        if total <= 0.0 {
            0.0
        } else {
            100.0 * self.network_joules / total
        }
    }
}

/// Builds the Figure 10 decomposition for a transfer of `bytes` with
/// measured end-system energy, using a path and a packet model.
pub fn decompose(
    end_system_joules: f64,
    path: &NetworkPath,
    bytes: Bytes,
    packet_model: &eadt_net::packets::PacketModel,
) -> EnergyDecomposition {
    let packets = packet_model.total_packets(bytes);
    EnergyDecomposition {
        end_system_joules,
        network_joules: path_energy_joules(path, packets),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{didclab_path, futuregrid_path, xsede_path};
    use eadt_net::packets::PacketModel;

    #[test]
    fn breakdown_sums_to_path_energy() {
        let p = futuregrid_path();
        let packets = 10_000_000;
        let rows = path_breakdown(&p, packets);
        assert_eq!(rows.len(), p.hop_count());
        let sum: f64 = rows.iter().map(|(_, j)| j).sum();
        assert!((sum - path_energy_joules(&p, packets)).abs() < 1e-9);
        // Each device's share follows its Table 1 coefficients exactly.
        for (d, j) in rows {
            let expect = d.per_packet_energy_joules() * packets as f64;
            assert!((j - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn path_energy_scales_linearly_with_packets() {
        let p = xsede_path();
        let e1 = path_energy_joules(&p, 1_000_000);
        let e2 = path_energy_joules(&p, 2_000_000);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn zero_packets_zero_dynamic_energy() {
        assert_eq!(path_energy_joules(&futuregrid_path(), 0), 0.0);
    }

    #[test]
    fn idle_term_dominates_total_energy() {
        // §4: idle power is 70–80% of device power in practice. For a
        // 10-minute 40 GB transfer the idle term must dwarf the dynamic one.
        let p = futuregrid_path();
        let packets = PacketModel::default().total_packets(Bytes::from_gb(40));
        let dynamic = path_energy_joules(&p, packets);
        let total = path_energy_with_idle_joules(&p, packets, 600.0);
        assert!(dynamic / total < 0.3, "dynamic share = {}", dynamic / total);
    }

    #[test]
    fn decomposition_percentages_sum_to_100() {
        let d = EnergyDecomposition {
            end_system_joules: 21_000.0,
            network_joules: 10_000.0,
        };
        assert!((d.end_system_percent() + d.network_percent() - 100.0).abs() < 1e-9);
        assert!((d.total_joules() - 31_000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_decomposition_is_zero_percent() {
        let d = EnergyDecomposition {
            end_system_joules: 0.0,
            network_joules: 0.0,
        };
        assert_eq!(d.end_system_percent(), 0.0);
        assert_eq!(d.network_percent(), 0.0);
    }

    #[test]
    fn end_system_share_dominates_on_every_testbed() {
        // Figure 10: at all testbeds the end systems consume much more than
        // the (load-dependent) network infrastructure.
        let pm = PacketModel::default();
        let cases = [
            (21_000.0, xsede_path(), Bytes::from_gb(160)),
            (2_200.0, futuregrid_path(), Bytes::from_gb(40)),
            (3_600.0, didclab_path(), Bytes::from_gb(40)),
        ];
        for (end_j, path, bytes) in cases {
            let d = decompose(end_j, &path, bytes, &pm);
            assert!(
                d.end_system_percent() > 50.0,
                "{}: end-system share {}",
                path.name,
                d.end_system_percent()
            );
        }
    }

    #[test]
    fn network_share_ordering_follows_figure_10() {
        // Per GB moved, network share: FutureGrid > XSEDE ≫ DIDCLAB.
        let pm = PacketModel::default();
        // Use per-GB end-system energies in the paper's ballpark.
        let xs = decompose(21_000.0, &xsede_path(), Bytes::from_gb(160), &pm);
        let fg = decompose(2_200.0, &futuregrid_path(), Bytes::from_gb(40), &pm);
        let lab = decompose(3_600.0, &didclab_path(), Bytes::from_gb(40), &pm);
        assert!(
            fg.network_percent() > xs.network_percent(),
            "fg={} xs={}",
            fg.network_percent(),
            xs.network_percent()
        );
        assert!(
            xs.network_percent() > lab.network_percent(),
            "xs={} lab={}",
            xs.network_percent(),
            lab.network_percent()
        );
    }

    #[test]
    fn nonlinear_family_rewards_fast_transfers_path_wide() {
        use crate::dynmodel::DynamicPowerModel;
        let p = futuregrid_path();
        // Moving the same bytes at full rate vs quarter rate.
        let slow = transfer_dynamic_energy(&p, DynamicPowerModel::NonLinear, 0.25, 60.0);
        let fast = transfer_dynamic_energy(&p, DynamicPowerModel::NonLinear, 1.0, 60.0);
        assert!((fast / slow - 0.5).abs() < 1e-9, "ratio {}", fast / slow);
        // Linear: rate-independent.
        let l_slow = transfer_dynamic_energy(&p, DynamicPowerModel::Linear, 0.25, 60.0);
        let l_fast = transfer_dynamic_energy(&p, DynamicPowerModel::Linear, 1.0, 60.0);
        assert!((l_slow - l_fast).abs() < 1e-9);
        // Magnitudes follow the per-device dynamic headroom.
        let expect: f64 = p.devices.iter().map(|d| d.max_dynamic_watts() * 60.0).sum();
        assert!((l_fast - expect).abs() < 1e-9);
    }

    #[test]
    fn negative_duration_is_clamped() {
        let p = didclab_path();
        assert_eq!(path_energy_with_idle_joules(&p, 0, -5.0), 0.0);
    }
}
