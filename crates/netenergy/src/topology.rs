//! The Figure 9 testbed topologies.
//!
//! Each testbed's transfer path is a sequence of network devices between
//! the source and destination hosts:
//!
//! * **XSEDE** (Gordon ↔ Stampede): edge switch → enterprise switch →
//!   edge router → Internet2 → edge router → enterprise switch → edge
//!   switch;
//! * **FutureGrid** (Hotel ↔ Alamo): edge switch → metro router → metro
//!   router → Internet2 → metro router → edge switch — the metro-router-
//!   heavy path whose network share of total energy is the largest
//!   (Figure 10);
//! * **DIDCLAB** (WS9 ↔ WS6): a single LAN switch.

use crate::device::DeviceKind;
use serde::{Deserialize, Serialize};

/// An ordered list of devices a transfer's packets traverse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPath {
    /// Path label (testbed name).
    pub name: String,
    /// Devices in hop order.
    pub devices: Vec<DeviceKind>,
}

impl NetworkPath {
    /// Creates a path.
    pub fn new(name: impl Into<String>, devices: Vec<DeviceKind>) -> Self {
        NetworkPath {
            name: name.into(),
            devices,
        }
    }

    /// Number of hops (devices).
    pub fn hop_count(&self) -> usize {
        self.devices.len()
    }

    /// Load-dependent energy per forwarded packet over the whole path,
    /// Joules.
    pub fn per_packet_energy_joules(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.per_packet_energy_joules())
            .sum()
    }

    /// Total idle power of all devices on the path, Watts.
    pub fn idle_watts(&self) -> f64 {
        self.devices.iter().map(|d| d.idle_watts()).sum()
    }

    /// How many devices of `kind` the path contains.
    pub fn count(&self, kind: DeviceKind) -> usize {
        self.devices.iter().filter(|&&d| d == kind).count()
    }
}

/// The XSEDE Stampede ↔ Gordon path (Figure 9a).
pub fn xsede_path() -> NetworkPath {
    use DeviceKind::*;
    NetworkPath::new(
        "XSEDE (Stampede–Gordon)",
        vec![
            EdgeSwitch,
            EnterpriseSwitch,
            EdgeRouter,
            // Internet2 backbone modelled by its edge presence only; the
            // long-haul optical segments are out of scope of Table 1.
            EdgeRouter,
            EnterpriseSwitch,
            EdgeSwitch,
        ],
    )
}

/// The FutureGrid Alamo ↔ Hotel path (Figure 9b) — metro-router heavy.
pub fn futuregrid_path() -> NetworkPath {
    use DeviceKind::*;
    NetworkPath::new(
        "FutureGrid (Alamo–Hotel)",
        vec![
            EdgeSwitch,
            MetroRouter,
            MetroRouter,
            MetroRouter,
            EdgeSwitch,
        ],
    )
}

/// The DIDCLAB WS9 ↔ WS6 LAN path (Figure 9c): one switch.
pub fn didclab_path() -> NetworkPath {
    NetworkPath::new("DIDCLAB (WS9–WS6)", vec![DeviceKind::EnterpriseSwitch])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xsede_path_is_symmetric_and_metro_free() {
        let p = xsede_path();
        assert_eq!(p.hop_count(), 6);
        assert_eq!(p.count(DeviceKind::MetroRouter), 0);
        assert_eq!(p.count(DeviceKind::EdgeSwitch), 2);
        assert_eq!(p.count(DeviceKind::EdgeRouter), 2);
    }

    #[test]
    fn futuregrid_has_three_metro_routers() {
        let p = futuregrid_path();
        assert_eq!(p.count(DeviceKind::MetroRouter), 3);
    }

    #[test]
    fn didclab_is_one_switch() {
        let p = didclab_path();
        assert_eq!(p.hop_count(), 1);
        assert_eq!(p.devices[0], DeviceKind::EnterpriseSwitch);
    }

    #[test]
    fn per_packet_cost_ordering_matches_figure_10() {
        // Per packet, the metro-heavy FutureGrid path must cost more than
        // XSEDE's, and both dwarf the single LAN switch — the driver of the
        // network-share ordering in Figure 10.
        let fg = futuregrid_path().per_packet_energy_joules();
        let xs = xsede_path().per_packet_energy_joules();
        let lab = didclab_path().per_packet_energy_joules();
        assert!(lab < xs);
        assert!(
            fg > xs * 0.9,
            "FutureGrid per-packet cost should rival/exceed XSEDE: {fg} vs {xs}"
        );
    }

    #[test]
    fn path_energy_is_sum_of_devices() {
        let p = didclab_path();
        assert!(
            (p.per_packet_energy_joules()
                - DeviceKind::EnterpriseSwitch.per_packet_energy_joules())
            .abs()
                < 1e-18
        );
    }

    #[test]
    fn idle_watts_accumulate() {
        let p = futuregrid_path();
        let expect = 2.0 * 100.0 + 3.0 * 750.0;
        assert!((p.idle_watts() - expect).abs() < 1e-9);
    }
}
