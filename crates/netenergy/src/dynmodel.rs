//! The three dynamic-power families of Figure 8.
//!
//! Vendors do not publish power-vs-utilization curves, so §4 evaluates
//! device power under three assumptions about how dynamic power scales with
//! the traffic rate `u ∈ [0, 1]`:
//!
//! * **non-linear** — sub-linear (square-root) growth, after Mahadevan et
//!   al.'s edge-switch measurements: pushing data faster is energy-cheaper
//!   per byte, so *higher-throughput tuning saves network energy*;
//! * **linear** — power proportional to rate: total transfer energy is
//!   rate-independent;
//! * **state-based** — power steps up at discrete rate thresholds (link
//!   rate adaptation); its fitted regression line is linear, so it behaves
//!   like the linear case in aggregate.

use serde::{Deserialize, Serialize};

/// How a device's dynamic power responds to its traffic rate.
///
/// ```
/// use eadt_netenergy::DynamicPowerModel;
///
/// // §4's algebra: under the sub-linear model, quadrupling the transfer
/// // rate halves the dynamic energy; under the linear model it is neutral.
/// let slow = DynamicPowerModel::NonLinear.dynamic_energy_joules(0.25, 10.0, 100.0);
/// let fast = DynamicPowerModel::NonLinear.dynamic_energy_joules(1.0, 10.0, 100.0);
/// assert!((fast / slow - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DynamicPowerModel {
    /// Sub-linear: `P(u) = √u`.
    NonLinear,
    /// Proportional: `P(u) = u`.
    Linear,
    /// Discrete steps at 25% / 50% / 75% / 100% of line rate.
    StateBased,
}

impl DynamicPowerModel {
    /// All three families in Figure 8 order.
    pub const ALL: [DynamicPowerModel; 3] = [
        DynamicPowerModel::NonLinear,
        DynamicPowerModel::Linear,
        DynamicPowerModel::StateBased,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DynamicPowerModel::NonLinear => "non-linear",
            DynamicPowerModel::Linear => "linear",
            DynamicPowerModel::StateBased => "state-based",
        }
    }

    /// Fraction of the device's maximum *dynamic* power drawn at traffic
    /// rate `u` (fraction of line rate, clamped to `[0, 1]`).
    pub fn power_fraction(self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match self {
            DynamicPowerModel::NonLinear => u.sqrt(),
            DynamicPowerModel::Linear => u,
            DynamicPowerModel::StateBased => {
                // Four power states; each covers a quarter of the rate range.
                // The state ceilings lie on the y = u line so the fitted
                // regression of this staircase is linear (§4).
                if u <= 0.0 {
                    0.0
                } else if u <= 0.25 {
                    0.25
                } else if u <= 0.5 {
                    0.5
                } else if u <= 0.75 {
                    0.75
                } else {
                    1.0
                }
            }
        }
    }

    /// Dynamic energy (Joules) to move a fixed volume at rate fraction `u`,
    /// given the device's maximum dynamic power `p_max_watts` and the time
    /// `t_at_full_rate_secs` the transfer would take at full line rate.
    ///
    /// The transfer takes `t_full / u` seconds at rate `u`, drawing
    /// `p_max × fraction(u)`, i.e. the §4 algebra:
    /// non-linear → `E ∝ 1/√u` (faster is cheaper); linear → `E` constant.
    pub fn dynamic_energy_joules(self, u: f64, p_max_watts: f64, t_at_full_rate_secs: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        if u <= 0.0 {
            return 0.0;
        }
        let duration = t_at_full_rate_secs / u;
        p_max_watts * self.power_fraction(u) * duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_are_shared() {
        for m in DynamicPowerModel::ALL {
            assert_eq!(m.power_fraction(0.0), 0.0, "{}", m.label());
            assert_eq!(m.power_fraction(1.0), 1.0, "{}", m.label());
        }
    }

    #[test]
    fn nonlinear_dominates_linear_in_between() {
        // Figure 8: the non-linear curve sits above the linear one.
        for i in 1..10 {
            let u = i as f64 / 10.0;
            assert!(
                DynamicPowerModel::NonLinear.power_fraction(u)
                    >= DynamicPowerModel::Linear.power_fraction(u)
            );
        }
    }

    #[test]
    fn state_based_is_a_staircase() {
        let m = DynamicPowerModel::StateBased;
        assert_eq!(m.power_fraction(0.1), 0.25);
        assert_eq!(m.power_fraction(0.25), 0.25);
        assert_eq!(m.power_fraction(0.26), 0.5);
        assert_eq!(m.power_fraction(0.6), 0.75);
        assert_eq!(m.power_fraction(0.9), 1.0);
    }

    #[test]
    fn all_fractions_are_monotone_and_bounded() {
        for m in DynamicPowerModel::ALL {
            let mut prev = 0.0;
            for i in 0..=100 {
                let u = i as f64 / 100.0;
                let f = m.power_fraction(u);
                assert!((0.0..=1.0).contains(&f));
                assert!(f >= prev - 1e-12, "{} not monotone at {u}", m.label());
                prev = f;
            }
        }
    }

    #[test]
    fn inputs_outside_unit_interval_clamp() {
        assert_eq!(DynamicPowerModel::Linear.power_fraction(2.0), 1.0);
        assert_eq!(DynamicPowerModel::NonLinear.power_fraction(-1.0), 0.0);
    }

    #[test]
    fn paper_algebra_nonlinear_quadruple_rate_halves_energy() {
        // §4: "when the data transfer rate is increased to 4d ... the total
        // energy consumption becomes ... half of the base case."
        let m = DynamicPowerModel::NonLinear;
        let base = m.dynamic_energy_joules(0.25, 10.0, 100.0);
        let fast = m.dynamic_energy_joules(1.0, 10.0, 100.0);
        assert!((fast / base - 0.5).abs() < 1e-9, "ratio={}", fast / base);
    }

    #[test]
    fn paper_algebra_linear_energy_is_rate_independent() {
        let m = DynamicPowerModel::Linear;
        let slow = m.dynamic_energy_joules(0.2, 10.0, 100.0);
        let fast = m.dynamic_energy_joules(0.8, 10.0, 100.0);
        assert!((slow - fast).abs() < 1e-9);
        assert!((slow - 1000.0).abs() < 1e-9); // p_max × t_full
    }

    #[test]
    fn state_based_energy_at_state_ceilings_matches_linear() {
        let sb = DynamicPowerModel::StateBased;
        let lin = DynamicPowerModel::Linear;
        for u in [0.25, 0.5, 0.75, 1.0] {
            let a = sb.dynamic_energy_joules(u, 10.0, 100.0);
            let b = lin.dynamic_energy_joules(u, 10.0, 100.0);
            assert!((a - b).abs() < 1e-9, "u={u}");
        }
    }

    #[test]
    fn zero_rate_consumes_no_dynamic_energy() {
        for m in DynamicPowerModel::ALL {
            assert_eq!(m.dynamic_energy_joules(0.0, 10.0, 100.0), 0.0);
        }
    }
}
