//! The device catalog of Table 1.
//!
//! | Device                    | P_p (nW) | P_s−f (pW) |
//! |---------------------------|----------|------------|
//! | Enterprise Ethernet Switch|   40     |   0.42     |
//! | Edge Ethernet Switch      | 1571     |  14.1      |
//! | Metro IP Router           | 1375     |  21.6      |
//! | Edge IP Router            | 1707     |  15.3      |
//!
//! These are the load-dependent coefficients of Vishwanath et al.'s model
//! (Eq. 5): each forwarded packet costs `P_p` of processing plus `P_s−f`
//! of store-and-forward work. Idle power is listed for completeness —
//! §4 notes it constitutes 70–80% of device power but is *independent of
//! the transfer algorithm*, so the comparisons only use the load-dependent
//! part.

use serde::{Deserialize, Serialize};

/// The four network device classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Enterprise Ethernet switch (aggregation layer inside a site).
    EnterpriseSwitch,
    /// Edge Ethernet switch (first/last hop).
    EdgeSwitch,
    /// Metro IP router (regional backbone).
    MetroRouter,
    /// Edge IP router (site uplink).
    EdgeRouter,
}

impl DeviceKind {
    /// All device kinds, in Table 1 order.
    pub const ALL: [DeviceKind; 4] = [
        DeviceKind::EnterpriseSwitch,
        DeviceKind::EdgeSwitch,
        DeviceKind::MetroRouter,
        DeviceKind::EdgeRouter,
    ];

    /// Table 1 label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::EnterpriseSwitch => "Enterprise Ethernet Switch",
            DeviceKind::EdgeSwitch => "Edge Ethernet Switch",
            DeviceKind::MetroRouter => "Metro IP Router",
            DeviceKind::EdgeRouter => "Edge IP Router",
        }
    }

    /// Per-packet processing coefficient `P_p` in nanojoules per packet
    /// (Table 1, nW column).
    pub fn per_packet_processing_nj(self) -> f64 {
        match self {
            DeviceKind::EnterpriseSwitch => 40.0,
            DeviceKind::EdgeSwitch => 1571.0,
            DeviceKind::MetroRouter => 1375.0,
            DeviceKind::EdgeRouter => 1707.0,
        }
    }

    /// Per-packet store-and-forward coefficient `P_s−f` in picojoules per
    /// packet (Table 1, pW column).
    pub fn per_packet_store_forward_pj(self) -> f64 {
        match self {
            DeviceKind::EnterpriseSwitch => 0.42,
            DeviceKind::EdgeSwitch => 14.1,
            DeviceKind::MetroRouter => 21.6,
            DeviceKind::EdgeRouter => 15.3,
        }
    }

    /// Total load-dependent energy per forwarded packet, in Joules:
    /// `P_p + P_s−f` of Eq. 5.
    pub fn per_packet_energy_joules(self) -> f64 {
        self.per_packet_processing_nj() * 1e-9 + self.per_packet_store_forward_pj() * 1e-12
    }

    /// Representative idle (base) power in Watts — the `P_idle` of Eq. 5,
    /// reported by §4's citations as 70–80% of total device power. Not used
    /// in algorithm comparisons (it does not depend on the transfer), but
    /// needed to reproduce the "idle dominates" observation.
    pub fn idle_watts(self) -> f64 {
        match self {
            DeviceKind::EnterpriseSwitch => 150.0,
            DeviceKind::EdgeSwitch => 100.0,
            DeviceKind::MetroRouter => 750.0,
            DeviceKind::EdgeRouter => 500.0,
        }
    }

    /// Maximum *dynamic* power at full line rate, Watts. With idle power at
    /// 70–80% of the total (§4's citations), the dynamic headroom is about
    /// 30% of the idle figure.
    pub fn max_dynamic_watts(self) -> f64 {
        self.idle_watts() * 0.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_exact() {
        assert_eq!(
            DeviceKind::EnterpriseSwitch.per_packet_processing_nj(),
            40.0
        );
        assert_eq!(DeviceKind::EdgeSwitch.per_packet_processing_nj(), 1571.0);
        assert_eq!(DeviceKind::MetroRouter.per_packet_processing_nj(), 1375.0);
        assert_eq!(DeviceKind::EdgeRouter.per_packet_processing_nj(), 1707.0);
        assert_eq!(
            DeviceKind::EnterpriseSwitch.per_packet_store_forward_pj(),
            0.42
        );
        assert_eq!(DeviceKind::EdgeSwitch.per_packet_store_forward_pj(), 14.1);
        assert_eq!(DeviceKind::MetroRouter.per_packet_store_forward_pj(), 21.6);
        assert_eq!(DeviceKind::EdgeRouter.per_packet_store_forward_pj(), 15.3);
    }

    #[test]
    fn per_packet_energy_is_dominated_by_processing() {
        for kind in DeviceKind::ALL {
            let e = kind.per_packet_energy_joules();
            let p = kind.per_packet_processing_nj() * 1e-9;
            assert!(e >= p);
            assert!(
                e < p * 1.001,
                "{}: store-forward term should be tiny",
                kind.label()
            );
        }
    }

    #[test]
    fn edge_router_is_most_expensive_per_packet() {
        let max = DeviceKind::ALL
            .into_iter()
            .max_by(|a, b| {
                a.per_packet_energy_joules()
                    .total_cmp(&b.per_packet_energy_joules())
            })
            .unwrap();
        assert_eq!(max, DeviceKind::EdgeRouter);
    }

    #[test]
    fn metro_router_idles_hottest() {
        // §4: metro routers "consume the most power" among path devices.
        let max = DeviceKind::ALL
            .into_iter()
            .max_by(|a, b| a.idle_watts().total_cmp(&b.idle_watts()))
            .unwrap();
        assert_eq!(max, DeviceKind::MetroRouter);
    }

    #[test]
    fn labels_are_unique() {
        let labels: Vec<&str> = DeviceKind::ALL.iter().map(|d| d.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
