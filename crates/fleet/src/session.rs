//! The batch session: scoped worker threads over an atomic job cursor,
//! merge-ordered results, optional crash-safe checkpointing.

use crate::dispatch::{run_job, JobRunner};
use crate::rollup::FleetMetrics;
use crate::seed::derive_job_seed;
use crate::spec::JobSpec;
use eadt_ckpt::{CheckpointStore, JobCheckpoint, JOB_CHECKPOINT_SCHEMA_VERSION};
use eadt_sim::{EadtError, ErrorKind, SimDuration};
use eadt_telemetry::{EnergyLedger, MetricsRegistry, MetricsSnapshot, Telemetry};
use eadt_transfer::{RunControl, RunOutcome, TransferReport};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Version stamped into [`FleetReport`] JSON. Version 2 added the
/// per-job rollup fields (wire/retry counters, the energy ledger, the
/// optional metrics snapshot) and the fleet-wide `metrics` rollup.
pub const FLEET_SCHEMA_VERSION: u32 = 2;

/// What one invocation of the job-runner closure produced: the engine's
/// report plus, when the session collects metrics, the registry snapshot
/// the run sampled into.
type JobRun = (TransferReport, Option<MetricsSnapshot>);

/// Builder for [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    root_seed: u64,
    workers: Option<usize>,
    checkpoint: Option<(PathBuf, u64)>,
    metrics: Option<SimDuration>,
}

impl SessionBuilder {
    /// Sets the root seed every job seed is derived from.
    pub fn root_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    /// Sets the worker-thread count. `1` runs the batch serially on the
    /// calling thread; the default asks the OS for its parallelism.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Enables crash-safe checkpointing (DESIGN.md §13): each job halts
    /// every `every_slices` engine slices and atomically writes its
    /// [`JobCheckpoint`] under `dir`; finished jobs leave a
    /// `job-<i>.outcome.json` instead. A batch interrupted at any point
    /// can then be completed with [`Session::resume`].
    pub fn checkpoints(mut self, dir: impl Into<PathBuf>, every_slices: u64) -> Self {
        self.checkpoint = Some((dir.into(), every_slices.max(1)));
        self
    }

    /// Enables per-job metrics collection: every job runs with a
    /// [`MetricsRegistry`] sampling on `cadence`, its final snapshot
    /// rides in the [`JobOutcome`], and the fleet rollup merges the
    /// engine histograms bucket-wise. Off by default — the registry adds
    /// per-slice work to every job.
    pub fn metrics(mut self, cadence: SimDuration) -> Self {
        self.metrics = Some(cadence);
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        Session {
            root_seed: self.root_seed,
            workers,
            checkpoint: self
                .checkpoint
                .map(|(dir, every)| Checkpointing { dir, every }),
            metrics: self.metrics,
        }
    }
}

/// Checkpoint cadence configuration (see [`SessionBuilder::checkpoints`]).
#[derive(Debug, Clone)]
struct Checkpointing {
    dir: PathBuf,
    every: u64,
}

impl Checkpointing {
    /// Opens the store, panicking on I/O failure — callers sit inside the
    /// per-job `catch_unwind`, so the failure is booked as that job's
    /// outcome instead of killing the batch.
    fn open(&self) -> CheckpointStore {
        CheckpointStore::create(&self.dir).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A batch-execution session: the single entry point the CLI, the bench
/// sweeps, the examples and the tests share.
///
/// The session owns nothing but its configuration — `run` may be called
/// any number of times, and two sessions with the same root seed produce
/// byte-identical [`FleetReport`] JSON regardless of their worker counts.
#[derive(Debug, Clone)]
pub struct Session {
    root_seed: u64,
    workers: usize,
    checkpoint: Option<Checkpointing>,
    metrics: Option<SimDuration>,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The root seed job seeds derive from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The worker-thread count `run` will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one job (job index 0 of a single-job batch) on the calling
    /// thread — the convenience path for single-transfer callers.
    pub fn run_one(&self, job: &JobSpec) -> JobOutcome {
        execute_job(
            self.checkpoint.as_ref(),
            false,
            self.root_seed,
            0,
            job,
            &self.default_runner(),
        )
    }

    /// Runs the batch and returns results merged in job order.
    ///
    /// Workers claim jobs from an atomic cursor (work stealing over the
    /// job queue): a slow job never stalls the others, and because each
    /// job's seed depends only on `(root_seed, index)`, claiming order
    /// cannot leak into results. A worker that panics inside a job books
    /// an [`EadtError::JobFailed`] outcome for that job and moves on.
    pub fn run(&self, jobs: &[JobSpec]) -> FleetReport {
        self.run_inner(jobs, false, &self.default_runner())
    }

    /// Completes an interrupted batch from its checkpoint directory.
    ///
    /// For each job in order: a persisted `job-<i>.outcome.json` is
    /// re-admitted as-is (the job finished before the interrupt); a
    /// persisted checkpoint is validated against the job's index, label
    /// and seed and the engine resumes from it; a job with neither runs
    /// from scratch. Determinism makes the merged [`FleetReport`]
    /// byte-identical to an uninterrupted [`Session::run`].
    ///
    /// # Panics
    /// If the session was built without [`SessionBuilder::checkpoints`].
    pub fn resume(&self, jobs: &[JobSpec]) -> FleetReport {
        assert!(
            self.checkpoint.is_some(),
            "Session::resume requires a checkpoint directory (SessionBuilder::checkpoints)"
        );
        self.run_inner(jobs, true, &self.default_runner())
    }

    /// The production job executor: checkpointed when the session has a
    /// cadence configured, straight-through otherwise.
    fn default_runner(&self) -> impl Fn(usize, &JobSpec, u64) -> JobRun + Sync + '_ {
        move |index, job, seed| match &self.checkpoint {
            None => match self.metrics {
                None => (run_job(job, seed), None),
                Some(cadence) => {
                    let mut tel = Telemetry::from_parts(None, Some(MetricsRegistry::new(cadence)));
                    let report = JobRunner::prepare(job, seed)
                        .run_instrumented(RunControl::default(), &mut tel)
                        .into_report()
                        .expect("no halt boundary configured");
                    let snap = tel.metrics_ref().map(MetricsRegistry::snapshot);
                    (report, snap)
                }
            },
            Some(cfg) => run_job_checkpointed(cfg, self.metrics, index, job, seed),
        }
    }

    /// Shared worker-pool core; `run` is injectable so tests can drive
    /// the panic path deterministically.
    fn run_inner(
        &self,
        jobs: &[JobSpec],
        resume: bool,
        run: &(dyn Fn(usize, &JobSpec, u64) -> JobRun + Sync),
    ) -> FleetReport {
        let checkpoint = self.checkpoint.as_ref();
        let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(jobs.len()).max(1);
        if workers == 1 {
            for (index, job) in jobs.iter().enumerate() {
                store(
                    &slots[index],
                    execute_job(checkpoint, resume, self.root_seed, index, job, run),
                );
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        store(
                            &slots[index],
                            execute_job(checkpoint, resume, self.root_seed, index, job, run),
                        );
                    });
                }
            });
        }
        let jobs: Vec<JobOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // Unreachable: every index below jobs.len() is
                        // claimed exactly once. Book it as a failure
                        // rather than panicking the aggregator.
                        JobOutcome::lost(index)
                    })
            })
            .collect();
        let metrics = FleetMetrics::rollup(&jobs);
        FleetReport {
            schema: FLEET_SCHEMA_VERSION,
            root_seed: self.root_seed,
            metrics,
            jobs,
        }
    }
}

fn store(slot: &Mutex<Option<JobOutcome>>, outcome: JobOutcome) {
    *slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
}

fn execute_job(
    checkpoint: Option<&Checkpointing>,
    resume: bool,
    root_seed: u64,
    index: usize,
    job: &JobSpec,
    run: &(dyn Fn(usize, &JobSpec, u64) -> JobRun + Sync),
) -> JobOutcome {
    let seed = job
        .seed
        .unwrap_or_else(|| derive_job_seed(root_seed, index as u64));
    if resume {
        if let Some(cfg) = checkpoint {
            if let Some(outcome) = load_finished_outcome(cfg, index, job, seed) {
                return outcome;
            }
        }
    }
    let executed = catch_unwind(AssertUnwindSafe(|| {
        let (report, metrics) = run(index, job, seed);
        let outcome = JobOutcome::from_report(index, job, seed, report, metrics);
        if let Some(cfg) = checkpoint {
            persist_outcome(cfg, &outcome);
        }
        outcome
    }));
    match executed {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            JobOutcome::failed(
                index,
                job,
                seed,
                EadtError::job_failed(
                    job.display_label(),
                    format!("worker panicked in job {index}: {message}"),
                ),
            )
        }
    }
}

/// Runs one job under the checkpoint cadence: halt every `every` slices,
/// atomically persist the [`JobCheckpoint`], resume — so at any instant
/// the directory holds a snapshot at most `every` slices stale. Store
/// failures panic (booked as the job's outcome by the caller).
fn run_job_checkpointed(
    cfg: &Checkpointing,
    metrics: Option<SimDuration>,
    index: usize,
    job: &JobSpec,
    seed: u64,
) -> JobRun {
    let store = cfg.open();
    let every = cfg.every.max(1);
    let label = job.display_label();
    let runner = JobRunner::prepare(job, seed);
    // A fresh registry per leg is fine: a resume restores the registry's
    // contents from the checkpoint before the engine moves, so the final
    // snapshot is interrupt-invariant.
    let mut tel = Telemetry::from_parts(None, metrics.map(MetricsRegistry::new));
    let mut ctl = match store
        .load_job_checkpoint(index)
        .unwrap_or_else(|e| panic!("{e}"))
    {
        Some(ck) => {
            ck.validate(index, &label, seed)
                .unwrap_or_else(|e| panic!("{e}"));
            // `halt_after` is an absolute slice count, so the next
            // boundary is measured from the checkpoint, not from zero.
            let halt = ck.engine.slices_done + every;
            RunControl::resume_from(ck.engine).with_halt(halt)
        }
        None => RunControl::halt_at(every),
    };
    loop {
        match runner.run_instrumented(ctl, &mut tel) {
            RunOutcome::Done(report) => {
                let snap = tel.metrics_ref().map(MetricsRegistry::snapshot);
                return (report, snap);
            }
            RunOutcome::Halted(engine) => {
                let halt = engine.slices_done + every;
                let ck = JobCheckpoint {
                    schema: JOB_CHECKPOINT_SCHEMA_VERSION,
                    job: index,
                    label: label.clone(),
                    algorithm: job.kind.name().to_string(),
                    seed,
                    engine: *engine,
                };
                store
                    .save_job_checkpoint(&ck)
                    .unwrap_or_else(|e| panic!("{e}"));
                ctl = RunControl::resume_from(ck.engine).with_halt(halt);
            }
        }
    }
}

/// Writes the final outcome and retires the job's checkpoint.
fn persist_outcome(cfg: &Checkpointing, outcome: &JobOutcome) {
    let store = cfg.open();
    let mut text = serde_json::to_string_pretty(outcome).unwrap_or_else(|_| "{}".to_string());
    text.push('\n');
    store
        .write(&CheckpointStore::outcome_name(outcome.job), &text)
        .unwrap_or_else(|e| panic!("{e}"));
    store
        .remove(&CheckpointStore::checkpoint_name(outcome.job))
        .unwrap_or_else(|e| panic!("{e}"));
}

/// Loads a finished job's persisted outcome, if it exists and matches the
/// job it is being re-admitted for. Any mismatch or read problem falls
/// back to `None` — re-running the job reproduces the identical outcome,
/// so recomputing is always a safe answer.
fn load_finished_outcome(
    cfg: &Checkpointing,
    index: usize,
    job: &JobSpec,
    seed: u64,
) -> Option<JobOutcome> {
    let store = CheckpointStore::create(&cfg.dir).ok()?;
    let text = store.read(&CheckpointStore::outcome_name(index)).ok()??;
    let outcome: JobOutcome = serde_json::from_str(&text).ok()?;
    (outcome.job == index && outcome.label == job.display_label() && outcome.seed == seed)
        .then_some(outcome)
}

/// The merged outcome of one job.
///
/// Serialization deliberately covers only simulation-determined fields —
/// no worker id, no wall-clock timing — so the aggregate JSON is
/// byte-identical between serial and parallel runs at the same root seed.
/// The full [`TransferReport`] stays available in memory (`report`) for
/// consumers that need the time series; a [`JobOutcome`] loaded back from
/// a checkpoint directory has `report: None`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job's index in the batch (also its seed-derivation index).
    pub job: usize,
    /// Display label from the spec.
    pub label: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Testbed name.
    pub environment: String,
    /// The seed the job ran at.
    pub seed: u64,
    /// Whether the transfer moved every requested byte in time.
    pub completed: bool,
    /// Bytes delivered.
    pub moved_bytes: u64,
    /// Bytes requested.
    pub requested_bytes: u64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Average throughput, Mbps.
    pub throughput_mbps: f64,
    /// Total end-system energy, Joules.
    pub energy_j: f64,
    /// Throughput per Joule (the paper's efficiency metric).
    pub efficiency: f64,
    /// Injected channel failures over the run.
    pub failures: u64,
    /// Bytes that crossed the wire, retransmissions included.
    #[serde(default)]
    pub wire_bytes: u64,
    /// Packets pushed through the path (data + control).
    #[serde(default)]
    pub packets: u64,
    /// Reconnection attempts scheduled.
    #[serde(default)]
    pub retries: u64,
    /// Circuit-breaker open transitions.
    #[serde(default)]
    pub breaker_opens: u64,
    /// Progress lost to marker-less restarts and moved again.
    #[serde(default)]
    pub retransmitted_bytes: u64,
    /// Phase/component energy attribution for the job (what the fleet
    /// rollup sums and `eadt profile --from` renders).
    #[serde(default)]
    pub ledger: EnergyLedger,
    /// Final metrics-registry snapshot, when the session collects
    /// metrics. Persisted with the outcome so a resumed batch re-admits
    /// finished jobs with their histograms intact.
    #[serde(default)]
    pub metrics: Option<MetricsSnapshot>,
    /// Coarse error class (`None` for a clean run).
    pub error_kind: Option<String>,
    /// Human-readable error (`None` for a clean run).
    pub error: Option<String>,
    /// The full engine report (absent when the worker panicked; skipped
    /// in JSON to keep aggregates compact).
    #[serde(skip)]
    pub report: Option<TransferReport>,
}

impl JobOutcome {
    pub(crate) fn from_report(
        index: usize,
        job: &JobSpec,
        seed: u64,
        report: TransferReport,
        metrics: Option<MetricsSnapshot>,
    ) -> Self {
        let failure = report.failure();
        JobOutcome {
            job: index,
            label: job.display_label(),
            algorithm: job.kind.name().to_string(),
            environment: job.env.name.clone(),
            seed,
            completed: report.completed,
            moved_bytes: report.moved_bytes.as_u64(),
            requested_bytes: report.requested_bytes.as_u64(),
            duration_s: report.duration.as_secs_f64(),
            throughput_mbps: report.avg_throughput().as_mbps(),
            energy_j: report.total_energy_j(),
            efficiency: report.efficiency(),
            failures: report.failures,
            wire_bytes: report.wire_bytes.as_u64(),
            packets: report.packets,
            retries: report.faults.retries,
            breaker_opens: report.faults.breaker_opens,
            retransmitted_bytes: report.faults.retransmitted_bytes.as_u64(),
            ledger: report.ledger,
            metrics,
            error_kind: failure.as_ref().map(|e| e.kind().as_str().to_string()),
            error: failure.as_ref().map(EadtError::to_string),
            report: Some(report),
        }
    }

    pub(crate) fn failed(index: usize, job: &JobSpec, seed: u64, error: EadtError) -> Self {
        JobOutcome {
            job: index,
            label: job.display_label(),
            algorithm: job.kind.name().to_string(),
            environment: job.env.name.clone(),
            seed,
            completed: false,
            moved_bytes: 0,
            requested_bytes: 0,
            duration_s: 0.0,
            throughput_mbps: 0.0,
            energy_j: 0.0,
            efficiency: 0.0,
            failures: 0,
            wire_bytes: 0,
            packets: 0,
            retries: 0,
            breaker_opens: 0,
            retransmitted_bytes: 0,
            ledger: EnergyLedger::default(),
            metrics: None,
            error_kind: Some(error.kind().as_str().to_string()),
            error: Some(error.to_string()),
            report: None,
        }
    }

    fn lost(index: usize) -> Self {
        JobOutcome {
            job: index,
            label: format!("job-{index}"),
            algorithm: String::new(),
            environment: String::new(),
            seed: 0,
            completed: false,
            moved_bytes: 0,
            requested_bytes: 0,
            duration_s: 0.0,
            throughput_mbps: 0.0,
            energy_j: 0.0,
            efficiency: 0.0,
            failures: 0,
            wire_bytes: 0,
            packets: 0,
            retries: 0,
            breaker_opens: 0,
            retransmitted_bytes: 0,
            ledger: EnergyLedger::default(),
            metrics: None,
            error_kind: Some(ErrorKind::JobFailed.as_str().to_string()),
            error: Some("job result slot was never filled".to_string()),
            report: None,
        }
    }
}

/// The merged result of a batch, in job order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// Report schema version ([`FLEET_SCHEMA_VERSION`]).
    pub schema: u32,
    /// The root seed the batch ran at.
    pub root_seed: u64,
    /// Fleet-wide rollup: counters summed, histograms merged bucket-wise,
    /// ledgers added — all in job-index order.
    #[serde(default)]
    pub metrics: FleetMetrics,
    /// Per-job outcomes, index-ordered (independent of execution order).
    pub jobs: Vec<JobOutcome>,
}

impl FleetReport {
    /// Jobs that completed their transfer.
    pub fn completed_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.completed).count()
    }

    /// Jobs that ended in a typed error.
    pub fn error_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.error.is_some()).count()
    }

    /// The canonical aggregate form: pretty JSON with index-ordered jobs
    /// and no execution metadata. Byte-identical for a given root seed
    /// and job list, whatever the worker count.
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string());
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_core::AlgorithmKind;
    use std::fs;

    fn small_jobs() -> Vec<JobSpec> {
        let tb = eadt_testbeds::didclab();
        [AlgorithmKind::Sc, AlgorithmKind::ProMc, AlgorithmKind::Guc]
            .into_iter()
            .map(|kind| {
                JobSpec::new(kind, tb.clone())
                    .with_scale(0.005)
                    .with_max_channel(2)
            })
            .collect()
    }

    fn ckpt_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eadt-fleet-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn results_are_merge_ordered_and_labelled() {
        let report = Session::builder()
            .root_seed(9)
            .workers(2)
            .build()
            .run(&small_jobs());
        assert_eq!(report.jobs.len(), 3);
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.job, i);
            assert!(j.completed, "{}", j.label);
            assert!(j.error.is_none());
        }
        assert_eq!(report.jobs[0].algorithm, "SC");
        assert_eq!(report.completed_count(), 3);
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn serial_and_parallel_json_match() {
        let jobs = small_jobs();
        let serial = Session::builder()
            .root_seed(5)
            .workers(1)
            .build()
            .run(&jobs);
        let parallel = Session::builder()
            .root_seed(5)
            .workers(3)
            .build()
            .run(&jobs);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn explicit_seed_overrides_derivation() {
        let tb = eadt_testbeds::didclab();
        let job = JobSpec::new(AlgorithmKind::Sc, tb)
            .with_scale(0.005)
            .with_seed(77);
        let report = Session::builder()
            .root_seed(1)
            .build()
            .run(std::slice::from_ref(&job));
        assert_eq!(report.jobs[0].seed, 77);
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = Session::builder().root_seed(3).workers(4).build().run(&[]);
        assert_eq!(report.jobs.len(), 0);
        assert_eq!(report.schema, FLEET_SCHEMA_VERSION);
    }

    #[test]
    fn worker_panic_surfaces_payload_and_job_id() {
        let jobs = small_jobs();
        let session = Session::builder().root_seed(9).workers(2).build();
        let report = session.run_inner(&jobs, false, &|index, job, seed| {
            if index == 1 {
                panic!("injected chaos payload");
            }
            (run_job(job, seed), None)
        });
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.completed_count(), 2);
        let failed = &report.jobs[1];
        assert!(!failed.completed);
        assert_eq!(failed.error_kind.as_deref(), Some("job-failed"));
        let err = failed.error.as_deref().unwrap();
        assert!(err.contains("injected chaos payload"), "{err}");
        assert!(err.contains("job 1"), "{err}");
        assert!(report.jobs[0].error.is_none());
        assert!(report.jobs[2].error.is_none());
    }

    #[test]
    fn checkpointed_run_matches_plain_and_retires_checkpoints() {
        let jobs = small_jobs();
        let plain = Session::builder()
            .root_seed(5)
            .workers(1)
            .build()
            .run(&jobs);
        let dir = ckpt_dir("cadence");
        let checkpointed = Session::builder()
            .root_seed(5)
            .workers(2)
            .checkpoints(&dir, 4)
            .build()
            .run(&jobs);
        assert_eq!(plain.to_json(), checkpointed.to_json());
        for i in 0..jobs.len() {
            assert!(
                dir.join(CheckpointStore::outcome_name(i)).exists(),
                "job {i} outcome missing"
            );
            assert!(
                !dir.join(CheckpointStore::checkpoint_name(i)).exists(),
                "job {i} checkpoint not retired"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_of_half_killed_fleet_is_byte_identical() {
        let jobs = small_jobs();
        let baseline = Session::builder()
            .root_seed(7)
            .workers(1)
            .build()
            .run(&jobs);

        // Fabricate the crash site: job 0 finished (outcome persisted),
        // job 1 died mid-flight (checkpoint on disk), job 2 never started.
        let dir = ckpt_dir("resume");
        Session::builder()
            .root_seed(7)
            .workers(1)
            .checkpoints(&dir, 4)
            .build()
            .run(&jobs[..1]);
        let store = CheckpointStore::create(&dir).unwrap();
        let seed1 = derive_job_seed(7, 1);
        let halted = JobRunner::prepare(&jobs[1], seed1).run_controlled(RunControl::halt_at(1));
        let RunOutcome::Halted(engine) = halted else {
            panic!("job too short to interrupt")
        };
        store
            .save_job_checkpoint(&JobCheckpoint {
                schema: JOB_CHECKPOINT_SCHEMA_VERSION,
                job: 1,
                label: jobs[1].display_label(),
                algorithm: jobs[1].kind.name().to_string(),
                seed: seed1,
                engine: *engine,
            })
            .unwrap();

        let resumed = Session::builder()
            .root_seed(7)
            .workers(2)
            .checkpoints(&dir, 4)
            .build()
            .resume(&jobs);
        assert_eq!(resumed.to_json(), baseline.to_json());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollup_rides_the_report_and_is_worker_invariant() {
        let jobs = small_jobs();
        let serial = Session::builder()
            .root_seed(5)
            .workers(1)
            .metrics(eadt_sim::SimDuration::from_secs(1))
            .build()
            .run(&jobs);
        let parallel = Session::builder()
            .root_seed(5)
            .workers(3)
            .metrics(eadt_sim::SimDuration::from_secs(1))
            .build()
            .run(&jobs);
        assert_eq!(serial.to_json(), parallel.to_json());
        let m = &serial.metrics;
        assert_eq!(m.jobs_total, 3);
        assert_eq!(m.jobs_completed, 3);
        assert!(m.bytes_moved > 0);
        assert!(m.energy_j > 0.0);
        assert!(!m.ledger.is_empty());
        assert!(
            m.histograms
                .iter()
                .any(|h| h.name == "channel_throughput_mbps"),
            "engine histograms should be merged into the rollup"
        );
        assert_eq!(
            m.to_prometheus(),
            parallel.metrics.to_prometheus(),
            "exposition must be worker-invariant"
        );
        // Without metrics collection the rollup still carries counters
        // and ledgers, just no histograms.
        let plain = Session::builder().root_seed(5).build().run(&jobs);
        assert!(plain.metrics.histograms.is_empty());
        assert_eq!(plain.metrics.bytes_moved, m.bytes_moved);
        assert_eq!(plain.metrics.energy_j, m.energy_j);
    }

    #[test]
    fn checkpointed_metrics_rollup_matches_straight_run() {
        let jobs = small_jobs();
        let cadence = eadt_sim::SimDuration::from_secs(1);
        let plain = Session::builder()
            .root_seed(5)
            .workers(1)
            .metrics(cadence)
            .build()
            .run(&jobs);
        let dir = ckpt_dir("metrics");
        let checkpointed = Session::builder()
            .root_seed(5)
            .workers(2)
            .metrics(cadence)
            .checkpoints(&dir, 4)
            .build()
            .run(&jobs);
        assert_eq!(plain.to_json(), checkpointed.to_json());
        assert_eq!(
            plain.metrics.to_prometheus(),
            checkpointed.metrics.to_prometheus()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_report_json_round_trips() {
        let report = Session::builder()
            .root_seed(11)
            .workers(1)
            .metrics(eadt_sim::SimDuration::from_secs(1))
            .build()
            .run(&small_jobs()[..1]);
        let text = report.to_json();
        let back: FleetReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.schema, FLEET_SCHEMA_VERSION);
        assert_eq!(back.to_json(), text, "round trip must be byte-identical");
    }

    #[test]
    fn resume_with_mismatched_checkpoint_books_a_failure() {
        let jobs = small_jobs();
        let dir = ckpt_dir("mismatch");
        let store = CheckpointStore::create(&dir).unwrap();
        let seed0 = derive_job_seed(2, 0);
        let halted = JobRunner::prepare(&jobs[0], seed0).run_controlled(RunControl::halt_at(1));
        let RunOutcome::Halted(engine) = halted else {
            panic!("job too short to interrupt")
        };
        store
            .save_job_checkpoint(&JobCheckpoint {
                schema: JOB_CHECKPOINT_SCHEMA_VERSION,
                job: 0,
                label: jobs[0].display_label(),
                algorithm: jobs[0].kind.name().to_string(),
                seed: seed0.wrapping_add(1), // wrong seed: foreign run
                engine: *engine,
            })
            .unwrap();
        let resumed = Session::builder()
            .root_seed(2)
            .workers(1)
            .checkpoints(&dir, 4)
            .build()
            .resume(&jobs);
        let err = resumed.jobs[0].error.as_deref().unwrap();
        assert!(err.contains("seed"), "{err}");
        assert!(resumed.jobs[1].error.is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
