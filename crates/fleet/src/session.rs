//! The batch session: scoped worker threads over an atomic job cursor,
//! merge-ordered results.

use crate::dispatch::run_job;
use crate::seed::derive_job_seed;
use crate::spec::JobSpec;
use eadt_sim::{EadtError, ErrorKind};
use eadt_transfer::TransferReport;
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Version stamped into [`FleetReport`] JSON.
pub const FLEET_SCHEMA_VERSION: u32 = 1;

/// Builder for [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    root_seed: u64,
    workers: Option<usize>,
}

impl SessionBuilder {
    /// Sets the root seed every job seed is derived from.
    pub fn root_seed(mut self, seed: u64) -> Self {
        self.root_seed = seed;
        self
    }

    /// Sets the worker-thread count. `1` runs the batch serially on the
    /// calling thread; the default asks the OS for its parallelism.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        Session {
            root_seed: self.root_seed,
            workers,
        }
    }
}

/// A batch-execution session: the single entry point the CLI, the bench
/// sweeps, the examples and the tests share.
///
/// The session owns nothing but its configuration — `run` may be called
/// any number of times, and two sessions with the same root seed produce
/// byte-identical [`FleetReport`] JSON regardless of their worker counts.
#[derive(Debug, Clone)]
pub struct Session {
    root_seed: u64,
    workers: usize,
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The root seed job seeds derive from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// The worker-thread count `run` will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one job (job index 0 of a single-job batch) on the calling
    /// thread — the convenience path for single-transfer callers.
    pub fn run_one(&self, job: &JobSpec) -> JobOutcome {
        execute_job(self.root_seed, 0, job)
    }

    /// Runs the batch and returns results merged in job order.
    ///
    /// Workers claim jobs from an atomic cursor (work stealing over the
    /// job queue): a slow job never stalls the others, and because each
    /// job's seed depends only on `(root_seed, index)`, claiming order
    /// cannot leak into results. A worker that panics inside a job books
    /// an [`EadtError::JobFailed`] outcome for that job and moves on.
    pub fn run(&self, jobs: &[JobSpec]) -> FleetReport {
        let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let workers = self.workers.min(jobs.len()).max(1);
        if workers == 1 {
            for (index, job) in jobs.iter().enumerate() {
                store(&slots[index], execute_job(self.root_seed, index, job));
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(index) else { break };
                        store(&slots[index], execute_job(self.root_seed, index, job));
                    });
                }
            });
        }
        let jobs: Vec<JobOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // Unreachable: every index below jobs.len() is
                        // claimed exactly once. Book it as a failure
                        // rather than panicking the aggregator.
                        JobOutcome::lost(index)
                    })
            })
            .collect();
        FleetReport {
            schema: FLEET_SCHEMA_VERSION,
            root_seed: self.root_seed,
            jobs,
        }
    }
}

fn store(slot: &Mutex<Option<JobOutcome>>, outcome: JobOutcome) {
    *slot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
}

fn execute_job(root_seed: u64, index: usize, job: &JobSpec) -> JobOutcome {
    let seed = job
        .seed
        .unwrap_or_else(|| derive_job_seed(root_seed, index as u64));
    match catch_unwind(AssertUnwindSafe(|| run_job(job, seed))) {
        Ok(report) => JobOutcome::from_report(index, job, seed, report),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            JobOutcome::failed(
                index,
                job,
                seed,
                EadtError::job_failed(job.display_label(), message),
            )
        }
    }
}

/// The merged outcome of one job.
///
/// Serialization deliberately covers only simulation-determined fields —
/// no worker id, no wall-clock timing — so the aggregate JSON is
/// byte-identical between serial and parallel runs at the same root seed.
/// The full [`TransferReport`] stays available in memory (`report`) for
/// consumers that need the time series.
#[derive(Debug, Clone, Serialize)]
pub struct JobOutcome {
    /// The job's index in the batch (also its seed-derivation index).
    pub job: usize,
    /// Display label from the spec.
    pub label: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Testbed name.
    pub environment: String,
    /// The seed the job ran at.
    pub seed: u64,
    /// Whether the transfer moved every requested byte in time.
    pub completed: bool,
    /// Bytes delivered.
    pub moved_bytes: u64,
    /// Bytes requested.
    pub requested_bytes: u64,
    /// Simulated duration, seconds.
    pub duration_s: f64,
    /// Average throughput, Mbps.
    pub throughput_mbps: f64,
    /// Total end-system energy, Joules.
    pub energy_j: f64,
    /// Throughput per Joule (the paper's efficiency metric).
    pub efficiency: f64,
    /// Injected channel failures over the run.
    pub failures: u64,
    /// Coarse error class (`None` for a clean run).
    pub error_kind: Option<String>,
    /// Human-readable error (`None` for a clean run).
    pub error: Option<String>,
    /// The full engine report (absent when the worker panicked; skipped
    /// in JSON to keep aggregates compact).
    #[serde(skip)]
    pub report: Option<TransferReport>,
}

impl JobOutcome {
    fn from_report(index: usize, job: &JobSpec, seed: u64, report: TransferReport) -> Self {
        let failure = report.failure();
        JobOutcome {
            job: index,
            label: job.display_label(),
            algorithm: job.kind.name().to_string(),
            environment: job.env.name.clone(),
            seed,
            completed: report.completed,
            moved_bytes: report.moved_bytes.as_u64(),
            requested_bytes: report.requested_bytes.as_u64(),
            duration_s: report.duration.as_secs_f64(),
            throughput_mbps: report.avg_throughput().as_mbps(),
            energy_j: report.total_energy_j(),
            efficiency: report.efficiency(),
            failures: report.failures,
            error_kind: failure.as_ref().map(|e| e.kind().as_str().to_string()),
            error: failure.as_ref().map(EadtError::to_string),
            report: Some(report),
        }
    }

    fn failed(index: usize, job: &JobSpec, seed: u64, error: EadtError) -> Self {
        JobOutcome {
            job: index,
            label: job.display_label(),
            algorithm: job.kind.name().to_string(),
            environment: job.env.name.clone(),
            seed,
            completed: false,
            moved_bytes: 0,
            requested_bytes: 0,
            duration_s: 0.0,
            throughput_mbps: 0.0,
            energy_j: 0.0,
            efficiency: 0.0,
            failures: 0,
            error_kind: Some(error.kind().as_str().to_string()),
            error: Some(error.to_string()),
            report: None,
        }
    }

    fn lost(index: usize) -> Self {
        JobOutcome {
            job: index,
            label: format!("job-{index}"),
            algorithm: String::new(),
            environment: String::new(),
            seed: 0,
            completed: false,
            moved_bytes: 0,
            requested_bytes: 0,
            duration_s: 0.0,
            throughput_mbps: 0.0,
            energy_j: 0.0,
            efficiency: 0.0,
            failures: 0,
            error_kind: Some(ErrorKind::JobFailed.as_str().to_string()),
            error: Some("job result slot was never filled".to_string()),
            report: None,
        }
    }
}

/// The merged result of a batch, in job order.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Report schema version ([`FLEET_SCHEMA_VERSION`]).
    pub schema: u32,
    /// The root seed the batch ran at.
    pub root_seed: u64,
    /// Per-job outcomes, index-ordered (independent of execution order).
    pub jobs: Vec<JobOutcome>,
}

impl FleetReport {
    /// Jobs that completed their transfer.
    pub fn completed_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.completed).count()
    }

    /// Jobs that ended in a typed error.
    pub fn error_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.error.is_some()).count()
    }

    /// The canonical aggregate form: pretty JSON with index-ordered jobs
    /// and no execution metadata. Byte-identical for a given root seed
    /// and job list, whatever the worker count.
    pub fn to_json(&self) -> String {
        let mut text = serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string());
        text.push('\n');
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eadt_core::AlgorithmKind;

    fn small_jobs() -> Vec<JobSpec> {
        let tb = eadt_testbeds::didclab();
        [AlgorithmKind::Sc, AlgorithmKind::ProMc, AlgorithmKind::Guc]
            .into_iter()
            .map(|kind| {
                JobSpec::new(kind, tb.clone())
                    .with_scale(0.005)
                    .with_max_channel(2)
            })
            .collect()
    }

    #[test]
    fn results_are_merge_ordered_and_labelled() {
        let report = Session::builder()
            .root_seed(9)
            .workers(2)
            .build()
            .run(&small_jobs());
        assert_eq!(report.jobs.len(), 3);
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.job, i);
            assert!(j.completed, "{}", j.label);
            assert!(j.error.is_none());
        }
        assert_eq!(report.jobs[0].algorithm, "SC");
        assert_eq!(report.completed_count(), 3);
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn serial_and_parallel_json_match() {
        let jobs = small_jobs();
        let serial = Session::builder()
            .root_seed(5)
            .workers(1)
            .build()
            .run(&jobs);
        let parallel = Session::builder()
            .root_seed(5)
            .workers(3)
            .build()
            .run(&jobs);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn explicit_seed_overrides_derivation() {
        let tb = eadt_testbeds::didclab();
        let job = JobSpec::new(AlgorithmKind::Sc, tb)
            .with_scale(0.005)
            .with_seed(77);
        let report = Session::builder()
            .root_seed(1)
            .build()
            .run(std::slice::from_ref(&job));
        assert_eq!(report.jobs[0].seed, 77);
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = Session::builder().root_seed(3).workers(4).build().run(&[]);
        assert_eq!(report.jobs.len(), 0);
        assert_eq!(report.schema, FLEET_SCHEMA_VERSION);
    }
}
